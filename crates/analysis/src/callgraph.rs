//! AST-level call graph, with reachability and cycle queries used by the
//! well-formedness checks (paper §3.1, §4.2).

use commset_lang::ast::{walk_expr, walk_stmts, Expr, ExprKind, Item, Program};
use std::collections::{BTreeMap, BTreeSet};

/// The call graph of a program: for each defined function, the set of
/// program functions it calls directly (intrinsics are not nodes).
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Direct callees per function.
    pub callees: BTreeMap<String, BTreeSet<String>>,
}

impl CallGraph {
    /// Builds the call graph of `program`.
    pub fn new(program: &Program) -> Self {
        let defined: BTreeSet<String> = program
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Func(f) => Some(f.name.clone()),
                _ => None,
            })
            .collect();
        let mut callees: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for item in &program.items {
            let Item::Func(f) = item else { continue };
            let mut out = BTreeSet::new();
            let mut record = |e: &Expr| {
                if let ExprKind::Call(name, _) = &e.kind {
                    if defined.contains(name) {
                        out.insert(name.clone());
                    }
                }
            };
            walk_stmts(&f.body, &mut |s| {
                commset_lang::ast::stmt_exprs(s, &mut |e| walk_expr(e, &mut |x| record(x)));
            });
            callees.insert(f.name.clone(), out);
        }
        CallGraph { callees }
    }

    /// All functions transitively reachable from `from` (excluding `from`
    /// itself unless it is reachable through a cycle).
    pub fn reachable(&self, from: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut stack: Vec<&str> = self
            .callees
            .get(from)
            .map(|s| s.iter().map(String::as_str).collect())
            .unwrap_or_default();
        while let Some(f) = stack.pop() {
            if out.insert(f.to_string()) {
                if let Some(cs) = self.callees.get(f) {
                    stack.extend(cs.iter().map(String::as_str));
                }
            }
        }
        out
    }

    /// True if `from` can transitively call `to`.
    pub fn calls_transitively(&self, from: &str, to: &str) -> bool {
        self.reachable(from).contains(to)
    }
}

/// Detects a cycle in an arbitrary name-keyed directed graph; returns one
/// cycle's nodes if present.
pub fn find_cycle(edges: &BTreeMap<String, BTreeSet<String>>) -> Option<Vec<String>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks: BTreeMap<&str, Mark> = edges.keys().map(|k| (k.as_str(), Mark::White)).collect();
    // Ensure referenced-but-undeclared nodes exist.
    for tos in edges.values() {
        for t in tos {
            marks.entry(t.as_str()).or_insert(Mark::White);
        }
    }
    fn dfs<'a>(
        n: &'a str,
        edges: &'a BTreeMap<String, BTreeSet<String>>,
        marks: &mut BTreeMap<&'a str, Mark>,
        path: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        marks.insert(n, Mark::Grey);
        path.push(n);
        if let Some(tos) = edges.get(n) {
            for t in tos {
                match marks.get(t.as_str()).copied().unwrap_or(Mark::White) {
                    Mark::Grey => {
                        let start = path.iter().position(|p| *p == t).unwrap_or(0);
                        return Some(path[start..].iter().map(|s| s.to_string()).collect());
                    }
                    Mark::White => {
                        if let Some(c) = dfs(t, edges, marks, path) {
                            return Some(c);
                        }
                    }
                    Mark::Black => {}
                }
            }
        }
        marks.insert(n, Mark::Black);
        path.pop();
        None
    }
    let keys: Vec<&str> = marks.keys().copied().collect();
    for k in keys {
        if marks[k] == Mark::White {
            let mut path = Vec::new();
            if let Some(c) = dfs(k, edges, &mut marks, &mut path) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(src: &str) -> CallGraph {
        let unit = commset_lang::compile_unit(src).unwrap();
        CallGraph::new(&unit.program)
    }

    #[test]
    fn direct_and_transitive_calls() {
        let g = graph(
            "extern void io(int x); int c() { io(1); return 0; } int b() { return c(); } int a() { return b(); } int main() { return a(); }",
        );
        assert!(g.callees["a"].contains("b"));
        assert!(!g.callees["a"].contains("c"));
        assert!(!g.callees["c"].contains("io"), "intrinsics are not nodes");
        assert!(g.calls_transitively("a", "c"));
        assert!(g.calls_transitively("main", "c"));
        assert!(!g.calls_transitively("c", "a"));
    }

    #[test]
    fn cycle_detection() {
        let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        edges.insert("x".into(), ["y".to_string()].into());
        edges.insert("y".into(), ["z".to_string()].into());
        edges.insert("z".into(), BTreeSet::new());
        assert!(find_cycle(&edges).is_none());
        edges.get_mut("z").unwrap().insert("x".into());
        let cycle = find_cycle(&edges).unwrap();
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn self_cycle_found() {
        let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        edges.insert("r".into(), ["r".to_string()].into());
        assert_eq!(find_cycle(&edges).unwrap(), vec!["r".to_string()]);
    }
}
