//! Algorithm 1 of the paper: *CommSetDepAnalysis*.
//!
//! For every memory dependence edge whose endpoints are calls to functions
//! sharing a CommSet, the edge is annotated:
//!
//! * `uco` — unconditionally commutative — when the shared set is
//!   unpredicated, when an intra-iteration predicate is proven true, or
//!   when a loop-carried predicate is proven true *and* the destination
//!   dominates the source (lines 23–27);
//! * `ico` — inter-iteration commutative — when a loop-carried predicate
//!   is proven true but the dominance condition fails (the edge then only
//!   constrains intra-iteration order).
//!
//! Predicates are proven by the symbolic interpreter under the assertion
//! that induction-variable bindings differ on separate iterations
//! (`Assert(i1 != i2)`, line 22) and that loop-invariant bindings agree.

use crate::hotloop::HotLoop;
use crate::metadata::ManagedUnit;
use crate::pdg::{DepKind, Pdg};
use crate::symex::{self, Rel, Tri};
use commset_lang::ast::{BinOp, Expr, ExprKind};
use std::collections::BTreeSet;

pub use crate::pdg::CommAnnotation;

/// Runs Algorithm 1 over `pdg`, annotating memory edges in place.
///
/// Returns the number of edges annotated.
pub fn analyze_commutativity(pdg: &mut Pdg, managed: &ManagedUnit, hot: &HotLoop) -> usize {
    // Loop-invariant scalars: never written by any body statement.
    let written: BTreeSet<&String> = hot.body.iter().flat_map(|s| &s.reg_writes).collect();
    let iv = hot.shape.iv();
    let mut annotated = 0;

    for edge in &mut pdg.edges {
        let DepKind::Memory {
            src_call: Some(src_call),
            dst_call: Some(dst_call),
            ..
        } = &edge.kind
        else {
            continue;
        };
        let f = &src_call.callee;
        let g = &dst_call.callee;
        let mut best: Option<CommAnnotation> = None;
        for set_id in managed.common_sets(f, g) {
            let set = managed.set(set_id);
            let ann = match &set.predicate {
                None => Some(CommAnnotation::Uco),
                Some(pred) => {
                    // Bind actuals (lines 13–20).
                    let mf = managed
                        .memberships_of(f)
                        .into_iter()
                        .find(|m| m.set == set_id)
                        .expect("membership exists");
                    let mg = managed
                        .memberships_of(g)
                        .into_iter()
                        .find(|m| m.set == set_id)
                        .expect("membership exists");
                    let args_f: Vec<&Expr> = mf
                        .arg_params
                        .iter()
                        .filter_map(|&i| src_call.args.get(i))
                        .collect();
                    let args_g: Vec<&Expr> = mg
                        .arg_params
                        .iter()
                        .filter_map(|&i| dst_call.args.get(i))
                        .collect();
                    if args_f.len() != pred.params1.len() || args_g.len() != pred.params1.len() {
                        None
                    } else {
                        let rels: Vec<Rel> = args_f
                            .iter()
                            .zip(&args_g)
                            .map(|(a, b)| relation(a, b, edge.carried, iv, &written))
                            .collect();
                        match symex::prove(pred, &rels) {
                            Tri::True => {
                                if edge.carried {
                                    // Dominance at statement level: with no
                                    // top-level break (checked by hotloop),
                                    // an earlier statement dominates every
                                    // later one. dst dominates src iff
                                    // pos(dst) <= pos(src).
                                    if edge.dst.0 <= edge.src.0 {
                                        Some(CommAnnotation::Uco)
                                    } else {
                                        Some(CommAnnotation::Ico)
                                    }
                                } else {
                                    Some(CommAnnotation::Uco)
                                }
                            }
                            _ => None,
                        }
                    }
                }
            };
            best = match (best, ann) {
                (_, Some(CommAnnotation::Uco)) => Some(CommAnnotation::Uco),
                (Some(CommAnnotation::Uco), _) => Some(CommAnnotation::Uco),
                (None, a) => a,
                (b, None) => b,
                (Some(CommAnnotation::Ico), Some(CommAnnotation::Ico)) => Some(CommAnnotation::Ico),
            };
            if best == Some(CommAnnotation::Uco) {
                break;
            }
        }
        if best.is_some() {
            edge.comm = best;
            annotated += 1;
        }
    }
    annotated
}

/// Decomposes an instance actual into the affine form `var + offset`
/// (`var` absent for pure literals); `None` for anything richer.
fn affine_of(e: &Expr) -> Option<(Option<&String>, i64)> {
    match &e.kind {
        ExprKind::IntLit(v) => Some((None, *v)),
        ExprKind::Var(x) => Some((Some(x), 0)),
        ExprKind::Binary(op @ (BinOp::Add | BinOp::Sub), a, b) => {
            let sign = if *op == BinOp::Sub { -1 } else { 1 };
            match (&a.kind, &b.kind) {
                (ExprKind::Var(x), ExprKind::IntLit(c)) => Some((Some(x), sign * c)),
                (ExprKind::IntLit(c), ExprKind::Var(x)) if *op == BinOp::Add => Some((Some(x), *c)),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Derives the relation between two predicate actuals for one edge.
///
/// Actuals are first normalized to affine forms `var + offset`:
///
/// * Loop-carried, both based on the induction variable with the *same*
///   offset → `Ne` (line 22; `i + 1` differs across iterations exactly
///   when `i` does).
/// * Both based on the same loop-invariant scalar → that scalar's value
///   is fixed, so equal offsets give `Eq` and distinct offsets give `Ne`.
/// * Equal integer literals → `Eq`; distinct literals → `Ne`.
/// * Anything else → `Unknown`.
fn relation(
    a: &Expr,
    b: &Expr,
    carried: bool,
    iv: Option<&str>,
    written: &BTreeSet<&String>,
) -> Rel {
    let (Some((va, oa)), Some((vb, ob))) = (affine_of(a), affine_of(b)) else {
        return Rel::Unknown;
    };
    match (va, vb) {
        (None, None) => {
            if oa == ob {
                Rel::Eq
            } else {
                Rel::Ne
            }
        }
        (Some(x), Some(y)) if x == y => {
            let base = if Some(x.as_str()) == iv {
                if carried {
                    Rel::Ne
                } else {
                    Rel::Eq
                }
            } else if !written.contains(x) {
                // Loop-invariant: equal across iterations too.
                Rel::Eq
            } else {
                // Rewritten in the loop body: nothing is known, whether the
                // edge is carried or not.
                Rel::Unknown
            };
            match (base, oa == ob) {
                (Rel::Eq, true) => Rel::Eq,
                (Rel::Eq, false) => Rel::Ne,
                (Rel::Ne, true) => Rel::Ne,
                // x1 + c1 vs x2 + c2 with x1 != x2 and c1 != c2: the sums
                // may still collide (e.g. x1=1,c1=2 vs x2=2,c2=1).
                (Rel::Ne, false) => Rel::Unknown,
                (Rel::Unknown, _) => Rel::Unknown,
            }
        }
        _ => Rel::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::summarize;
    use crate::hotloop::find_hot_loop;
    use crate::metadata::manage;
    use commset_ir::IntrinsicTable;
    use commset_lang::ast::Type;

    fn pipeline(src: &str) -> (Pdg, usize) {
        let mut table = IntrinsicTable::new();
        table.register("fs_open", vec![Type::Int], Type::Handle, &[], &["FS"], 50);
        table.register("fs_close", vec![Type::Handle], Type::Void, &[], &["FS"], 30);
        table.register("compute", vec![Type::Handle], Type::Int, &[], &[], 500);
        table.register(
            "print_digest",
            vec![Type::Int],
            Type::Void,
            &[],
            &["CONSOLE"],
            40,
        );
        table.register("rng", vec![], Type::Int, &["SEED"], &["SEED"], 10);
        let unit = commset_lang::compile_unit(src).unwrap();
        let managed = manage(unit).unwrap();
        let summaries = summarize(&managed.program, &table);
        let hot = find_hot_loop(&managed, &summaries, &table, "main").unwrap();
        let mut pdg = Pdg::build(&hot);
        let n = analyze_commutativity(&mut pdg, &managed, &hot);
        (pdg, n)
    }

    const MD5_LIKE: &str = r#"
        #pragma CommSetDecl(FSET, Group)
        #pragma CommSetPredicate(FSET, (i1), (i2), i1 != i2)
        extern handle fs_open(int idx);
        extern void fs_close(handle fp);
        extern int compute(handle fp);
        extern void print_digest(int d);
        int main() {
            int n = 10;
            for (int i = 0; i < n; i = i + 1) {
                handle fp = handle(0);
                #pragma CommSet(SELF, FSET(i))
                { fp = fs_open(i); }
                int d = compute(fp);
                #pragma CommSet(SELF, FSET(i))
                { print_digest(d); }
                #pragma CommSet(SELF, FSET(i))
                { fs_close(fp); }
            }
            return 0;
        }
    "#;

    #[test]
    fn md5_like_loop_becomes_doall_legal() {
        let (pdg, n) = pipeline(MD5_LIKE);
        assert!(n > 0);
        assert!(
            pdg.doall_legal(),
            "all carried memory deps must be relaxed:\n{}",
            pdg.dump()
        );
        // Intra-iteration FS edges must survive (fopen before fclose within
        // an iteration).
        let intra_mem = pdg
            .edges
            .iter()
            .any(|e| !e.carried && matches!(e.kind, DepKind::Memory { .. }) && e.effective_intra());
        assert!(intra_mem, "{}", pdg.dump());
    }

    #[test]
    fn self_unpredicated_relaxes_rng() {
        let (pdg, _) = pipeline(
            r#"
            extern int rng();
            int main() {
                int n = 10;
                for (int i = 0; i < n; i = i + 1) {
                    int v = 0;
                    #pragma CommSet(SELF)
                    { v = rng(); }
                }
                return 0;
            }
            "#,
        );
        assert!(pdg.doall_legal(), "{}", pdg.dump());
    }

    #[test]
    fn without_annotations_nothing_is_relaxed() {
        let (pdg, n) = pipeline(
            r#"
            extern int rng();
            int main() {
                int n = 10;
                for (int i = 0; i < n; i = i + 1) {
                    int v = rng();
                }
                return 0;
            }
            "#,
        );
        assert_eq!(n, 0);
        assert!(!pdg.doall_legal());
    }

    #[test]
    fn forward_carried_edges_become_ico_not_uco() {
        let (pdg, _) = pipeline(MD5_LIKE);
        // fopen (S1) -> fclose (S4) carried: dst is later -> ico.
        // fclose (S4) -> fopen (S1) carried: dst earlier (dominates) -> uco.
        let mut saw_ico = false;
        let mut saw_uco = false;
        for e in &pdg.edges {
            if !e.carried {
                continue;
            }
            if let DepKind::Memory { loc, .. } = &e.kind {
                if format!("{loc}").contains("FS") {
                    match e.comm {
                        Some(CommAnnotation::Ico) => {
                            assert!(e.src.0 < e.dst.0, "ico edges point forward");
                            saw_ico = true;
                        }
                        Some(CommAnnotation::Uco) => {
                            if e.src != e.dst {
                                assert!(e.dst.0 <= e.src.0, "uco carried edges point backward");
                            }
                            saw_uco = true;
                        }
                        None => {}
                    }
                }
            }
        }
        assert!(saw_ico && saw_uco, "{}", pdg.dump());
    }

    #[test]
    fn relation_handles_affine_actuals() {
        use commset_lang::parser::parse_expr;
        let e = |s: &str| parse_expr(s).unwrap();
        let written: BTreeSet<&String> = BTreeSet::new();
        let iv = Some("i");
        // Same iv + same offset: distinct across iterations.
        assert_eq!(
            relation(&e("i + 1"), &e("i + 1"), true, iv, &written),
            Rel::Ne
        );
        assert_eq!(
            relation(&e("i - 2"), &e("i - 2"), true, iv, &written),
            Rel::Ne
        );
        assert_eq!(
            relation(&e("1 + i"), &e("i + 1"), true, iv, &written),
            Rel::Ne
        );
        // Same iv + different offsets, carried: may collide across
        // iterations (i1 + 1 == i2 when i2 = i1 + 1).
        assert_eq!(
            relation(&e("i"), &e("i + 1"), true, iv, &written),
            Rel::Unknown
        );
        // ... but within one iteration the offset decides.
        assert_eq!(relation(&e("i"), &e("i + 1"), false, iv, &written), Rel::Ne);
        assert_eq!(
            relation(&e("i + 3"), &e("i + 3"), false, iv, &written),
            Rel::Eq
        );
        // Loop-invariant base: fixed value, offsets decide in all cases.
        let k = "k".to_string();
        let inv: BTreeSet<&String> = BTreeSet::new();
        assert_eq!(relation(&e("k"), &e("k + 1"), true, iv, &inv), Rel::Ne);
        assert_eq!(relation(&e("k + 2"), &e("k + 2"), true, iv, &inv), Rel::Eq);
        // Rewritten base: nothing is known.
        let w: BTreeSet<&String> = [&k].into_iter().collect();
        assert_eq!(
            relation(&e("k + 1"), &e("k + 1"), false, iv, &w),
            Rel::Unknown
        );
        // Literals.
        assert_eq!(relation(&e("3"), &e("4"), true, iv, &written), Rel::Ne);
        assert_eq!(relation(&e("5"), &e("5"), true, iv, &written), Rel::Eq);
        // Non-affine forms stay unknown.
        assert_eq!(
            relation(&e("i * 2"), &e("i * 2"), true, iv, &written),
            Rel::Unknown
        );
    }

    mod relation_soundness {
        use super::super::*;
        use commset_lang::ast::Expr;

        /// Minimal SplitMix64 (the analysis crate has no runtime dep, so the
        /// generator is inlined — 10 lines beats a dependency edge).
        struct Rng(u64);
        impl Rng {
            fn next_u64(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            }
            fn below(&mut self, n: u64) -> u64 {
                self.next_u64() % n
            }
            fn irange(&mut self, lo: i64, hi: i64) -> i64 {
                lo + self.below((hi - lo) as u64) as i64
            }
        }

        #[derive(Debug, Clone, Copy)]
        enum Base {
            /// The induction variable `i`.
            Iv,
            /// A loop-invariant scalar `k`.
            Inv,
            /// A literal.
            Lit(i64),
        }

        fn expr_of(base: Base, off: i64) -> Expr {
            let leaf = match base {
                Base::Iv => Expr::var("i".to_string()),
                Base::Inv => Expr::var("k".to_string()),
                // Cmm has no negative literals; fold the offset in.
                Base::Lit(v) => return Expr::int((v + off).max(0)),
            };
            match off.cmp(&0) {
                std::cmp::Ordering::Equal => leaf,
                std::cmp::Ordering::Greater => Expr::new(
                    ExprKind::Binary(BinOp::Add, Box::new(leaf), Box::new(Expr::int(off))),
                    Default::default(),
                ),
                std::cmp::Ordering::Less => Expr::new(
                    ExprKind::Binary(BinOp::Sub, Box::new(leaf), Box::new(Expr::int(-off))),
                    Default::default(),
                ),
            }
        }

        fn value_of(base: Base, off: i64, i: i64, k: i64) -> i64 {
            match base {
                Base::Iv => i + off,
                Base::Inv => k + off,
                Base::Lit(v) => (v + off).max(0),
            }
        }

        fn arb_base(g: &mut Rng) -> Base {
            match g.below(3) {
                0 => Base::Iv,
                1 => Base::Inv,
                _ => Base::Lit(g.irange(0, 20)),
            }
        }

        /// `relation()`'s `Eq`/`Ne` claims must hold for every concrete
        /// valuation consistent with the edge: loop-invariant `k` and
        /// same-iteration `i` agree across both bindings; carried edges
        /// bind `i` to two *different* iterations.
        #[test]
        fn claims_hold_on_concrete_valuations() {
            let mut g = Rng(0x00ce_55e7_0009);
            for _ in 0..512 {
                let (base_a, off_a) = (arb_base(&mut g), g.irange(-5, 6));
                let (base_b, off_b) = (arb_base(&mut g), g.irange(-5, 6));
                let carried = g.below(2) == 1;
                let i1 = g.irange(-50, 50);
                let delta = g.irange(1, 100);
                let k = g.irange(-50, 50);
                let ea = expr_of(base_a, off_a);
                let eb = expr_of(base_b, off_b);
                let written: BTreeSet<&String> = BTreeSet::new();
                let rel = relation(&ea, &eb, carried, Some("i"), &written);
                let i2 = if carried { i1 + delta } else { i1 };
                let va = value_of(base_a, off_a, i1, k);
                let vb = value_of(base_b, off_b, i2, k);
                match rel {
                    Rel::Eq => {
                        assert_eq!(va, vb, "claimed Eq: {ea:?} vs {eb:?} (carried={carried})")
                    }
                    Rel::Ne => {
                        assert_ne!(va, vb, "claimed Ne: {ea:?} vs {eb:?} (carried={carried})")
                    }
                    Rel::Unknown => {}
                }
            }
        }
    }

    #[test]
    fn predicate_on_invariant_var_relaxes_nothing_across_iterations() {
        // Predicating on a loop-invariant variable makes the predicate
        // `k != k` = false across iterations: no relaxation.
        let (pdg, n) = pipeline(
            r#"
            #pragma CommSetDecl(S, Self)
            #pragma CommSetPredicate(S, (a), (b), a != b)
            extern int rng();
            int main() {
                int n = 10;
                int k = 3;
                for (int i = 0; i < n; i = i + 1) {
                    int v = 0;
                    #pragma CommSet(S(k))
                    { v = rng(); }
                }
                return 0;
            }
            "#,
        );
        assert_eq!(n, 0, "{}", pdg.dump());
        assert!(!pdg.doall_legal());
    }
}
