//! Per-function side-effect summaries over abstract memory locations.
//!
//! Shared mutable state in Cmm is reachable only through globals and
//! intrinsic channels, so a function's memory footprint is the union of its
//! direct global accesses, its intrinsics' declared channels, and its
//! callees' footprints — a simple fixpoint over the call graph.

use commset_ir::IntrinsicTable;
use commset_lang::ast::*;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// An abstract memory location visible across function boundaries.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Location {
    /// An intrinsic effect channel, by name (e.g. `FS`, `RNG_SEED`).
    Channel(String),
    /// A global scalar.
    Global(String),
    /// A global array (treated as one location).
    GlobalArray(String),
    /// A local array of the function under analysis (only meaningful within
    /// one function; never escapes a summary).
    LocalArray(String),
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Location::Channel(c) => write!(f, "channel {c}"),
            Location::Global(g) => write!(f, "global {g}"),
            Location::GlobalArray(g) => write!(f, "global array {g}"),
            Location::LocalArray(a) => write!(f, "array {a}"),
        }
    }
}

/// Read/write footprint of a function.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FuncEffects {
    /// Locations possibly read.
    pub reads: BTreeSet<Location>,
    /// Locations possibly written.
    pub writes: BTreeSet<Location>,
}

impl FuncEffects {
    /// True if the function touches no shared location.
    pub fn is_pure(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }

    fn absorb(&mut self, other: &FuncEffects) -> bool {
        let before = (self.reads.len(), self.writes.len());
        self.reads.extend(other.reads.iter().cloned());
        self.writes.extend(other.writes.iter().cloned());
        before != (self.reads.len(), self.writes.len())
    }
}

/// Computes summaries for every function in `program`.
///
/// Unknown callees (neither program functions nor registered intrinsics)
/// are treated as touching the conservative `WORLD` channel.
pub fn summarize(program: &Program, intrinsics: &IntrinsicTable) -> HashMap<String, FuncEffects> {
    let globals: HashMap<String, bool> = program
        .items
        .iter()
        .filter_map(|i| match i {
            Item::Global(g) => Some((g.name.clone(), g.array_len.is_some())),
            _ => None,
        })
        .collect();
    let extern_names: BTreeSet<String> = program
        .items
        .iter()
        .filter_map(|i| match i {
            Item::Extern(e) => Some(e.name.clone()),
            _ => None,
        })
        .collect();
    let mut direct: BTreeMap<String, FuncEffects> = BTreeMap::new();
    let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for item in &program.items {
        let Item::Func(f) = item else { continue };
        let mut fx = FuncEffects::default();
        let mut callees = BTreeSet::new();
        // Names declared locally shadow globals.
        let mut locals: BTreeSet<String> = f.params.iter().map(|p| p.name.clone()).collect();
        walk_stmts(&f.body, &mut |s| {
            if let StmtKind::VarDecl { name, .. } = &s.kind {
                locals.insert(name.clone());
            }
        });
        walk_stmts(&f.body, &mut |s| {
            if let StmtKind::Assign { target, .. } = &s.kind {
                match target {
                    LValue::Var(n, _) => {
                        if !locals.contains(n) && globals.contains_key(n) {
                            fx.writes.insert(Location::Global(n.clone()));
                        }
                    }
                    LValue::Index(n, _, _) => {
                        if !locals.contains(n) && globals.contains_key(n) {
                            fx.writes.insert(Location::GlobalArray(n.clone()));
                        }
                    }
                }
            }
            stmt_exprs(s, &mut |e| {
                walk_expr(e, &mut |x| match &x.kind {
                    ExprKind::Var(n) if !locals.contains(n) && globals.contains_key(n) => {
                        fx.reads.insert(Location::Global(n.clone()));
                    }
                    ExprKind::Index(n, _) if !locals.contains(n) && globals.contains_key(n) => {
                        fx.reads.insert(Location::GlobalArray(n.clone()));
                    }
                    ExprKind::Call(n, _) => {
                        callees.insert(n.clone());
                    }
                    _ => {}
                });
            });
        });
        calls.insert(f.name.clone(), callees);
        direct.insert(f.name.clone(), fx);
    }
    // Seed intrinsic effects into each caller's direct footprint.
    let mut summaries: HashMap<String, FuncEffects> = direct.clone().into_iter().collect();
    for (fname, callees) in &calls {
        let fx = summaries.get_mut(fname).unwrap();
        for c in callees {
            if direct.contains_key(c) {
                continue; // program function: handled by the fixpoint
            }
            match intrinsics.lookup(c) {
                Some((_, sig)) => {
                    for ch in &sig.reads {
                        fx.reads
                            .insert(Location::Channel(intrinsics.channels.name(*ch).to_string()));
                    }
                    for ch in &sig.writes {
                        fx.writes
                            .insert(Location::Channel(intrinsics.channels.name(*ch).to_string()));
                    }
                }
                None if extern_names.contains(c) => {
                    // Extern without a registration: conservative.
                    fx.reads.insert(Location::Channel("WORLD".to_string()));
                    fx.writes.insert(Location::Channel("WORLD".to_string()));
                }
                None => {
                    // Call to an undefined name; sema rejects this, but stay
                    // conservative for robustness.
                    fx.reads.insert(Location::Channel("WORLD".to_string()));
                    fx.writes.insert(Location::Channel("WORLD".to_string()));
                }
            }
        }
    }
    // Fixpoint over program-function calls.
    let mut changed = true;
    while changed {
        changed = false;
        let names: Vec<String> = calls.keys().cloned().collect();
        for fname in &names {
            let callee_fx: Vec<FuncEffects> = calls[fname]
                .iter()
                .filter_map(|c| summaries.get(c).cloned())
                .collect();
            let fx = summaries.get_mut(fname).unwrap();
            for cfx in &callee_fx {
                if fx.absorb(cfx) {
                    changed = true;
                }
            }
        }
    }
    summaries
}

/// Functions whose return value is always a *fresh* instance handle — the
/// allocation-site freshness the paper's dependence analysis exploits for
/// per-iteration allocations (456.hmmer's matrices, md5sum's streams).
///
/// A function qualifies when every `return e;` returns either a direct
/// call to a fresh intrinsic/function, or a variable whose only
/// assignments in the body are such calls. Computed as a fixpoint so
/// outlined regions wrapping allocators qualify too.
pub fn fresh_functions(program: &Program, intrinsics: &IntrinsicTable) -> BTreeSet<String> {
    let mut fresh: BTreeSet<String> = BTreeSet::new();
    loop {
        let mut changed = false;
        for item in &program.items {
            let Item::Func(f) = item else { continue };
            if fresh.contains(&f.name) {
                continue;
            }
            if function_returns_fresh(f, intrinsics, &fresh) {
                fresh.insert(f.name.clone());
                changed = true;
            }
        }
        if !changed {
            return fresh;
        }
    }
}

fn call_is_fresh(name: &str, intrinsics: &IntrinsicTable, fresh: &BTreeSet<String>) -> bool {
    intrinsics.is_fresh_handle(name) || fresh.contains(name)
}

fn function_returns_fresh(
    f: &commset_lang::ast::FuncDecl,
    intrinsics: &IntrinsicTable,
    fresh: &BTreeSet<String>,
) -> bool {
    let mut returns = 0usize;
    let mut all_fresh = true;
    walk_stmts(&f.body, &mut |s| {
        if let StmtKind::Return(Some(e)) = &s.kind {
            returns += 1;
            let ok = match &e.kind {
                ExprKind::Call(name, _) => call_is_fresh(name, intrinsics, fresh),
                ExprKind::Var(v) => var_only_assigned_fresh(f, v, intrinsics, fresh),
                _ => false,
            };
            all_fresh &= ok;
        }
    });
    returns > 0 && all_fresh
}

fn var_only_assigned_fresh(
    f: &commset_lang::ast::FuncDecl,
    v: &str,
    intrinsics: &IntrinsicTable,
    fresh: &BTreeSet<String>,
) -> bool {
    let mut writes = 0usize;
    let mut all_fresh = true;
    walk_stmts(&f.body, &mut |s| match &s.kind {
        StmtKind::Assign { target, value, .. } if target.name() == v => {
            writes += 1;
            all_fresh &=
                matches!(&value.kind, ExprKind::Call(n, _) if call_is_fresh(n, intrinsics, fresh));
        }
        StmtKind::VarDecl {
            name,
            init: Some(init),
            ..
        } if name == v => {
            writes += 1;
            all_fresh &=
                matches!(&init.kind, ExprKind::Call(n, _) if call_is_fresh(n, intrinsics, fresh));
        }
        _ => {}
    });
    writes > 0 && all_fresh
}

#[cfg(test)]
mod tests {
    use super::*;
    use commset_lang::ast::Type;

    #[test]
    fn fresh_function_summary_propagates_through_wrappers() {
        let mut t = IntrinsicTable::new();
        t.register("alloc", vec![Type::Int], Type::Handle, &[], &["MAT"], 10);
        t.mark_fresh_handle("alloc");
        t.register("reuse", vec![], Type::Handle, &["MAT"], &[], 10);
        let unit = commset_lang::compile_unit(
            r#"
            extern handle alloc(int n);
            extern handle reuse();
            handle wrap(int n) { handle m = alloc(n); return m; }
            handle wrap2(int n) { return wrap(n); }
            handle not_fresh() { return reuse(); }
            handle mixed(int n) { handle m = alloc(n); m = reuse(); return m; }
            int main() { return 0; }
            "#,
        )
        .unwrap();
        let fresh = fresh_functions(&unit.program, &t);
        assert!(fresh.contains("wrap"));
        assert!(fresh.contains("wrap2"), "fixpoint through wrappers");
        assert!(!fresh.contains("not_fresh"));
        assert!(
            !fresh.contains("mixed"),
            "a non-fresh assignment disqualifies"
        );
        assert!(!fresh.contains("main"));
    }

    fn table() -> IntrinsicTable {
        let mut t = IntrinsicTable::new();
        t.register("rng_next", vec![], Type::Int, &["SEED"], &["SEED"], 10);
        t.register(
            "print_val",
            vec![Type::Int],
            Type::Void,
            &[],
            &["CONSOLE"],
            5,
        );
        t
    }

    fn summ(src: &str) -> HashMap<String, FuncEffects> {
        let unit = commset_lang::compile_unit(src).unwrap();
        summarize(&unit.program, &table())
    }

    #[test]
    fn direct_global_effects() {
        let s = summ("int g; int main() { g = g + 1; return g; }");
        let m = &s["main"];
        assert!(m.reads.contains(&Location::Global("g".into())));
        assert!(m.writes.contains(&Location::Global("g".into())));
    }

    #[test]
    fn locals_shadow_globals() {
        let s = summ("int g; int main() { int g = 1; g = 2; return g; }");
        assert!(s["main"].is_pure());
    }

    #[test]
    fn intrinsic_channels_flow_to_callers() {
        let s = summ(
            "extern int rng_next(); int helper() { return rng_next(); } int main() { return helper(); }",
        );
        assert!(s["helper"]
            .writes
            .contains(&Location::Channel("SEED".into())));
        assert!(s["main"].writes.contains(&Location::Channel("SEED".into())));
    }

    #[test]
    fn fixpoint_handles_recursion() {
        let s = summ(
            "int g; int f(int n) { if (n > 0) { g = g + 1; return f(n - 1); } return 0; } int main() { return f(3); }",
        );
        assert!(s["f"].writes.contains(&Location::Global("g".into())));
        assert!(s["main"].writes.contains(&Location::Global("g".into())));
    }

    #[test]
    fn unregistered_extern_is_conservative() {
        let s = summ("extern void mystery(); int main() { mystery(); return 0; }");
        assert!(s["main"]
            .writes
            .contains(&Location::Channel("WORLD".into())));
    }

    #[test]
    fn global_arrays_are_one_location() {
        let s = summ("int a[8]; int main() { a[0] = 1; return a[1]; }");
        assert!(s["main"]
            .writes
            .contains(&Location::GlobalArray("a".into())));
        assert!(s["main"].reads.contains(&Location::GlobalArray("a".into())));
    }
}
