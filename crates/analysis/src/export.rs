//! Region/predicate metadata export.
//!
//! The dynamic commutativity checker (`commset-checker`) and the
//! `commsetc check` report need a flat, serializable view of what the
//! metadata manager produced: which outlined region functions exist,
//! which CommSet each belongs to, whether the set is predicated (and by
//! which synthesized predicate function), and where the original
//! annotation lives in the source. [`region_catalog`] assembles that view
//! from a [`ManagedUnit`].

use crate::metadata::ManagedUnit;
use commset_lang::ast::SetKind;

/// One commutative region (an outlined `__commset_region_*` function) or
/// an annotated original function, with its CommSet membership metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionInfo {
    /// The member function's name (outlined regions are
    /// `__commset_region_<n>`).
    pub func: String,
    /// The CommSet's source name (or synthesized `__self_*` name).
    pub set_name: String,
    /// `Self` or `Group` spelling of the set's kind.
    pub kind: &'static str,
    /// True when the set carries a `CommSetPredicate`.
    pub predicated: bool,
    /// The synthesized predicate function (`__pred_<SET>`), when
    /// predicated. It exists as an ordinary program function, so dynamic
    /// tools can evaluate it with a VM.
    pub predicate_func: Option<String>,
    /// For each predicate parameter, the index of the member function's
    /// parameter carrying the instance argument.
    pub arg_params: Vec<usize>,
    /// True when `CommSetNoSync` applies (no locks are synthesized).
    pub nosync: bool,
    /// 1-based source line of the original annotation site.
    pub origin_line: u32,
}

/// Flattens a managed unit's membership tables into one catalog row per
/// (member function, set) pair, sorted by function name then set name —
/// a deterministic order suitable for reports and golden tests.
pub fn region_catalog(managed: &ManagedUnit) -> Vec<RegionInfo> {
    let mut rows: Vec<RegionInfo> = managed
        .members
        .iter()
        .map(|m| {
            let set = managed.set(m.set);
            let origin_line = managed
                .region_origins
                .get(&m.func)
                .map(|s| s.line)
                .unwrap_or(m.span.line);
            RegionInfo {
                func: m.func.clone(),
                set_name: set.name.clone(),
                kind: set.kind.as_str(),
                predicated: set.predicate.is_some(),
                predicate_func: set.predicate.as_ref().map(|p| p.func_name.clone()),
                arg_params: m.arg_params.clone(),
                nosync: set.nosync,
                origin_line,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        a.func
            .cmp(&b.func)
            .then_with(|| a.set_name.cmp(&b.set_name))
    });
    rows
}

/// Renders the catalog as an aligned text table (one row per membership).
pub fn render_catalog(rows: &[RegionInfo]) -> String {
    let mut out =
        String::from("region                        set           kind   pred  nosync line\n");
    for r in rows {
        let pred = if r.predicated {
            r.predicate_func.as_deref().unwrap_or("yes")
        } else {
            "-"
        };
        out.push_str(&format!(
            "{:<29} {:<13} {:<6} {:<5} {:<6} {}\n",
            r.func, r.set_name, r.kind, pred, r.nosync, r.origin_line
        ));
    }
    out
}

/// The [`SetKind`] spelling helper re-exported for checker reports.
pub fn kind_str(kind: SetKind) -> &'static str {
    kind.as_str()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::manage;

    const SRC: &str = r#"
#pragma CommSetDecl(FSET, Group)
#pragma CommSetPredicate(FSET, (i1), (i2), i1 != i2)
extern void touch(int i);
int main() {
    for (int i = 0; i < 8; i = i + 1) {
        #pragma CommSet(SELF, FSET(i))
        { touch(i); }
    }
    return 0;
}
"#;

    #[test]
    fn catalog_lists_outlined_regions_with_set_metadata() {
        let unit = commset_lang::compile_unit(SRC).unwrap();
        let managed = manage(unit).unwrap();
        let rows = region_catalog(&managed);
        assert!(!rows.is_empty());
        // Every row names an existing member function.
        for r in &rows {
            assert!(managed.sigs.contains_key(&r.func), "unknown fn {}", r.func);
        }
        // The predicated FSET membership is exported with its predicate
        // function and parameter mapping.
        let fset = rows
            .iter()
            .find(|r| r.set_name == "FSET")
            .expect("FSET membership");
        assert_eq!(fset.kind, "Group");
        assert!(fset.predicated);
        assert_eq!(fset.predicate_func.as_deref(), Some("__pred_FSET"));
        assert_eq!(fset.arg_params.len(), 1);
        assert!(fset.func.starts_with("__commset_region_"), "{}", fset.func);
        // There is also an implicit SELF membership on the same region.
        assert!(rows
            .iter()
            .any(|r| r.func == fset.func && r.set_name != "FSET"));
        let text = render_catalog(&rows);
        assert!(text.contains("__pred_FSET"), "{text}");
    }
}
