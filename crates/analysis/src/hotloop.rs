//! Locating the parallelization target loop and computing per-statement
//! read/write sets.
//!
//! The paper selects hot loops via runtime profiling (§4); our workloads
//! are single-hot-loop programs, so the target is the first top-level loop
//! of a designated function (by default `main`), with the Table-2 execution
//! fractions recorded in the workload descriptors.

use crate::effects::{FuncEffects, Location};
use crate::metadata::ManagedUnit;
use commset_lang::ast::*;
use commset_lang::diag::{Diagnostic, Phase};
use commset_lang::token::Span;
use std::collections::{BTreeSet, HashMap};

/// Whether the loop trip structure admits static iteration scheduling.
#[derive(Debug, Clone, PartialEq)]
pub enum LoopShape {
    /// `for (iv = init; iv < bound; iv = iv + step)` with a loop-invariant
    /// bound — DOALL-schedulable.
    Countable {
        /// Induction variable name.
        iv: String,
        /// Initial value expression.
        init: Expr,
        /// Comparison at the header (`<`, `<=`, `>`, `>=`, `!=`).
        cmp: BinOp,
        /// Loop-invariant bound expression.
        bound: Expr,
        /// Signed step.
        step: i64,
    },
    /// Any other loop (e.g. pointer chasing) — pipeline-only.
    Uncountable {
        /// The loop condition.
        cond: Expr,
    },
}

impl LoopShape {
    /// True for [`LoopShape::Countable`].
    pub fn is_countable(&self) -> bool {
        matches!(self, LoopShape::Countable { .. })
    }

    /// The induction variable name, if countable.
    pub fn iv(&self) -> Option<&str> {
        match self {
            LoopShape::Countable { iv, .. } => Some(iv),
            LoopShape::Uncountable { .. } => None,
        }
    }
}

/// One call site contributing a memory access (used by Algorithm 1 to bind
/// predicate arguments to actuals).
#[derive(Debug, Clone, PartialEq)]
pub struct CallRef {
    /// The called function.
    pub callee: String,
    /// Actual argument expressions at the call site.
    pub args: Vec<Expr>,
    /// Call location.
    pub span: Span,
}

/// One abstract memory access performed by a statement.
#[derive(Debug, Clone, PartialEq)]
pub struct MemAccess {
    /// The location touched.
    pub loc: Location,
    /// Whether it may write.
    pub write: bool,
    /// The call responsible, or `None` for direct global/array accesses.
    pub via: Option<CallRef>,
    /// True if the location is an array declared *inside* the loop body
    /// (fresh per iteration, so never loop-carried).
    pub iter_private: bool,
    /// For instance-partitioned channels: the handle variable the access
    /// targets (None = unknown, conservative).
    pub instance: Option<String>,
}

/// A top-level statement of the hot-loop body with its dependence sets.
#[derive(Debug, Clone)]
pub struct LoopStmt {
    /// The statement id.
    pub id: StmtId,
    /// Its source span.
    pub span: Span,
    /// Short printable label (for PDG dumps and diagnostics).
    pub label: String,
    /// Scalar locals read (transitively, at this statement).
    pub reg_reads: BTreeSet<String>,
    /// Scalar locals possibly written.
    pub reg_writes: BTreeSet<String>,
    /// Scalar locals definitely written (unconditional direct assignment).
    pub must_writes: BTreeSet<String>,
    /// Abstract memory accesses.
    pub mem: Vec<MemAccess>,
    /// Estimated per-iteration weight (for pipeline balancing).
    pub weight: u64,
}

/// One write to a handle variable within the loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandleWrite {
    /// Position of the writing statement in the body.
    pub pos: usize,
    /// True if the written value is a fresh instance (allocator call).
    pub fresh: bool,
    /// True if the write executes unconditionally each iteration.
    pub must: bool,
}

/// The analyzed hot loop.
#[derive(Debug, Clone)]
pub struct HotLoop {
    /// The containing function.
    pub func: String,
    /// The loop statement's id.
    pub stmt_id: StmtId,
    /// The loop statement's span.
    pub span: Span,
    /// Countable or not.
    pub shape: LoopShape,
    /// Scalar variables the loop condition reads.
    pub cond_reads: BTreeSet<String>,
    /// Top-level body statements, in order.
    pub body: Vec<LoopStmt>,
    /// Names of locals declared before the loop that the body uses
    /// (the parallel environment that codegen must pass to workers).
    pub live_ins: BTreeSet<String>,
    /// Per handle variable: its body writers, for the fresh-instance
    /// reasoning over instance-partitioned channels.
    pub handle_writers: std::collections::BTreeMap<String, Vec<HandleWrite>>,
    /// Declared reduction accumulators (`CommSetReduction`), validated:
    /// every body write is a matching update and no other statement reads
    /// the variable.
    pub reductions: Vec<ReductionPragma>,
}

impl HotLoop {
    /// Statement ids of the body, in order.
    pub fn stmt_ids(&self) -> Vec<StmtId> {
        self.body.iter().map(|s| s.id).collect()
    }
}

fn err(msg: impl Into<String>, span: Span) -> Diagnostic {
    Diagnostic::new(Phase::Commset, msg, span)
}

/// Finds and analyzes the hot loop of `func` in the managed program.
///
/// `intrinsics` supplies the effect channels and base costs of direct
/// intrinsic calls from the loop body.
///
/// # Errors
///
/// Returns a diagnostic if the function has no top-level loop, or if the
/// loop body uses control flow the statement-level PDG cannot model
/// (top-level `break`/`continue`).
pub fn find_hot_loop(
    managed: &ManagedUnit,
    summaries: &HashMap<String, FuncEffects>,
    intrinsics: &commset_ir::IntrinsicTable,
    func: &str,
) -> Result<HotLoop, Diagnostic> {
    let f = managed
        .program
        .items
        .iter()
        .find_map(|i| match i {
            Item::Func(fd) if fd.name == func => Some(fd),
            _ => None,
        })
        .ok_or_else(|| {
            Diagnostic::global(
                Phase::Commset,
                format!("no function `{func}` to parallelize"),
            )
        })?;
    let loop_stmt = f
        .body
        .stmts
        .iter()
        .find(|s| matches!(s.kind, StmtKind::For { .. } | StmtKind::While { .. }))
        .ok_or_else(|| err(format!("`{func}` has no top-level loop"), f.span))?;

    // Locals of the enclosing function (loop-body arrays counted
    // separately) and global names.
    let globals = &managed.globals;

    let (shape, cond_reads, body_stmts) = match &loop_stmt.kind {
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            let shape = classify_for(init.as_deref(), cond.as_ref(), step.as_deref(), body)
                .unwrap_or_else(|| LoopShape::Uncountable {
                    cond: cond.clone().unwrap_or_else(|| Expr::int(1)),
                });
            let mut cond_reads = BTreeSet::new();
            if let Some(c) = cond {
                collect_var_reads(c, &mut cond_reads);
            }
            (shape, cond_reads, body_as_stmts(body))
        }
        StmtKind::While { cond, body } => {
            let mut cond_reads = BTreeSet::new();
            collect_var_reads(cond, &mut cond_reads);
            (
                LoopShape::Uncountable { cond: cond.clone() },
                cond_reads,
                body_as_stmts(body),
            )
        }
        _ => unreachable!(),
    };

    // Reject top-level non-local control flow (simplifies dominance to
    // statement order).
    for s in &body_stmts {
        let mut depth = 0u32;
        let mut bad: Option<Span> = None;
        check_ctl(s, &mut depth, &mut bad);
        if let Some(sp) = bad {
            return Err(err(
                "hot-loop body uses break/continue at loop level; restructure the loop",
                sp,
            ));
        }
    }

    // Arrays declared inside the body are iteration-private.
    let mut body_arrays: BTreeSet<String> = BTreeSet::new();
    let mut body_decls: BTreeSet<String> = BTreeSet::new();
    for s in &body_stmts {
        walk_sub(s, &mut |x| {
            if let StmtKind::VarDecl {
                name, array_len, ..
            } = &x.kind
            {
                body_decls.insert(name.clone());
                if array_len.is_some() {
                    body_arrays.insert(name.clone());
                }
            }
        });
    }
    // Arrays declared before the loop in the hot function.
    let mut outer_arrays: BTreeSet<String> = BTreeSet::new();
    for s in &f.body.stmts {
        if s.id == loop_stmt.id {
            break;
        }
        walk_sub(s, &mut |x| {
            if let StmtKind::VarDecl {
                name,
                array_len: Some(_),
                ..
            } = &x.kind
            {
                outer_arrays.insert(name.clone());
            }
        });
    }

    let mut body = Vec::new();
    for (idx, s) in body_stmts.iter().enumerate() {
        body.push(analyze_stmt(
            s,
            idx,
            summaries,
            intrinsics,
            &managed.sigs,
            globals,
            &body_arrays,
            &outer_arrays,
        ));
    }

    // Live-ins: names read anywhere in the body (or by predicates/cond)
    // that are not declared in the body and are not globals.
    let mut used: BTreeSet<String> = cond_reads.clone();
    for st in &body {
        used.extend(st.reg_reads.iter().cloned());
        used.extend(st.reg_writes.iter().cloned());
    }
    let iv_name = shape.iv().map(str::to_string);
    let live_ins: BTreeSet<String> = used
        .into_iter()
        .filter(|n| {
            !body_decls.contains(n)
                && !globals.contains_key(n)
                && Some(n.as_str()) != iv_name.as_deref()
        })
        .collect();

    // Handle-variable writers (fresh-instance reasoning for
    // instance-partitioned channels).
    let fresh_fns = crate::effects::fresh_functions(&managed.program, intrinsics);
    let is_fresh_call = |name: &str| intrinsics.is_fresh_handle(name) || fresh_fns.contains(name);
    let mut handle_writers: std::collections::BTreeMap<String, Vec<HandleWrite>> =
        std::collections::BTreeMap::new();
    for (pos, stmt_ast) in body_stmts.iter().enumerate() {
        for v in &body[pos].reg_writes {
            let fresh = match &stmt_ast.kind {
                StmtKind::Assign {
                    target: LValue::Var(name, _),
                    op: AssignOp::Set,
                    value:
                        Expr {
                            kind: ExprKind::Call(f, _),
                            ..
                        },
                } if name == v => is_fresh_call(f),
                StmtKind::VarDecl {
                    name,
                    init:
                        Some(Expr {
                            kind: ExprKind::Call(f, _),
                            ..
                        }),
                    ..
                } if name == v => is_fresh_call(f),
                _ => false,
            };
            handle_writers
                .entry(v.clone())
                .or_default()
                .push(HandleWrite {
                    pos,
                    fresh,
                    must: body[pos].must_writes.contains(v),
                });
        }
    }

    // Validate declared reductions: each body write of the accumulator is
    // an update matching the declared operator, and nothing else reads it.
    for r in &loop_stmt.reductions {
        if cond_reads.contains(&r.var) {
            return Err(err(
                format!(
                    "reduction variable `{}` cannot steer the loop condition",
                    r.var
                ),
                r.span,
            ));
        }
        for (pos, st) in body_stmts.iter().enumerate() {
            let writes = body[pos].reg_writes.contains(&r.var);
            let reads = body[pos].reg_reads.contains(&r.var);
            if writes {
                if !is_reduction_update(st, &r.var, r.op) {
                    return Err(err(
                        format!(
                            "statement updates reduction variable `{}` with a form that does not match `{}`",
                            r.var,
                            r.op.as_str()
                        ),
                        st.span,
                    ));
                }
            } else if reads {
                return Err(err(
                    format!(
                        "reduction variable `{}` is read outside its updates; partial sums would be observable",
                        r.var
                    ),
                    st.span,
                ));
            }
        }
    }

    Ok(HotLoop {
        func: func.to_string(),
        stmt_id: loop_stmt.id,
        span: loop_stmt.span,
        shape,
        cond_reads,
        body,
        live_ins,
        handle_writers,
        reductions: loop_stmt.reductions.clone(),
    })
}

/// Recognizes the update forms a reduction permits: `v += e` / `v = v + e`
/// / `v = e + v` (Add), the `*` analogues (Mul), and the guarded-copy
/// pattern `if (x > v) v = x;` (Max) / `if (x < v) v = x;` (Min), with `e`
/// not reading `v`.
fn is_reduction_update(s: &Stmt, var: &str, op: ReductionOp) -> bool {
    let rhs_avoids_var = |e: &Expr| {
        let mut reads = BTreeSet::new();
        collect_var_reads(e, &mut reads);
        !reads.contains(var)
    };
    match (&s.kind, op) {
        (
            StmtKind::Assign {
                target: LValue::Var(v, _),
                op: AssignOp::Add,
                value,
            },
            ReductionOp::Add,
        ) if v == var => rhs_avoids_var(value),
        (
            StmtKind::Assign {
                target: LValue::Var(v, _),
                op: AssignOp::Mul,
                value,
            },
            ReductionOp::Mul,
        ) if v == var => rhs_avoids_var(value),
        (
            StmtKind::Assign {
                target: LValue::Var(v, _),
                op: AssignOp::Set,
                value,
            },
            ReductionOp::Add,
        ) if v == var => {
            matches!(&value.kind,
                ExprKind::Binary(BinOp::Add, a, b)
                    if (matches!(&a.kind, ExprKind::Var(x) if x == var) && rhs_avoids_var(b))
                        || (matches!(&b.kind, ExprKind::Var(x) if x == var) && rhs_avoids_var(a)))
        }
        (
            StmtKind::Assign {
                target: LValue::Var(v, _),
                op: AssignOp::Set,
                value,
            },
            ReductionOp::Mul,
        ) if v == var => {
            matches!(&value.kind,
                ExprKind::Binary(BinOp::Mul, a, b)
                    if (matches!(&a.kind, ExprKind::Var(x) if x == var) && rhs_avoids_var(b))
                        || (matches!(&b.kind, ExprKind::Var(x) if x == var) && rhs_avoids_var(a)))
        }
        (
            StmtKind::If {
                cond,
                then_branch,
                else_branch: None,
            },
            ReductionOp::Max | ReductionOp::Min,
        ) => {
            let guard_ok = match (&cond.kind, op) {
                (ExprKind::Binary(BinOp::Gt, a, b), ReductionOp::Max)
                | (ExprKind::Binary(BinOp::Lt, a, b), ReductionOp::Min) => {
                    rhs_avoids_var(a) && matches!(&b.kind, ExprKind::Var(x) if x == var)
                }
                _ => false,
            };
            let assign_ok = |st: &Stmt| {
                matches!(&st.kind,
                    StmtKind::Assign { target: LValue::Var(v, _), op: AssignOp::Set, value }
                        if v == var && rhs_avoids_var(value))
            };
            let body_ok = match &then_branch.kind {
                StmtKind::Block(b) => b.stmts.len() == 1 && assign_ok(&b.stmts[0]),
                _ => assign_ok(then_branch),
            };
            guard_ok && body_ok
        }
        _ => false,
    }
}

fn body_as_stmts(body: &Stmt) -> Vec<Stmt> {
    match &body.kind {
        StmtKind::Block(b) => b.stmts.clone(),
        _ => vec![body.clone()],
    }
}

/// Recognizes the countable-for shape at the AST level.
fn classify_for(
    init: Option<&Stmt>,
    cond: Option<&Expr>,
    step: Option<&Stmt>,
    body: &Stmt,
) -> Option<LoopShape> {
    let init = init?;
    let (iv, init_expr) = match &init.kind {
        StmtKind::VarDecl {
            name,
            ty: Type::Int,
            array_len: None,
            init: Some(e),
        } => (name.clone(), e.clone()),
        StmtKind::Assign {
            target: LValue::Var(name, _),
            op: AssignOp::Set,
            value,
        } => (name.clone(), value.clone()),
        _ => return None,
    };
    let cond = cond?;
    let ExprKind::Binary(cmp, lhs, rhs) = &cond.kind else {
        return None;
    };
    if !matches!(
        cmp,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Ne
    ) {
        return None;
    }
    let (cmp, bound) = match (&lhs.kind, &rhs.kind) {
        (ExprKind::Var(n), _) if *n == iv => (*cmp, (**rhs).clone()),
        (_, ExprKind::Var(n)) if *n == iv => (flip(*cmp), (**lhs).clone()),
        _ => return None,
    };
    let step_stmt = step?;
    let step_val = match &step_stmt.kind {
        StmtKind::Assign {
            target: LValue::Var(n, _),
            op: AssignOp::Add,
            value:
                Expr {
                    kind: ExprKind::IntLit(c),
                    ..
                },
        } if *n == iv => *c,
        StmtKind::Assign {
            target: LValue::Var(n, _),
            op: AssignOp::Sub,
            value:
                Expr {
                    kind: ExprKind::IntLit(c),
                    ..
                },
        } if *n == iv => -*c,
        StmtKind::Assign {
            target: LValue::Var(n, _),
            op: AssignOp::Set,
            value:
                Expr {
                    kind: ExprKind::Binary(op, a, b),
                    ..
                },
        } if *n == iv => match (op, &a.kind, &b.kind) {
            (BinOp::Add, ExprKind::Var(v), ExprKind::IntLit(c)) if *v == iv => *c,
            (BinOp::Add, ExprKind::IntLit(c), ExprKind::Var(v)) if *v == iv => *c,
            (BinOp::Sub, ExprKind::Var(v), ExprKind::IntLit(c)) if *v == iv => -*c,
            _ => return None,
        },
        _ => return None,
    };
    if step_val == 0 {
        return None;
    }
    // The bound and the IV must not be written in the body; the IV must not
    // be written either (beyond the step).
    let mut bound_vars = BTreeSet::new();
    collect_var_reads(&bound, &mut bound_vars);
    bound_vars.insert(iv.clone());
    let mut violated = false;
    walk_sub(body, &mut |x| {
        if let StmtKind::Assign { target, .. } = &x.kind {
            if bound_vars.contains(target.name()) {
                violated = true;
            }
        }
        if let StmtKind::VarDecl { name, .. } = &x.kind {
            // Shadowing declarations make invariance analysis murky; treat
            // as violation only for the IV itself.
            if *name == iv {
                violated = true;
            }
        }
    });
    if violated {
        return None;
    }
    Some(LoopShape::Countable {
        iv,
        init: init_expr,
        cmp,
        bound,
        step: step_val,
    })
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn check_ctl(s: &Stmt, depth: &mut u32, bad: &mut Option<Span>) {
    match &s.kind {
        StmtKind::Break | StmtKind::Continue if *depth == 0 && bad.is_none() => {
            *bad = Some(s.span);
        }
        StmtKind::While { body, .. } => {
            *depth += 1;
            check_ctl(body, depth, bad);
            *depth -= 1;
        }
        StmtKind::For {
            init, step, body, ..
        } => {
            if let Some(i) = init {
                check_ctl(i, depth, bad);
            }
            if let Some(st) = step {
                check_ctl(st, depth, bad);
            }
            *depth += 1;
            check_ctl(body, depth, bad);
            *depth -= 1;
        }
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            check_ctl(then_branch, depth, bad);
            if let Some(e) = else_branch {
                check_ctl(e, depth, bad);
            }
        }
        StmtKind::Block(b) => {
            for x in &b.stmts {
                check_ctl(x, depth, bad);
            }
        }
        _ => {}
    }
}

fn walk_sub(s: &Stmt, f: &mut dyn FnMut(&Stmt)) {
    f(s);
    match &s.kind {
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            walk_sub(then_branch, f);
            if let Some(e) = else_branch {
                walk_sub(e, f);
            }
        }
        StmtKind::While { body, .. } => walk_sub(body, f),
        StmtKind::For {
            init, step, body, ..
        } => {
            if let Some(i) = init {
                walk_sub(i, f);
            }
            if let Some(st) = step {
                walk_sub(st, f);
            }
            walk_sub(body, f);
        }
        StmtKind::Block(b) => {
            for x in &b.stmts {
                walk_sub(x, f);
            }
        }
        _ => {}
    }
}

fn collect_var_reads(e: &Expr, out: &mut BTreeSet<String>) {
    walk_expr(e, &mut |x| {
        if let ExprKind::Var(n) = &x.kind {
            out.insert(n.clone());
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn analyze_stmt(
    s: &Stmt,
    idx: usize,
    summaries: &HashMap<String, FuncEffects>,
    intrinsics: &commset_ir::IntrinsicTable,
    sigs: &HashMap<String, commset_lang::sema::FuncSig>,
    globals: &HashMap<String, (Type, Option<usize>)>,
    body_arrays: &BTreeSet<String>,
    outer_arrays: &BTreeSet<String>,
) -> LoopStmt {
    // Names declared inside this statement's subtree are private to it —
    // except a name declared by the statement itself at top level, which is
    // visible to sibling statements.
    let mut declared: BTreeSet<String> = BTreeSet::new();
    walk_sub(s, &mut |x| {
        if let StmtKind::VarDecl { name, .. } = &x.kind {
            declared.insert(name.clone());
        }
    });
    if let StmtKind::VarDecl { name, .. } = &s.kind {
        declared.remove(name);
    }
    let is_scalar_local =
        |n: &str| !globals.contains_key(n) && !body_arrays.contains(n) && !outer_arrays.contains(n);

    // Statement-private handle aliases (e.g. an inlined callee's renamed
    // parameter `handle __inl0_fp = fp;`): resolve instance attribution
    // through single-assignment copy chains back to the enclosing scope.
    let mut alias: HashMap<String, String> = HashMap::new();
    let mut private_write_counts: HashMap<String, u32> = HashMap::new();
    walk_sub(s, &mut |x| match &x.kind {
        StmtKind::VarDecl {
            name,
            init:
                Some(Expr {
                    kind: ExprKind::Var(src),
                    ..
                }),
            ..
        } if declared.contains(name) => {
            alias.insert(name.clone(), src.clone());
            *private_write_counts.entry(name.clone()).or_insert(0) += 1;
        }
        StmtKind::VarDecl { name, init, .. } if declared.contains(name) && init.is_some() => {
            *private_write_counts.entry(name.clone()).or_insert(0) += 1;
        }
        StmtKind::Assign { target, .. } if declared.contains(target.name()) => {
            *private_write_counts
                .entry(target.name().to_string())
                .or_insert(0) += 1;
        }
        _ => {}
    });
    let canonical_instance = move |mut v: String| -> String {
        let mut hops = 0;
        while let Some(src) = alias.get(&v) {
            if private_write_counts.get(&v).copied().unwrap_or(0) != 1 || hops > 8 {
                break;
            }
            v = src.clone();
            hops += 1;
        }
        v
    };

    let mut reg_reads = BTreeSet::new();
    let mut reg_writes = BTreeSet::new();
    let mut must_writes = BTreeSet::new();
    let mut mem: Vec<MemAccess> = Vec::new();
    let mut weight: u64 = 0;
    if let StmtKind::VarDecl {
        name,
        init: Some(_),
        ..
    } = &s.kind
    {
        if is_scalar_local(name) {
            reg_writes.insert(name.clone());
        }
    }

    // Direct must-writes: unconditional top-level assignment.
    match &s.kind {
        StmtKind::Assign { target, .. }
            if is_scalar_local(target.name()) && matches!(target, LValue::Var(..)) =>
        {
            must_writes.insert(target.name().to_string());
        }
        StmtKind::VarDecl {
            name,
            init: Some(_),
            ..
        } => {
            must_writes.insert(name.clone());
        }
        StmtKind::Block(b) => {
            // A top-level block: its direct children execute
            // unconditionally too.
            for c in &b.stmts {
                if let StmtKind::Assign {
                    target: LValue::Var(n, _),
                    ..
                } = &c.kind
                {
                    if is_scalar_local(n) && !declared.contains(n) {
                        must_writes.insert(n.clone());
                    }
                }
            }
        }
        _ => {}
    }

    walk_sub(s, &mut |x| {
        weight += 1;
        if let StmtKind::Assign { target, op, .. } = &x.kind {
            let n = target.name();
            match target {
                LValue::Var(..) => {
                    if declared.contains(n) {
                        // private to the statement
                    } else if globals.contains_key(n) {
                        mem.push(MemAccess {
                            loc: Location::Global(n.to_string()),
                            write: true,
                            via: None,
                            iter_private: false,
                            instance: None,
                        });
                        if *op != AssignOp::Set {
                            mem.push(MemAccess {
                                loc: Location::Global(n.to_string()),
                                write: false,
                                via: None,
                                iter_private: false,
                                instance: None,
                            });
                        }
                    } else {
                        reg_writes.insert(n.to_string());
                        if *op != AssignOp::Set {
                            reg_reads.insert(n.to_string());
                        }
                    }
                }
                LValue::Index(..) => {
                    if !declared.contains(n) {
                        let (loc, priv_) = array_loc(n, globals, body_arrays);
                        mem.push(MemAccess {
                            loc: loc.clone(),
                            write: true,
                            via: None,
                            iter_private: priv_,
                            instance: None,
                        });
                        if *op != AssignOp::Set {
                            mem.push(MemAccess {
                                loc,
                                write: false,
                                via: None,
                                iter_private: priv_,
                                instance: None,
                            });
                        }
                    }
                }
            }
        }
        stmt_exprs(x, &mut |e| {
            walk_expr(e, &mut |y| match &y.kind {
                ExprKind::Var(n) => {
                    if declared.contains(n) {
                    } else if globals.contains_key(n) {
                        mem.push(MemAccess {
                            loc: Location::Global(n.clone()),
                            write: false,
                            via: None,
                            iter_private: false,
                            instance: None,
                        });
                    } else {
                        reg_reads.insert(n.clone());
                    }
                }
                ExprKind::Index(n, _) if !declared.contains(n) => {
                    let (loc, priv_) = array_loc(n, globals, body_arrays);
                    mem.push(MemAccess {
                        loc,
                        write: false,
                        via: None,
                        iter_private: priv_,
                        instance: None,
                    });
                }
                ExprKind::Call(name, args) => {
                    let call = CallRef {
                        callee: name.clone(),
                        args: args.clone(),
                        span: y.span,
                    };
                    // For instance-partitioned channels: which handle
                    // variable does this call target? Attribution follows
                    // the callee's first handle-typed parameter (regions
                    // and intrinsics alike pass the instance there).
                    let handle_param_pos =
                        |param_tys: &[Type]| param_tys.iter().position(|t| *t == Type::Handle);
                    let instance_of = |pos: Option<usize>| -> Option<String> {
                        let p = pos?;
                        match args.get(p).map(|a| &a.kind) {
                            Some(ExprKind::Var(v)) => Some(canonical_instance(v.clone())),
                            _ => None,
                        }
                    };
                    if let Some(fx) = summaries.get(name) {
                        weight += 20;
                        let inst = instance_of(sigs.get(name).and_then(|s| {
                            handle_param_pos(&s.params.iter().map(|(_, t)| *t).collect::<Vec<_>>())
                        }));
                        let instance_for = |loc: &Location| -> Option<String> {
                            match loc {
                                Location::Channel(c) if intrinsics.is_per_instance_name(c) => {
                                    inst.clone()
                                }
                                _ => None,
                            }
                        };
                        for r in &fx.reads {
                            mem.push(MemAccess {
                                loc: r.clone(),
                                write: false,
                                via: Some(call.clone()),
                                iter_private: false,
                                instance: instance_for(r),
                            });
                        }
                        for w in &fx.writes {
                            mem.push(MemAccess {
                                loc: w.clone(),
                                write: true,
                                via: Some(call.clone()),
                                iter_private: false,
                                instance: instance_for(w),
                            });
                        }
                    } else {
                        // Intrinsic.
                        match intrinsics.lookup(name) {
                            Some((_, sig)) => {
                                weight += sig.base_cost;
                                let inst = instance_of(handle_param_pos(&sig.params));
                                for c in &sig.reads {
                                    mem.push(MemAccess {
                                        loc: Location::Channel(
                                            intrinsics.channels.name(*c).to_string(),
                                        ),
                                        write: false,
                                        via: Some(call.clone()),
                                        iter_private: false,
                                        instance: if intrinsics.is_per_instance(*c) {
                                            inst.clone()
                                        } else {
                                            None
                                        },
                                    });
                                }
                                for c in &sig.writes {
                                    mem.push(MemAccess {
                                        loc: Location::Channel(
                                            intrinsics.channels.name(*c).to_string(),
                                        ),
                                        write: true,
                                        via: Some(call.clone()),
                                        iter_private: false,
                                        instance: if intrinsics.is_per_instance(*c) {
                                            inst.clone()
                                        } else {
                                            None
                                        },
                                    });
                                }
                            }
                            None => {
                                weight += 5;
                                for write in [false, true] {
                                    mem.push(MemAccess {
                                        loc: Location::Channel("WORLD".to_string()),
                                        write,
                                        via: Some(call.clone()),
                                        iter_private: false,
                                        instance: None,
                                    });
                                }
                            }
                        }
                    }
                }
                _ => {}
            });
        });
    });

    let label = format!("S{idx}");
    LoopStmt {
        id: s.id,
        span: s.span,
        label,
        reg_reads,
        reg_writes,
        must_writes,
        mem,
        weight: weight.max(1),
    }
}

fn array_loc(
    n: &str,
    globals: &HashMap<String, (Type, Option<usize>)>,
    body_arrays: &BTreeSet<String>,
) -> (Location, bool) {
    if globals.contains_key(n) {
        (Location::GlobalArray(n.to_string()), false)
    } else {
        (Location::LocalArray(n.to_string()), body_arrays.contains(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::manage;
    use commset_ir::IntrinsicTable;

    fn setup(src: &str) -> (ManagedUnit, HashMap<String, FuncEffects>, IntrinsicTable) {
        let mut table = IntrinsicTable::new();
        table.register("fs_open", vec![Type::Int], Type::Handle, &[], &["FS"], 50);
        table.register("fs_close", vec![Type::Handle], Type::Void, &[], &["FS"], 30);
        table.register(
            "compute",
            vec![Type::Handle],
            Type::Int,
            &["FS_DATA"],
            &[],
            500,
        );
        table.register(
            "print_digest",
            vec![Type::Int],
            Type::Void,
            &[],
            &["CONSOLE"],
            40,
        );
        table.register(
            "ll_next",
            vec![Type::Handle],
            Type::Handle,
            &["GRAPH"],
            &[],
            10,
        );
        let unit = commset_lang::compile_unit(src).unwrap();
        let managed = manage(unit).unwrap();
        let summaries = crate::effects::summarize(&managed.program, &table);
        (managed, summaries, table)
    }

    const MD5ISH: &str = r#"
        extern handle fs_open(int idx);
        extern void fs_close(handle fp);
        extern int compute(handle fp);
        extern void print_digest(int d);
        int main() {
            int n = 10;
            for (int i = 0; i < n; i = i + 1) {
                handle fp = fs_open(i);
                int d = compute(fp);
                print_digest(d);
                fs_close(fp);
            }
            return 0;
        }
    "#;

    #[test]
    fn finds_countable_loop() {
        let (managed, summ, table) = setup(MD5ISH);
        let hot = find_hot_loop(&managed, &summ, &table, "main").unwrap();
        assert!(hot.shape.is_countable());
        assert_eq!(hot.shape.iv(), Some("i"));
        assert_eq!(hot.body.len(), 4);
        assert!(hot.live_ins.contains("n") || hot.cond_reads.contains("n"));
    }

    #[test]
    fn stmt_effects_attribute_calls() {
        let (managed, summ, table) = setup(MD5ISH);
        let hot = find_hot_loop(&managed, &summ, &table, "main").unwrap();
        let open = &hot.body[0];
        assert!(open
            .mem
            .iter()
            .any(|a| a.loc == Location::Channel("FS".into()) && a.write));
        assert_eq!(open.mem[0].via.as_ref().unwrap().callee, "fs_open");
        assert!(open.reg_writes.contains("fp"));
        let digest = &hot.body[2];
        assert!(digest.reg_reads.contains("d"));
        assert!(digest
            .mem
            .iter()
            .any(|a| a.loc == Location::Channel("CONSOLE".into())));
    }

    #[test]
    fn while_loop_is_uncountable() {
        let (managed, summ, table) = setup(
            r#"
            extern handle ll_next(handle h);
            int main() {
                handle node = handle(1);
                while (int(node) != 0) {
                    node = ll_next(node);
                }
                return 0;
            }
            "#,
        );
        let hot = find_hot_loop(&managed, &summ, &table, "main").unwrap();
        assert!(!hot.shape.is_countable());
        assert!(hot.cond_reads.contains("node"));
        assert_eq!(hot.body.len(), 1);
        assert!(hot.body[0].must_writes.contains("node"));
    }

    #[test]
    fn body_written_bound_is_uncountable() {
        let (managed, summ, table) = setup(
            "int main() { int n = 10; for (int i = 0; i < n; i = i + 1) { n = n - 1; } return n; }",
        );
        let hot = find_hot_loop(&managed, &summ, &table, "main").unwrap();
        assert!(!hot.shape.is_countable());
    }

    #[test]
    fn top_level_break_is_rejected() {
        let (managed, summ, table) = setup(
            "int main() { for (int i = 0; i < 9; i = i + 1) { if (i == 3) break; } return 0; }",
        );
        // The break sits inside an `if` at top level — still loop-level.
        assert!(find_hot_loop(&managed, &summ, &table, "main").is_err());
    }

    #[test]
    fn no_loop_is_an_error() {
        let (managed, summ, table) = setup("int main() { return 0; }");
        assert!(find_hot_loop(&managed, &summ, &table, "main").is_err());
    }

    #[test]
    fn body_declared_arrays_are_iter_private() {
        let (managed, summ, table) = setup(
            "int main() { for (int i = 0; i < 4; i = i + 1) { int buf[8]; buf[0] = i; int x = buf[0]; } return 0; }",
        );
        let hot = find_hot_loop(&managed, &summ, &table, "main").unwrap();
        // Array accesses appear but are iteration-private... except they are
        // declared inside the same top-level statement (the VarDecl is its
        // own statement), so accesses in later statements reference it.
        let writes: Vec<&MemAccess> = hot
            .body
            .iter()
            .flat_map(|s| &s.mem)
            .filter(|a| matches!(a.loc, Location::LocalArray(_)))
            .collect();
        assert!(!writes.is_empty());
        assert!(writes.iter().all(|a| a.iter_private));
    }
}
