//! # commset-analysis
//!
//! The COMMSET compiler middle end (paper §4.2–§4.4):
//!
//! * [`callgraph`] — AST-level call graph with reachability and cycle
//!   queries.
//! * [`metadata`] — the *CommSet Metadata Manager*: inlines call paths that
//!   enable named optional blocks, outlines commutative regions into their
//!   own functions (post-order, so nesting works), and checks whole-program
//!   *well-formedness* (no transitive calls between members of one set, no
//!   cycle in the CommSet graph).
//! * [`effects`] — per-function side-effect summaries over abstract memory
//!   locations (intrinsic channels, globals, local arrays), computed as a
//!   fixpoint over the call graph.
//! * [`hotloop`] — locates the parallelization target loop and computes
//!   per-statement read/write sets.
//! * [`pdg`] — the statement-level Program Dependence Graph with register,
//!   memory and control dependences, and loop-carried classification.
//! * [`symex`] — the symbolic interpreter that proves `CommSetPredicate`s
//!   always-true under induction-variable assertions.
//! * [`depanalysis`] — Algorithm 1: annotating PDG memory edges as
//!   unconditionally (`uco`) or inter-iteration (`ico`) commutative.
//! * [`scc`] — Tarjan SCCs over the (relaxed) PDG and the DAG-SCC used by
//!   the DSWP transform family.
//! * [`export`] — the flat region/predicate catalog consumed by the
//!   dynamic commutativity checker and `commsetc check`.

pub mod callgraph;
pub mod depanalysis;
pub mod effects;
pub mod export;
pub mod hotloop;
pub mod metadata;
pub mod pdg;
pub mod scc;
pub mod symex;

pub use depanalysis::{analyze_commutativity, CommAnnotation};
pub use export::{region_catalog, RegionInfo};
pub use hotloop::{HotLoop, LoopShape};
pub use metadata::{manage, ManagedUnit};
pub use pdg::{DepKind, Location, NodeId, Pdg, PdgEdge};
