//! The CommSet Metadata Manager (paper §4.2).
//!
//! Three canonicalization steps run before any dependence analysis:
//!
//! 1. **Call-path inlining** — every `CommSetNamedArgAdd` call site gets the
//!    callee inlined, so the enabled copy of the named block lands in the
//!    caller's scope where the predicate arguments are live. Call sites that
//!    do not enable the block keep calling the original function and retain
//!    sequential semantics.
//! 2. **Region outlining** — every commutative compound statement is
//!    extracted into its own function (innermost-first, so nested regions
//!    work). After this step *all* CommSet members are functions, exactly as
//!    in the paper.
//! 3. **Well-formedness** — no transitive calls between members of the same
//!    set, and the CommSet graph (set-to-set transitive call edges) is
//!    acyclic. Violations are compile errors; the parallelizer's
//!    deadlock-freedom guarantee rests on these checks.

use crate::callgraph::{find_cycle, CallGraph};
use commset_lang::ast::*;
use commset_lang::diag::{Diagnostic, Phase};
use commset_lang::sema::{CheckedUnit, CommSetDef, FuncSig, MemberRef, SetId};
use commset_lang::token::Span;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A CommSet membership after canonicalization: always a whole function.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncMember {
    /// The member function.
    pub func: String,
    /// The set it belongs to.
    pub set: SetId,
    /// For each predicate argument, the index of the member function's
    /// parameter carrying that argument (empty for unpredicated sets).
    pub arg_params: Vec<usize>,
    /// Original annotation site.
    pub span: Span,
}

/// The canonicalized program and its CommSet tables.
#[derive(Debug, Clone)]
pub struct ManagedUnit {
    /// The transformed program (inlined + outlined).
    pub program: Program,
    /// All CommSets (sema's plus implicit sets created for clones).
    pub commsets: Vec<CommSetDef>,
    /// All memberships, now function-level.
    pub members: Vec<FuncMember>,
    /// Updated signatures (original functions plus outlined regions).
    pub sigs: HashMap<String, FuncSig>,
    /// Global variables.
    pub globals: HashMap<String, (commset_lang::ast::Type, Option<usize>)>,
    /// Outlined region name → the source span of the original block.
    pub region_origins: HashMap<String, Span>,
    /// First statement id that is free for later transforms.
    pub next_stmt_id: u32,
}

impl ManagedUnit {
    /// The set with id `id`.
    pub fn set(&self, id: SetId) -> &CommSetDef {
        &self.commsets[id.0 as usize]
    }

    /// Looks up a set by name.
    pub fn set_by_name(&self, name: &str) -> Option<&CommSetDef> {
        self.commsets.iter().find(|s| s.name == name)
    }

    /// All memberships of `func`.
    pub fn memberships_of(&self, func: &str) -> Vec<&FuncMember> {
        self.members.iter().filter(|m| m.func == func).collect()
    }

    /// Sets shared by `f` and `g` under which they may commute:
    /// a Group set containing both (as distinct members), or — when
    /// `f == g` — a Self set containing the function.
    pub fn common_sets(&self, f: &str, g: &str) -> Vec<SetId> {
        let fs: BTreeSet<SetId> = self.memberships_of(f).iter().map(|m| m.set).collect();
        let gs: BTreeSet<SetId> = self.memberships_of(g).iter().map(|m| m.set).collect();
        fs.intersection(&gs)
            .filter(|&&s| {
                let kind = self.set(s).kind;
                if f == g {
                    kind == SetKind::SelfSet
                } else {
                    kind == SetKind::Group
                }
            })
            .copied()
            .collect()
    }
}

/// Runs the metadata manager over a checked unit.
///
/// # Errors
///
/// Returns a diagnostic if inlining preconditions fail (callee shape), if a
/// commutative block captures an outer local array or writes more than one
/// outer scalar, or if the well-formedness checks fail.
pub fn manage(unit: CheckedUnit) -> Result<ManagedUnit, Diagnostic> {
    let mut next_stmt_id = max_stmt_id(&unit.program) + 1;
    let mut mgr = Manager {
        commsets: unit.commsets.clone(),
        members: Vec::new(),
        sigs: unit.sigs.clone(),
        globals: unit.globals.clone(),
        region_origins: HashMap::new(),
        block_memberships: unit
            .members
            .iter()
            .filter_map(|m| match &m.member {
                MemberRef::Block(id) => Some((*id, (m.set, m.args.clone(), m.span))),
                MemberRef::Func(_) => None,
            })
            .fold(HashMap::new(), |mut acc, (id, entry)| {
                acc.entry(id).or_insert_with(Vec::new).push(entry);
                acc
            }),
        region_counter: 0,
        inline_counter: 0,
    };
    // Interface-level members carry over directly.
    for m in &unit.members {
        if let MemberRef::Func(name) = &m.member {
            let sig = &unit.sigs[name];
            let mut arg_params = Vec::new();
            for a in &m.args {
                let ExprKind::Var(pname) = &a.kind else {
                    unreachable!("sema enforces parameter-name args at interfaces");
                };
                let idx = sig
                    .params
                    .iter()
                    .position(|(n, _)| n == pname)
                    .expect("sema validated the parameter");
                arg_params.push(idx);
            }
            mgr.members.push(FuncMember {
                func: name.clone(),
                set: m.set,
                arg_params,
                span: m.span,
            });
        }
    }

    let mut program = unit.program;
    // Step 1: inline call paths that enable named blocks.
    mgr.inline_enabled_calls(&mut program, &unit.arg_adds, &mut next_stmt_id)?;
    // Step 2: outline commutative regions, innermost first.
    mgr.outline_regions(&mut program, &mut next_stmt_id)?;
    // Step 3: well-formedness.
    mgr.check_well_formedness(&program)?;

    Ok(ManagedUnit {
        program,
        commsets: mgr.commsets,
        members: mgr.members,
        sigs: mgr.sigs,
        globals: mgr.globals,
        region_origins: mgr.region_origins,
        next_stmt_id,
    })
}

fn max_stmt_id(p: &Program) -> u32 {
    let mut max = 0;
    for item in &p.items {
        if let Item::Func(f) = item {
            walk_stmts(&f.body, &mut |s| max = max.max(s.id.0));
        }
    }
    max
}

fn err(msg: impl Into<String>, span: Span) -> Diagnostic {
    Diagnostic::new(Phase::Commset, msg, span)
}

struct Manager {
    commsets: Vec<CommSetDef>,
    members: Vec<FuncMember>,
    sigs: HashMap<String, FuncSig>,
    globals: HashMap<String, (Type, Option<usize>)>,
    region_origins: HashMap<String, Span>,
    /// Original block memberships from sema: StmtId → (set, args, span).
    block_memberships: HashMap<StmtId, Vec<(SetId, Vec<Expr>, Span)>>,
    region_counter: u32,
    inline_counter: u32,
}

impl Manager {
    fn fresh_self_set(&mut self, tag: &str, span: Span) -> SetId {
        let id = SetId(self.commsets.len() as u32);
        self.commsets.push(CommSetDef {
            id,
            name: format!("__self_{tag}"),
            kind: SetKind::SelfSet,
            predicate: None,
            nosync: false,
            span,
        });
        id
    }

    // -----------------------------------------------------------------
    // Step 1: inlining
    // -----------------------------------------------------------------

    fn inline_enabled_calls(
        &mut self,
        program: &mut Program,
        arg_adds: &[commset_lang::sema::ArgAddSite],
        next_stmt_id: &mut u32,
    ) -> Result<(), Diagnostic> {
        for add in arg_adds {
            // Snapshot the callee.
            let callee = program
                .items
                .iter()
                .find_map(|i| match i {
                    Item::Func(f) if f.name == add.callee => Some(f.clone()),
                    _ => None,
                })
                .ok_or_else(|| err(format!("unknown callee `{}`", add.callee), add.span))?;
            if !callee.instances.is_empty() {
                return Err(err(
                    format!(
                        "cannot inline `{}`: it is itself an interface-level CommSet member",
                        callee.name
                    ),
                    add.span,
                ));
            }
            let caller = program
                .items
                .iter_mut()
                .find_map(|i| match i {
                    Item::Func(f) if f.name == add.in_func => Some(f),
                    _ => None,
                })
                .ok_or_else(|| err(format!("unknown caller `{}`", add.in_func), add.span))?;
            let k = self.inline_counter;
            self.inline_counter += 1;
            let mut done = false;
            inline_in_stmts(
                &mut caller.body.stmts,
                add,
                &callee,
                k,
                next_stmt_id,
                &mut done,
            )?;
            if !done {
                return Err(err(
                    format!(
                        "could not find the enabling call to `{}` for block `{}`",
                        add.callee, add.block
                    ),
                    add.span,
                ));
            }
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Step 2: outlining
    // -----------------------------------------------------------------

    fn outline_regions(
        &mut self,
        program: &mut Program,
        next_stmt_id: &mut u32,
    ) -> Result<(), Diagnostic> {
        let mut new_funcs: Vec<FuncDecl> = Vec::new();
        for item in &mut program.items {
            let Item::Func(f) = item else { continue };
            let mut scopes: Vec<HashMap<String, (Type, Option<usize>)>> = vec![f
                .params
                .iter()
                .map(|p| (p.name.clone(), (p.ty, None)))
                .collect()];
            let fname = f.name.clone();
            self.outline_in_stmts(
                &mut f.body.stmts,
                &mut scopes,
                &fname,
                &mut new_funcs,
                next_stmt_id,
            )?;
        }
        for nf in new_funcs {
            self.sigs.insert(
                nf.name.clone(),
                FuncSig {
                    ret: nf.ret,
                    params: nf.params.iter().map(|p| (p.name.clone(), p.ty)).collect(),
                    is_extern: false,
                },
            );
            program.items.push(Item::Func(nf));
        }
        Ok(())
    }

    fn outline_in_stmts(
        &mut self,
        stmts: &mut [Stmt],
        scopes: &mut Vec<HashMap<String, (Type, Option<usize>)>>,
        in_func: &str,
        new_funcs: &mut Vec<FuncDecl>,
        next_stmt_id: &mut u32,
    ) -> Result<(), Diagnostic> {
        scopes.push(HashMap::new());
        for stmt in stmts.iter_mut() {
            self.outline_stmt(stmt, scopes, in_func, new_funcs, next_stmt_id)?;
            // Record declarations so later siblings see them.
            if let StmtKind::VarDecl {
                name,
                ty,
                array_len,
                ..
            } = &stmt.kind
            {
                scopes
                    .last_mut()
                    .unwrap()
                    .insert(name.clone(), (*ty, *array_len));
            }
        }
        scopes.pop();
        Ok(())
    }

    fn outline_stmt(
        &mut self,
        stmt: &mut Stmt,
        scopes: &mut Vec<HashMap<String, (Type, Option<usize>)>>,
        in_func: &str,
        new_funcs: &mut Vec<FuncDecl>,
        next_stmt_id: &mut u32,
    ) -> Result<(), Diagnostic> {
        // Post-order: descend first so nested regions are extracted before
        // their parents.
        match &mut stmt.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                self.outline_stmt(then_branch, scopes, in_func, new_funcs, next_stmt_id)?;
                if let Some(e) = else_branch {
                    self.outline_stmt(e, scopes, in_func, new_funcs, next_stmt_id)?;
                }
            }
            StmtKind::While { body, .. } => {
                self.outline_stmt(body, scopes, in_func, new_funcs, next_stmt_id)?
            }
            StmtKind::For {
                init, step, body, ..
            } => {
                scopes.push(HashMap::new());
                if let Some(i) = init {
                    if let StmtKind::VarDecl {
                        name,
                        ty,
                        array_len,
                        ..
                    } = &i.kind
                    {
                        scopes
                            .last_mut()
                            .unwrap()
                            .insert(name.clone(), (*ty, *array_len));
                    }
                }
                self.outline_stmt(body, scopes, in_func, new_funcs, next_stmt_id)?;
                if let Some(st) = step {
                    self.outline_stmt(st, scopes, in_func, new_funcs, next_stmt_id)?;
                }
                scopes.pop();
            }
            StmtKind::Block(b) => {
                let mut stmts = std::mem::take(&mut b.stmts);
                self.outline_in_stmts(&mut stmts, scopes, in_func, new_funcs, next_stmt_id)?;
                b.stmts = stmts;
            }
            _ => {}
        }
        // Now outline this statement if it is a commutative block.
        let memberships = self.resolve_block_memberships(stmt)?;
        if memberships.is_empty() {
            return Ok(());
        }
        let StmtKind::Block(block) = &stmt.kind else {
            unreachable!("sema enforces block-level annotations on compounds");
        };
        // Free-variable analysis.
        let (reads, writes, arrays) = free_vars(block);
        let lookup = |name: &str| -> Option<(Type, Option<usize>)> {
            for s in scopes.iter().rev() {
                if let Some(&v) = s.get(name) {
                    return Some(v);
                }
            }
            None
        };
        // Outer local arrays cannot be captured by value.
        for a in &arrays {
            if lookup(a).is_some() {
                return Err(err(
                    format!(
                        "commutative block captures outer local array `{a}`; move the array into the block or make it global"
                    ),
                    stmt.span,
                ));
            }
        }
        let free_reads: Vec<(String, Type)> = reads
            .iter()
            .filter_map(|n| lookup(n).map(|(ty, _)| (n.clone(), ty)))
            .collect();
        let free_writes: Vec<(String, Type)> = writes
            .iter()
            .filter_map(|n| lookup(n).map(|(ty, _)| (n.clone(), ty)))
            .collect();
        if free_writes.len() > 1 {
            return Err(err(
                format!(
                    "commutative block writes {} outer locals ({}); restructure so it writes at most one",
                    free_writes.len(),
                    free_writes
                        .iter()
                        .map(|(n, _)| n.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                stmt.span,
            ));
        }
        // Parameters: predicate args first (deduplicated, stable), then the
        // remaining free reads, then the written var if not yet present.
        let mut params: Vec<(String, Type)> = Vec::new();
        let param_index = |params: &mut Vec<(String, Type)>, name: &str, ty: Type| -> usize {
            if let Some(i) = params.iter().position(|(n, _)| n == name) {
                i
            } else {
                params.push((name.to_string(), ty));
                params.len() - 1
            }
        };
        let mut member_entries: Vec<(SetId, Vec<usize>, Span)> = Vec::new();
        for (set, args, span) in &memberships {
            let mut idxs = Vec::new();
            for a in args {
                let ExprKind::Var(name) = &a.kind else {
                    return Err(err("predicate arguments must be variables", *span));
                };
                let Some((ty, None)) = lookup(name) else {
                    return Err(err(
                        format!("predicate argument `{name}` is not an in-scope scalar"),
                        *span,
                    ));
                };
                idxs.push(param_index(&mut params, name, ty));
            }
            member_entries.push((*set, idxs, *span));
        }
        for (n, ty) in &free_reads {
            param_index(&mut params, n, *ty);
        }
        let ret = match free_writes.first() {
            Some((n, ty)) => {
                param_index(&mut params, n, *ty);
                Some((n.clone(), *ty))
            }
            None => None,
        };
        // Synthesize the region function.
        self.region_counter += 1;
        let region_name = format!("__commset_region_{}", self.region_counter);
        self.region_origins.insert(region_name.clone(), stmt.span);
        let StmtKind::Block(block) = std::mem::replace(&mut stmt.kind, StmtKind::Break) else {
            unreachable!();
        };
        let mut body_stmts = block.stmts;
        if let Some((w, _)) = &ret {
            body_stmts.push(Stmt::plain(
                fresh_id(next_stmt_id),
                StmtKind::Return(Some(Expr::var(w.clone()))),
                stmt.span,
            ));
        }
        new_funcs.push(FuncDecl {
            name: region_name.clone(),
            ret: ret.as_ref().map(|(_, t)| *t).unwrap_or(Type::Void),
            params: params
                .iter()
                .map(|(n, t)| Param {
                    name: n.clone(),
                    ty: *t,
                    span: stmt.span,
                })
                .collect(),
            body: Block {
                stmts: body_stmts,
                span: block.span,
            },
            instances: Vec::new(),
            named_args: Vec::new(),
            span: stmt.span,
        });
        // Register memberships.
        for (set, arg_params, span) in member_entries {
            self.members.push(FuncMember {
                func: region_name.clone(),
                set,
                arg_params,
                span,
            });
        }
        // Replace the block with a call.
        let call = Expr::new(
            ExprKind::Call(
                region_name,
                params.iter().map(|(n, _)| Expr::var(n.clone())).collect(),
            ),
            stmt.span,
        );
        stmt.kind = match ret {
            Some((w, _)) => StmtKind::Assign {
                target: LValue::Var(w, stmt.span),
                op: AssignOp::Set,
                value: call,
            },
            None => StmtKind::ExprStmt(call),
        };
        stmt.instances.clear();
        stmt.named_block = None;
        Ok(())
    }

    /// Memberships of a block statement: sema's table for original ids,
    /// re-resolved pragma instances for inlined clones.
    fn resolve_block_memberships(
        &mut self,
        stmt: &Stmt,
    ) -> Result<Vec<(SetId, Vec<Expr>, Span)>, Diagnostic> {
        if stmt.instances.is_empty() {
            return Ok(Vec::new());
        }
        if let Some(ms) = self.block_memberships.remove(&stmt.id) {
            return Ok(ms);
        }
        // A clone produced by inlining: resolve instance names again.
        let mut out = Vec::new();
        for inst in &stmt.instances {
            let set = match &inst.set {
                SetRef::SelfImplicit => {
                    self.fresh_self_set(&format!("clone_{}", stmt.id.0), inst.span)
                }
                SetRef::Named(n) => self
                    .commsets
                    .iter()
                    .find(|s| &s.name == n)
                    .map(|s| s.id)
                    .ok_or_else(|| err(format!("undeclared CommSet `{n}`"), inst.span))?,
            };
            out.push((set, inst.args.clone(), inst.span));
        }
        Ok(out)
    }

    // -----------------------------------------------------------------
    // Step 3: well-formedness
    // -----------------------------------------------------------------

    fn check_well_formedness(&self, program: &Program) -> Result<(), Diagnostic> {
        let cg = CallGraph::new(program);
        // (b) No transitive calls between members of the same set.
        let mut by_set: BTreeMap<SetId, Vec<&FuncMember>> = BTreeMap::new();
        for m in &self.members {
            by_set.entry(m.set).or_default().push(m);
        }
        for (set, members) in &by_set {
            for a in members {
                for b in members {
                    if cg.calls_transitively(&a.func, &b.func) {
                        return Err(err(
                            format!(
                                "ill-defined CommSet `{}`: member `{}` transitively calls member `{}`",
                                self.commsets[set.0 as usize].name, a.func, b.func
                            ),
                            a.span,
                        ));
                    }
                }
            }
        }
        // CommSet graph: S1 -> S2 if a member of S1 transitively calls a
        // member of S2.
        let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (s1, m1s) in &by_set {
            let name1 = self.commsets[s1.0 as usize].name.clone();
            let entry = edges.entry(name1).or_default();
            for (s2, m2s) in &by_set {
                if s1 == s2 {
                    continue;
                }
                let reach = m1s
                    .iter()
                    .any(|a| m2s.iter().any(|b| cg.calls_transitively(&a.func, &b.func)));
                if reach {
                    entry.insert(self.commsets[s2.0 as usize].name.clone());
                }
            }
        }
        if let Some(cycle) = find_cycle(&edges) {
            return Err(Diagnostic::global(
                Phase::Commset,
                format!(
                    "ill-formed CommSets: cycle in the CommSet graph ({})",
                    cycle.join(" -> ")
                ),
            ));
        }
        Ok(())
    }
}

fn fresh_id(next: &mut u32) -> StmtId {
    let id = StmtId(*next);
    *next += 1;
    id
}

// ---------------------------------------------------------------------------
// Inlining machinery
// ---------------------------------------------------------------------------

/// Recursively searches `stmts` for the statement annotated with `add` and
/// splices the inlined callee in its place.
fn inline_in_stmts(
    stmts: &mut Vec<Stmt>,
    add: &commset_lang::sema::ArgAddSite,
    callee: &FuncDecl,
    k: u32,
    next_stmt_id: &mut u32,
    done: &mut bool,
) -> Result<(), Diagnostic> {
    let mut i = 0;
    while i < stmts.len() {
        if stmts[i].id == add.stmt {
            let target = &mut stmts[i];
            target.named_arg_adds.retain(|a| a.block != add.block);
            match &mut target.kind {
                StmtKind::Block(b) => {
                    // Find the enabling call among the block's statements.
                    let mut j = 0;
                    let mut found = false;
                    while j < b.stmts.len() {
                        if stmt_calls(&b.stmts[j], &callee.name) {
                            let original = b.stmts.remove(j);
                            let replacement =
                                inline_call_stmt(original, add, callee, k, next_stmt_id)?;
                            for (off, s) in replacement.into_iter().enumerate() {
                                b.stmts.insert(j + off, s);
                            }
                            found = true;
                            break;
                        }
                        j += 1;
                    }
                    if !found {
                        return Err(err(
                            format!("no call to `{}` inside the annotated block", callee.name),
                            add.span,
                        ));
                    }
                }
                _ => {
                    let original = stmts.remove(i);
                    let replacement = inline_call_stmt(original, add, callee, k, next_stmt_id)?;
                    for (off, s) in replacement.into_iter().enumerate() {
                        stmts.insert(i + off, s);
                    }
                }
            }
            *done = true;
            return Ok(());
        }
        // Recurse into compound structure.
        match &mut stmts[i].kind {
            StmtKind::Block(b) => {
                inline_in_stmts(&mut b.stmts, add, callee, k, next_stmt_id, done)?
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                inline_in_one(then_branch, add, callee, k, next_stmt_id, done)?;
                if let Some(e) = else_branch {
                    inline_in_one(e, add, callee, k, next_stmt_id, done)?;
                }
            }
            StmtKind::While { body, .. } => {
                inline_in_one(body, add, callee, k, next_stmt_id, done)?
            }
            StmtKind::For { body, .. } => inline_in_one(body, add, callee, k, next_stmt_id, done)?,
            _ => {}
        }
        if *done {
            return Ok(());
        }
        i += 1;
    }
    Ok(())
}

fn inline_in_one(
    stmt: &mut Stmt,
    add: &commset_lang::sema::ArgAddSite,
    callee: &FuncDecl,
    k: u32,
    next_stmt_id: &mut u32,
    done: &mut bool,
) -> Result<(), Diagnostic> {
    if let StmtKind::Block(b) = &mut stmt.kind {
        return inline_in_stmts(&mut b.stmts, add, callee, k, next_stmt_id, done);
    }
    // A non-block child cannot carry the annotation (sema would have put it
    // on a block) but may contain nested blocks.
    match &mut stmt.kind {
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            inline_in_one(then_branch, add, callee, k, next_stmt_id, done)?;
            if let Some(e) = else_branch {
                inline_in_one(e, add, callee, k, next_stmt_id, done)?;
            }
        }
        StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
            inline_in_one(body, add, callee, k, next_stmt_id, done)?
        }
        _ => {}
    }
    Ok(())
}

/// True if this statement *directly* performs a call to `name` in one of
/// the inlinable shapes.
fn stmt_calls(stmt: &Stmt, name: &str) -> bool {
    match &stmt.kind {
        StmtKind::VarDecl {
            init:
                Some(Expr {
                    kind: ExprKind::Call(n, _),
                    ..
                }),
            ..
        } => n == name,
        StmtKind::Assign {
            value:
                Expr {
                    kind: ExprKind::Call(n, _),
                    ..
                },
            ..
        } => n == name,
        StmtKind::ExprStmt(Expr {
            kind: ExprKind::Call(n, _),
            ..
        }) => n == name,
        _ => false,
    }
}

/// Inlines `callee` at the given call statement, returning the replacement
/// statement sequence.
fn inline_call_stmt(
    original: Stmt,
    add: &commset_lang::sema::ArgAddSite,
    callee: &FuncDecl,
    k: u32,
    next_stmt_id: &mut u32,
) -> Result<Vec<Stmt>, Diagnostic> {
    // Validate callee shape: returns only as the final top-level statement.
    let n = callee.body.stmts.len();
    for (i, s) in callee.body.stmts.iter().enumerate() {
        let mut has_return = false;
        walk_one(s, &mut |x| {
            if matches!(x.kind, StmtKind::Return(_)) {
                has_return = true;
            }
        });
        if has_return && i + 1 != n {
            return Err(err(
                format!(
                    "cannot inline `{}`: `return` must be its final statement",
                    callee.name
                ),
                add.span,
            ));
        }
    }
    if n > 0 {
        // Even the final statement must be a *top-level* return (or none).
        let last = &callee.body.stmts[n - 1];
        let mut nested_return = false;
        walk_one(last, &mut |x| {
            if matches!(x.kind, StmtKind::Return(_)) && x.id != last.id {
                nested_return = true;
            }
        });
        if nested_return && !matches!(last.kind, StmtKind::Return(_)) {
            return Err(err(
                format!(
                    "cannot inline `{}`: `return` must be its final top-level statement",
                    callee.name
                ),
                add.span,
            ));
        }
    }

    // Extract the call expression and result binding from the original.
    let (call_args, binding) = match original.kind {
        StmtKind::VarDecl {
            name,
            ty,
            init: Some(Expr { kind: ExprKind::Call(_, args), .. }),
            ..
        } => (args, Some((name, ty, true))),
        StmtKind::Assign {
            target,
            op: AssignOp::Set,
            value: Expr { kind: ExprKind::Call(_, args), .. },
        } => match target {
            LValue::Var(name, _) => (args, Some((name, Type::Void, false))),
            LValue::Index(..) => {
                return Err(err(
                    "cannot inline into an array-element assignment",
                    add.span,
                ))
            }
        },
        StmtKind::ExprStmt(Expr { kind: ExprKind::Call(_, args), .. }) => (args, None),
        _ => {
            return Err(err(
                "the enabling statement must be a direct call, assignment-from-call, or declaration-from-call",
                add.span,
            ))
        }
    };
    if call_args.len() != callee.params.len() {
        return Err(err("argument count mismatch while inlining", add.span));
    }

    // Rename map: params and all locals of the callee.
    let prefix = format!("__inl{k}_");
    let mut rename: HashMap<String, String> = HashMap::new();
    for p in &callee.params {
        rename.insert(p.name.clone(), format!("{prefix}{}", p.name));
    }
    let mut body = callee.body.clone();
    walk_stmts_mut(&mut body.stmts, &mut |s| {
        if let StmtKind::VarDecl { name, .. } = &mut s.kind {
            let fresh = format!("{prefix}{name}");
            rename.insert(name.clone(), fresh.clone());
            *name = fresh;
        }
    });
    // Apply renames to every reference, fresh ids, and handle annotations.
    let mut out: Vec<Stmt> = Vec::new();
    // Parameter bindings.
    for (p, arg) in callee.params.iter().zip(call_args) {
        out.push(Stmt::plain(
            fresh_id(next_stmt_id),
            StmtKind::VarDecl {
                name: rename[&p.name].clone(),
                ty: p.ty,
                array_len: None,
                init: Some(arg),
            },
            add.span,
        ));
    }
    // Body.
    let mut ret_expr: Option<Expr> = None;
    let body_len = body.stmts.len();
    for (i, mut s) in body.stmts.into_iter().enumerate() {
        rename_in_stmt(&mut s, &rename);
        renumber(&mut s, next_stmt_id);
        annotate_clone(&mut s, add);
        if i + 1 == body_len {
            if let StmtKind::Return(e) = s.kind {
                ret_expr = e;
                continue;
            }
        }
        out.push(s);
    }
    // Result binding.
    if let Some((name, ty, is_decl)) = binding {
        let e = ret_expr.ok_or_else(|| {
            err(
                format!(
                    "`{}` must end with `return` to be inlined here",
                    callee.name
                ),
                add.span,
            )
        })?;
        if is_decl {
            // Declare first (in the *caller* scope), then assign within
            // the same sequence.
            out.insert(
                0,
                Stmt::plain(
                    fresh_id(next_stmt_id),
                    StmtKind::VarDecl {
                        name: name.clone(),
                        ty,
                        array_len: None,
                        init: None,
                    },
                    add.span,
                ),
            );
        }
        out.push(Stmt::plain(
            fresh_id(next_stmt_id),
            StmtKind::Assign {
                target: LValue::Var(name, add.span),
                op: AssignOp::Set,
                value: e,
            },
            add.span,
        ));
    }
    Ok(out)
}

/// Attaches the enabling instances to the clone of the named block and
/// strips names from every named block copy.
fn annotate_clone(s: &mut Stmt, add: &commset_lang::sema::ArgAddSite) {
    walk_one_mut(s, &mut |x| {
        if x.named_block.as_deref() == Some(add.block.as_str()) {
            x.instances = add.instances.clone();
        }
        x.named_block = None;
    });
}

fn rename_in_stmt(s: &mut Stmt, rename: &HashMap<String, String>) {
    let fix = |n: &mut String| {
        if let Some(r) = rename.get(n) {
            *n = r.clone();
        }
    };
    walk_one_mut(s, &mut |x| {
        match &mut x.kind {
            StmtKind::Assign { target, .. } => match target {
                LValue::Var(n, _) | LValue::Index(n, _, _) => fix(n),
            },
            StmtKind::VarDecl { .. } => {} // already renamed
            _ => {}
        }
        for inst in &mut x.instances {
            for a in &mut inst.args {
                rename_in_expr(a, rename);
            }
        }
        stmt_exprs_mut(x, &mut |e| rename_in_expr(e, rename));
    });
}

fn rename_in_expr(e: &mut Expr, rename: &HashMap<String, String>) {
    match &mut e.kind {
        ExprKind::Var(n) => {
            if let Some(r) = rename.get(n) {
                *n = r.clone();
            }
        }
        ExprKind::Unary(_, a) | ExprKind::Cast(_, a) => rename_in_expr(a, rename),
        ExprKind::Index(n, i) => {
            if let Some(r) = rename.get(n) {
                *n = r.clone();
            }
            rename_in_expr(i, rename);
        }
        ExprKind::Binary(_, a, b) => {
            rename_in_expr(a, rename);
            rename_in_expr(b, rename);
        }
        ExprKind::Call(_, args) => {
            for a in args {
                rename_in_expr(a, rename);
            }
        }
        _ => {}
    }
}

fn renumber(s: &mut Stmt, next: &mut u32) {
    walk_one_mut(s, &mut |x| {
        x.id = StmtId(*next);
        *next += 1;
    });
}

// -- small mutable AST walkers ------------------------------------------------

fn walk_one(s: &Stmt, f: &mut dyn FnMut(&Stmt)) {
    f(s);
    match &s.kind {
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            walk_one(then_branch, f);
            if let Some(e) = else_branch {
                walk_one(e, f);
            }
        }
        StmtKind::While { body, .. } => walk_one(body, f),
        StmtKind::For {
            init, step, body, ..
        } => {
            if let Some(i) = init {
                walk_one(i, f);
            }
            if let Some(st) = step {
                walk_one(st, f);
            }
            walk_one(body, f);
        }
        StmtKind::Block(b) => {
            for x in &b.stmts {
                walk_one(x, f);
            }
        }
        _ => {}
    }
}

fn walk_one_mut(s: &mut Stmt, f: &mut dyn FnMut(&mut Stmt)) {
    f(s);
    match &mut s.kind {
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            walk_one_mut(then_branch, f);
            if let Some(e) = else_branch {
                walk_one_mut(e, f);
            }
        }
        StmtKind::While { body, .. } => walk_one_mut(body, f),
        StmtKind::For {
            init, step, body, ..
        } => {
            if let Some(i) = init {
                walk_one_mut(i, f);
            }
            if let Some(st) = step {
                walk_one_mut(st, f);
            }
            walk_one_mut(body, f);
        }
        StmtKind::Block(b) => {
            for x in &mut b.stmts {
                walk_one_mut(x, f);
            }
        }
        _ => {}
    }
}

fn walk_stmts_mut(stmts: &mut [Stmt], f: &mut dyn FnMut(&mut Stmt)) {
    for s in stmts {
        walk_one_mut(s, f);
    }
}

fn stmt_exprs_mut(s: &mut Stmt, f: &mut dyn FnMut(&mut Expr)) {
    match &mut s.kind {
        StmtKind::VarDecl { init: Some(e), .. } => f(e),
        StmtKind::Assign { target, value, .. } => {
            if let LValue::Index(_, idx, _) = target {
                f(idx);
            }
            f(value);
        }
        StmtKind::If { cond, .. } => f(cond),
        StmtKind::While { cond, .. } => f(cond),
        StmtKind::For { cond: Some(c), .. } => f(c),
        StmtKind::Return(Some(e)) => f(e),
        StmtKind::ExprStmt(e) => f(e),
        _ => {}
    }
}

/// Free scalar reads/writes and referenced array names of a block,
/// excluding names declared anywhere inside the block.
fn free_vars(block: &Block) -> (BTreeSet<String>, BTreeSet<String>, BTreeSet<String>) {
    let mut declared = BTreeSet::new();
    for s in &block.stmts {
        walk_one(s, &mut |x| {
            if let StmtKind::VarDecl { name, .. } = &x.kind {
                declared.insert(name.clone());
            }
        });
    }
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    let mut arrays = BTreeSet::new();
    for s in &block.stmts {
        walk_one(s, &mut |x| {
            if let StmtKind::Assign { target, .. } = &x.kind {
                match target {
                    LValue::Var(n, _) => {
                        if !declared.contains(n) {
                            writes.insert(n.clone());
                        }
                    }
                    LValue::Index(n, _, _) => {
                        if !declared.contains(n) {
                            arrays.insert(n.clone());
                        }
                    }
                }
            }
            stmt_exprs(x, &mut |e| {
                walk_expr(e, &mut |y| match &y.kind {
                    ExprKind::Var(n) if !declared.contains(n) => {
                        reads.insert(n.clone());
                    }
                    ExprKind::Index(n, _) if !declared.contains(n) => {
                        arrays.insert(n.clone());
                    }
                    _ => {}
                });
            });
        });
    }
    (reads, writes, arrays)
}

#[cfg(test)]
mod tests {
    use super::*;
    use commset_lang::compile_unit;
    use commset_lang::printer::print_program;

    fn manage_src(src: &str) -> ManagedUnit {
        manage(compile_unit(src).unwrap()).unwrap()
    }

    #[test]
    fn outlines_simple_region() {
        let m = manage_src(
            r#"
            extern int op(int k);
            int main() {
                int acc = 0;
                for (int i = 0; i < 4; i = i + 1) {
                    #pragma CommSet(SELF)
                    { acc = acc + op(i); }
                }
                return acc;
            }
            "#,
        );
        assert_eq!(m.members.len(), 1);
        let member = &m.members[0];
        assert!(member.func.starts_with("__commset_region_"));
        // Region reads acc and i, writes acc -> params {acc, i}, returns int.
        let sig = &m.sigs[&member.func];
        assert_eq!(sig.ret, Type::Int);
        let names: Vec<&str> = sig.params.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"acc") && names.contains(&"i"), "{names:?}");
        // The loop body now assigns from a region call.
        let printed = print_program(&m.program);
        assert!(printed.contains("acc = __commset_region_1("), "{printed}");
    }

    #[test]
    fn predicate_args_become_leading_params() {
        let m = manage_src(
            r#"
            #pragma CommSetDecl(FSET, Group)
            #pragma CommSetPredicate(FSET, (i1), (i2), i1 != i2)
            extern void op(int k);
            extern void op2(int k);
            int main() {
                for (int i = 0; i < 4; i = i + 1) {
                    #pragma CommSet(FSET(i))
                    { op(7); }
                    #pragma CommSet(FSET(i))
                    { op2(8); }
                }
                return 0;
            }
            "#,
        );
        // `i` is not read inside the block but must still be a parameter.
        let fset = m.set_by_name("FSET").unwrap().id;
        for member in m.members.iter().filter(|m| m.set == fset) {
            assert_eq!(member.arg_params, vec![0]);
            let sig = &m.sigs[&member.func];
            assert_eq!(sig.params[0].0, "i");
        }
    }

    #[test]
    fn rejects_block_writing_two_outer_locals() {
        let r = manage(
            compile_unit(
                r#"
                extern int op(int k);
                int main() {
                    int a = 0; int b = 0;
                    for (int i = 0; i < 4; i = i + 1) {
                        #pragma CommSet(SELF)
                        { a = op(i); b = op(i); }
                    }
                    return a + b;
                }
                "#,
            )
            .unwrap(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn rejects_block_capturing_outer_array() {
        let r = manage(
            compile_unit(
                r#"
                int main() {
                    int buf[4];
                    for (int i = 0; i < 4; i = i + 1) {
                        #pragma CommSet(SELF)
                        { buf[0] = i; }
                    }
                    return 0;
                }
                "#,
            )
            .unwrap(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn nested_regions_outline_innermost_first() {
        let m = manage_src(
            r#"
            #pragma CommSetDecl(A, Group)
            #pragma CommSetDecl(B, Group)
            extern void opa(int k);
            extern void opb(int k);
            int main() {
                for (int i = 0; i < 4; i = i + 1) {
                    #pragma CommSet(A)
                    {
                        opa(i);
                        #pragma CommSet(B)
                        { opb(i); }
                    }
                }
                return 0;
            }
            "#,
        );
        assert_eq!(m.members.len(), 2);
        // The outer region (member of A) calls the inner region function.
        let a = m.set_by_name("A").unwrap().id;
        let outer = m.members.iter().find(|x| x.set == a).unwrap();
        let cg = CallGraph::new(&m.program);
        let b = m.set_by_name("B").unwrap().id;
        let inner = m.members.iter().find(|x| x.set == b).unwrap();
        assert!(cg.calls_transitively(&outer.func, &inner.func));
    }

    #[test]
    fn same_set_nesting_is_ill_defined() {
        let r = manage(
            compile_unit(
                r#"
                #pragma CommSetDecl(A, Group)
                extern void op(int k);
                int main() {
                    for (int i = 0; i < 4; i = i + 1) {
                        #pragma CommSet(A)
                        {
                            op(i);
                            #pragma CommSet(A)
                            { op(i); }
                        }
                    }
                    return 0;
                }
                "#,
            )
            .unwrap(),
        );
        let e = r.unwrap_err();
        assert!(e.message.contains("ill-defined"), "{e}");
    }

    #[test]
    fn inlines_enabled_named_block() {
        let m = manage_src(
            r#"
            #pragma CommSetDecl(SSET, Self)
            #pragma CommSetPredicate(SSET, (a), (b), a != b)
            extern int fs_read(handle fp);
            #pragma CommSetNamedArg(READB)
            int mdfile(handle fp) {
                int acc = 0;
                #pragma CommSetNamedBlock(READB)
                { acc = acc + fs_read(fp); }
                return acc;
            }
            int main() {
                int total = 0;
                for (int i = 0; i < 4; i = i + 1) {
                    handle fp = handle(i);
                    #pragma CommSetNamedArgAdd(READB, SSET(i))
                    { int d = mdfile(fp); total = total + d; }
                }
                return total;
            }
            "#,
        );
        // One member: the outlined clone of READB, in SSET, predicated on i.
        let sset = m.set_by_name("SSET").unwrap().id;
        let ms: Vec<_> = m.members.iter().filter(|x| x.set == sset).collect();
        assert_eq!(ms.len(), 1);
        let member = ms[0];
        let sig = &m.sigs[&member.func];
        // Leading param is the caller's `i`.
        assert_eq!(sig.params[member.arg_params[0]].0, "i");
        // mdfile itself is unchanged and still exists for other clients.
        assert!(m.sigs.contains_key("mdfile"));
        let printed = print_program(&m.program);
        assert!(
            printed.contains("__inl0_"),
            "inlined locals are renamed: {printed}"
        );
    }

    #[test]
    fn interface_members_carry_over() {
        let m = manage_src(
            r#"
            #pragma CommSetDecl(S, Group)
            #pragma CommSetPredicate(S, (a), (b), a != b)
            extern void io(int k);
            #pragma CommSet(S(n))
            int f(int z, int n) { io(n); return z; }
            #pragma CommSet(S(q))
            int g(int q) { io(q); return q; }
            int main() { return f(1, 2) + g(3); }
            "#,
        );
        let s = m.set_by_name("S").unwrap().id;
        let ms: Vec<_> = m.members.iter().filter(|x| x.set == s).collect();
        assert_eq!(ms.len(), 2);
        let f = ms.iter().find(|x| x.func == "f").unwrap();
        assert_eq!(f.arg_params, vec![1], "n is f's second parameter");
        let g = ms.iter().find(|x| x.func == "g").unwrap();
        assert_eq!(g.arg_params, vec![0]);
    }

    #[test]
    fn common_sets_respects_kinds() {
        let m = manage_src(
            r#"
            #pragma CommSetDecl(G, Group)
            extern void io(int k);
            #pragma CommSet(G, SELF)
            int f(int n) { io(n); return n; }
            #pragma CommSet(G)
            int g(int q) { io(q); return q; }
            int main() { return f(1) + g(3); }
            "#,
        );
        let g = m.set_by_name("G").unwrap().id;
        // f and g commute under the Group set.
        assert_eq!(m.common_sets("f", "g"), vec![g]);
        // f commutes with itself only under its implicit SELF set.
        let selfs = m.common_sets("f", "f");
        assert_eq!(selfs.len(), 1);
        assert_eq!(m.set(selfs[0]).kind, SetKind::SelfSet);
        // g does not commute with itself (Group membership only).
        assert!(m.common_sets("g", "g").is_empty());
    }
}
