//! The statement-level Program Dependence Graph (paper §2 Figure 2, §4.3).
//!
//! Nodes are the loop condition plus the top-level statements of the
//! hot-loop body; edges are register flow dependences, memory dependences
//! (with call attribution for Algorithm 1) and control dependences, each
//! classified as intra-iteration or loop-carried.
//!
//! Privatization convention: every parallel execution context owns a
//! private copy of scalar locals, so register *anti* and *output*
//! dependences never constrain the transforms and are not represented —
//! only flow dependences (including loop-carried ones) are.

pub use crate::effects::Location;
use crate::hotloop::{CallRef, HotLoop};
use commset_lang::token::Span;
use std::collections::BTreeSet;

/// Index of a PDG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node represents.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// The loop condition / control header.
    Condition,
    /// The i-th top-level body statement.
    Stmt(usize),
}

/// A PDG node.
#[derive(Debug, Clone)]
pub struct PdgNode {
    /// The node id (Condition is always node 0).
    pub id: NodeId,
    /// Condition or statement.
    pub kind: NodeKind,
    /// Printable label (`COND`, `S0`, `S1`, ...).
    pub label: String,
    /// Source location.
    pub span: Span,
    /// Profile weight (1 for the condition).
    pub weight: u64,
}

/// The dependence kind of an edge.
#[derive(Debug, Clone, PartialEq)]
pub enum DepKind {
    /// Register flow dependence on a scalar local.
    RegFlow(String),
    /// Memory dependence on an abstract location, with the responsible
    /// calls when attributable.
    Memory {
        /// The conflicting location.
        loc: Location,
        /// Call producing the source access (None = direct access).
        src_call: Option<CallRef>,
        /// Call producing the destination access.
        dst_call: Option<CallRef>,
    },
    /// Control dependence (from the condition node).
    Control,
}

/// Commutativity annotation produced by Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommAnnotation {
    /// Unconditionally commutative: the edge can be ignored entirely.
    Uco,
    /// Inter-iteration commutative: treat as an intra-iteration edge.
    Ico,
}

/// A PDG edge.
#[derive(Debug, Clone)]
pub struct PdgEdge {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Kind of dependence.
    pub kind: DepKind,
    /// True for loop-carried edges.
    pub carried: bool,
    /// True for the induction-variable update cycle (handled specially by
    /// every transform: each context privatizes the IV).
    pub induction: bool,
    /// Algorithm 1 annotation, if any.
    pub comm: Option<CommAnnotation>,
}

impl PdgEdge {
    /// True if this edge still constrains parallelization after
    /// relaxation: `uco` edges don't, `ico` edges only constrain
    /// intra-iteration order.
    pub fn effective_carried(&self) -> bool {
        self.carried && self.comm.is_none() && !self.induction
    }

    /// True if the edge constrains intra-iteration order (after
    /// relaxation).
    pub fn effective_intra(&self) -> bool {
        match self.comm {
            Some(CommAnnotation::Uco) => false,
            Some(CommAnnotation::Ico) => true,
            None => !self.induction,
        }
    }
}

/// The statement-level PDG of a hot loop.
#[derive(Debug, Clone)]
pub struct Pdg {
    /// Nodes; node 0 is the condition.
    pub nodes: Vec<PdgNode>,
    /// All edges.
    pub edges: Vec<PdgEdge>,
}

impl Pdg {
    /// Builds the PDG of `hot`.
    pub fn build(hot: &HotLoop) -> Pdg {
        let mut nodes = vec![PdgNode {
            id: NodeId(0),
            kind: NodeKind::Condition,
            label: "COND".to_string(),
            span: hot.span,
            weight: 1,
        }];
        for (i, s) in hot.body.iter().enumerate() {
            nodes.push(PdgNode {
                id: NodeId(i + 1),
                kind: NodeKind::Stmt(i),
                label: s.label.clone(),
                span: s.span,
                weight: s.weight,
            });
        }
        let mut edges = Vec::new();
        let iv = hot.shape.iv();
        // Privatized scalars: the induction variable and declared reduction
        // accumulators — their carried cycles are handled by the transforms
        // (per-context copies, merged at the join).
        let privatized: BTreeSet<&str> = iv
            .into_iter()
            .chain(hot.reductions.iter().map(|r| r.var.as_str()))
            .collect();
        let n = hot.body.len();

        // --- register flow dependences -------------------------------------
        // Collect all scalar names written anywhere in the body.
        let mut vars: BTreeSet<&String> = BTreeSet::new();
        for s in &hot.body {
            vars.extend(&s.reg_writes);
        }
        for v in vars {
            let writers: Vec<usize> = (0..n)
                .filter(|&i| hot.body[i].reg_writes.contains(v))
                .collect();
            let readers: Vec<usize> = (0..n)
                .filter(|&i| hot.body[i].reg_reads.contains(v))
                .collect();
            let is_iv = privatized.contains(v.as_str());
            for &w in &writers {
                // Intra-iteration: w -> r with w < r and no must-write in
                // between.
                for &r in &readers {
                    if w < r {
                        let killed = ((w + 1)..r).any(|k| hot.body[k].must_writes.contains(v));
                        if !killed {
                            edges.push(PdgEdge {
                                src: NodeId(w + 1),
                                dst: NodeId(r + 1),
                                kind: DepKind::RegFlow(v.clone()),
                                carried: false,
                                induction: is_iv,
                                comm: None,
                            });
                        }
                    }
                    // Loop-carried: value written in iteration k survives
                    // into iteration k+1 up to r's read iff no earlier
                    // statement (positions < r) must-writes it.
                    let killed_prefix = (0..r).any(|k| hot.body[k].must_writes.contains(v));
                    if !killed_prefix {
                        edges.push(PdgEdge {
                            src: NodeId(w + 1),
                            dst: NodeId(r + 1),
                            kind: DepKind::RegFlow(v.clone()),
                            carried: true,
                            induction: is_iv,
                            comm: None,
                        });
                    }
                }
                // Carried flow into the loop condition (it executes first
                // in the next iteration, so no kill prefix applies).
                if hot.cond_reads.contains(v) {
                    edges.push(PdgEdge {
                        src: NodeId(w + 1),
                        dst: NodeId(0),
                        kind: DepKind::RegFlow(v.clone()),
                        carried: true,
                        induction: is_iv,
                        comm: None,
                    });
                }
            }
        }

        // --- memory dependences ---------------------------------------------
        // Fresh-instance reasoning over instance-partitioned channels: two
        // accesses through the same handle variable are iteration-private
        // when the handle is rebound to a *fresh* instance each iteration
        // before both accesses (the paper's allocation-site freshness for
        // per-iteration matrices/streams).
        let fresh_private = |v: &str, pa: usize, pb: usize| -> bool {
            let Some(writers) = hot.handle_writers.get(v) else {
                return false;
            };
            let (pmin, pmax) = (pa.min(pb), pa.max(pb));
            let Some(reaching) = writers
                .iter()
                .filter(|w| w.pos <= pmin)
                .max_by_key(|w| w.pos)
            else {
                return false;
            };
            if !reaching.fresh || !reaching.must {
                return false;
            }
            // No rebinding between the two accesses.
            !writers
                .iter()
                .any(|w| w.pos > reaching.pos && w.pos <= pmax)
        };
        for a in 0..n {
            for b in 0..n {
                for acc_a in &hot.body[a].mem {
                    for acc_b in &hot.body[b].mem {
                        if acc_a.loc != acc_b.loc || !(acc_a.write || acc_b.write) {
                            continue;
                        }
                        let instance_fresh = match (&acc_a.instance, &acc_b.instance) {
                            (Some(va), Some(vb)) if va == vb => fresh_private(va, a, b),
                            _ => false,
                        };
                        // Intra-iteration edge for ordered pairs.
                        if a < b {
                            edges.push(PdgEdge {
                                src: NodeId(a + 1),
                                dst: NodeId(b + 1),
                                kind: DepKind::Memory {
                                    loc: acc_a.loc.clone(),
                                    src_call: acc_a.via.clone(),
                                    dst_call: acc_b.via.clone(),
                                },
                                carried: false,
                                induction: false,
                                comm: None,
                            });
                        }
                        // Loop-carried edge for every conflicting pair
                        // (including self loops), unless the location is
                        // iteration-private (body-local array or fresh
                        // per-iteration instance).
                        if a <= b && !(acc_a.iter_private || acc_b.iter_private) && !instance_fresh
                        {
                            edges.push(PdgEdge {
                                src: NodeId(b + 1),
                                dst: NodeId(a + 1),
                                kind: DepKind::Memory {
                                    loc: acc_a.loc.clone(),
                                    src_call: acc_b.via.clone(),
                                    dst_call: acc_a.via.clone(),
                                },
                                carried: true,
                                induction: false,
                                comm: None,
                            });
                            if a < b {
                                edges.push(PdgEdge {
                                    src: NodeId(a + 1),
                                    dst: NodeId(b + 1),
                                    kind: DepKind::Memory {
                                        loc: acc_a.loc.clone(),
                                        src_call: acc_a.via.clone(),
                                        dst_call: acc_b.via.clone(),
                                    },
                                    carried: true,
                                    induction: false,
                                    comm: None,
                                });
                            }
                        }
                    }
                }
            }
        }

        // --- control dependences ---------------------------------------------
        for i in 0..n {
            edges.push(PdgEdge {
                src: NodeId(0),
                dst: NodeId(i + 1),
                kind: DepKind::Control,
                carried: false,
                induction: false,
                comm: None,
            });
        }

        dedup_edges(&mut edges);
        Pdg { nodes, edges }
    }

    /// True if, after relaxation, no loop-carried dependence remains —
    /// i.e. the loop is DOALL-schedulable from the PDG's point of view
    /// (iteration countability is checked separately).
    pub fn doall_legal(&self) -> bool {
        self.edges.iter().all(|e| !e.effective_carried())
    }

    /// Loop-carried edges still effective after relaxation, for the
    /// "explain what inhibits parallelism" diagnostics.
    pub fn inhibitors(&self) -> Vec<&PdgEdge> {
        self.edges
            .iter()
            .filter(|e| e.effective_carried())
            .collect()
    }

    /// A compact multi-line dump used in tests and diagnostics.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for n in &self.nodes {
            let _ = writeln!(out, "{}: {} (w={})", n.id, n.label, n.weight);
        }
        for e in &self.edges {
            let kind = match &e.kind {
                DepKind::RegFlow(v) => format!("reg {v}"),
                DepKind::Memory { loc, .. } => format!("mem {loc}"),
                DepKind::Control => "ctl".to_string(),
            };
            let carried = if e.carried { " carried" } else { "" };
            let comm = match e.comm {
                Some(CommAnnotation::Uco) => " [uco]",
                Some(CommAnnotation::Ico) => " [ico]",
                None => "",
            };
            let ind = if e.induction { " (iv)" } else { "" };
            let _ = writeln!(out, "{} -> {}: {kind}{carried}{ind}{comm}", e.src, e.dst);
        }
        out
    }
}

/// Removes duplicate edges (same endpoints, kind, carried flag).
fn dedup_edges(edges: &mut Vec<PdgEdge>) {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    edges.retain(|e| {
        let key = format!(
            "{}-{}-{:?}-{}-{}",
            e.src.0,
            e.dst.0,
            kind_key(&e.kind),
            e.carried,
            e.induction
        );
        seen.insert(key)
    });
}

fn kind_key(k: &DepKind) -> String {
    match k {
        DepKind::RegFlow(v) => format!("r:{v}"),
        DepKind::Memory {
            loc,
            src_call,
            dst_call,
        } => format!(
            "m:{loc}:{}:{}",
            src_call.as_ref().map(|c| c.span.start).unwrap_or(0),
            dst_call.as_ref().map(|c| c.span.start).unwrap_or(0)
        ),
        DepKind::Control => "c".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::summarize;
    use crate::hotloop::find_hot_loop;
    use crate::metadata::manage;
    use commset_ir::IntrinsicTable;
    use commset_lang::ast::Type;

    fn build(src: &str) -> Pdg {
        let mut table = IntrinsicTable::new();
        table.register("io_op", vec![Type::Int], Type::Void, &[], &["IO"], 10);
        table.register("pure_calc", vec![Type::Int], Type::Int, &[], &[], 100);
        let unit = commset_lang::compile_unit(src).unwrap();
        let managed = manage(unit).unwrap();
        let summaries = summarize(&managed.program, &table);
        let hot = find_hot_loop(&managed, &summaries, &table, "main").unwrap();
        Pdg::build(&hot)
    }

    #[test]
    fn accumulator_has_carried_self_edge() {
        let pdg = build(
            "extern int pure_calc(int x); int main() { int s = 0; for (int i = 0; i < 9; i = i + 1) { s = s + pure_calc(i); } return s; }",
        );
        // Node 1 = the accumulation statement. It writes and reads s.
        let self_edges: Vec<_> = pdg
            .edges
            .iter()
            .filter(|e| {
                e.src == NodeId(1)
                    && e.dst == NodeId(1)
                    && e.carried
                    && matches!(&e.kind, DepKind::RegFlow(v) if v == "s")
            })
            .collect();
        assert_eq!(self_edges.len(), 1, "{}", pdg.dump());
        assert!(!pdg.doall_legal());
    }

    #[test]
    fn induction_edges_are_tagged() {
        let pdg = build(
            "extern int pure_calc(int x); int main() { int s = 0; for (int i = 0; i < 9; i = i + 1) { s = pure_calc(i); } return s; }",
        );
        // `i` flows into pure_calc's argument; the IV cycle must be tagged.
        assert!(
            pdg.edges
                .iter()
                .all(|e| !e.effective_carried() || !e.induction),
            "{}",
            pdg.dump()
        );
    }

    #[test]
    fn io_calls_produce_carried_memory_self_edges() {
        let pdg = build(
            "extern void io_op(int x); int main() { for (int i = 0; i < 9; i = i + 1) { io_op(i); } return 0; }",
        );
        let found = pdg.edges.iter().any(|e| {
            e.carried
                && matches!(&e.kind, DepKind::Memory { loc: Location::Channel(c), .. } if c == "IO")
        });
        assert!(found, "{}", pdg.dump());
        assert!(!pdg.doall_legal());
        assert!(!pdg.inhibitors().is_empty());
    }

    #[test]
    fn pure_loops_are_doall_legal() {
        let pdg = build(
            "extern int pure_calc(int x); int main() { for (int i = 0; i < 9; i = i + 1) { int v = pure_calc(i); } return 0; }",
        );
        assert!(pdg.doall_legal(), "{}", pdg.dump());
    }

    #[test]
    fn intra_edges_respect_kills() {
        let pdg = build(
            "extern int pure_calc(int x); int main() { for (int i = 0; i < 9; i = i + 1) { int v = pure_calc(i); int w = v + 1; v = pure_calc(w); int z = v; } return 0; }",
        );
        // v's first write feeds w's stmt (S0 -> S1) but NOT z's stmt (S3):
        // S2 must-writes v in between.
        let s0_to_s1 = pdg.edges.iter().any(|e| {
            e.src == NodeId(1)
                && e.dst == NodeId(2)
                && !e.carried
                && matches!(&e.kind, DepKind::RegFlow(v) if v == "v")
        });
        let s0_to_s3 = pdg.edges.iter().any(|e| {
            e.src == NodeId(1)
                && e.dst == NodeId(4)
                && !e.carried
                && matches!(&e.kind, DepKind::RegFlow(v) if v == "v")
        });
        assert!(s0_to_s1, "{}", pdg.dump());
        assert!(!s0_to_s3, "{}", pdg.dump());
    }

    #[test]
    fn fresh_instance_channels_are_iteration_private() {
        // alloc -> use -> free on a per-instance channel: the intra edges
        // order the triple, but no carried conflict survives (fresh handle
        // each iteration) — the hmmer/potrace pattern.
        let mut table = IntrinsicTable::new();
        table.register("alloc", vec![Type::Int], Type::Handle, &[], &["META"], 20);
        table.mark_fresh_handle("alloc");
        table.register(
            "use_obj",
            vec![Type::Handle],
            Type::Int,
            &["DATA"],
            &["DATA"],
            100,
        );
        table.register(
            "free_obj",
            vec![Type::Handle],
            Type::Void,
            &[],
            &["META", "DATA"],
            15,
        );
        table.mark_per_instance("DATA");
        let unit = commset_lang::compile_unit(
            r#"
            #pragma CommSetDecl(MSET, Group)
            #pragma CommSetPredicate(MSET, (i1), (i2), i1 != i2)
            extern handle alloc(int n);
            extern int use_obj(handle h);
            extern void free_obj(handle h);
            int main() {
                for (int i = 0; i < 8; i = i + 1) {
                    handle h = handle(0);
                    #pragma CommSet(SELF, MSET(i))
                    { h = alloc(i); }
                    int v = use_obj(h);
                    #pragma CommSet(SELF, MSET(i))
                    { free_obj(h); }
                }
                return 0;
            }
            "#,
        )
        .unwrap();
        let managed = manage(unit).unwrap();
        let summaries = summarize(&managed.program, &table);
        let hot = find_hot_loop(&managed, &summaries, &table, "main").unwrap();
        // The region wrapping `alloc` is itself recognized as fresh.
        let writers = hot.handle_writers.get("h").expect("h tracked");
        assert!(writers.iter().any(|w| w.fresh && w.must), "{writers:?}");
        let mut pdg = Pdg::build(&hot);
        // No carried DATA edge exists even before relaxation.
        let carried_data = pdg.edges.iter().any(|e| {
            e.carried
                && matches!(&e.kind, DepKind::Memory { loc: Location::Channel(c), .. } if c == "DATA")
        });
        assert!(!carried_data, "{}", pdg.dump());
        // The intra DATA edges still order use-before-free.
        let intra_use_free = pdg.edges.iter().any(|e| {
            !e.carried
                && e.src.0 < e.dst.0
                && matches!(&e.kind, DepKind::Memory { loc: Location::Channel(c), .. } if c == "DATA")
        });
        assert!(intra_use_free, "{}", pdg.dump());
        // With the META relaxations, the loop is DOALL-legal.
        crate::depanalysis::analyze_commutativity(&mut pdg, &managed, &hot);
        assert!(pdg.doall_legal(), "{}", pdg.dump());
    }

    #[test]
    fn conditional_rebinding_defeats_freshness() {
        // If the handle may be conditionally rebound, the suppression must
        // not fire (conservative).
        let mut table = IntrinsicTable::new();
        table.register("alloc", vec![Type::Int], Type::Handle, &[], &["META"], 20);
        table.mark_fresh_handle("alloc");
        table.register(
            "use_obj",
            vec![Type::Handle],
            Type::Int,
            &["DATA"],
            &["DATA"],
            100,
        );
        table.mark_per_instance("DATA");
        let unit = commset_lang::compile_unit(
            r#"
            extern handle alloc(int n);
            extern int use_obj(handle h);
            handle keep;
            int main() {
                handle h = alloc(0);
                for (int i = 0; i < 8; i = i + 1) {
                    if (i % 2 == 0) { h = alloc(i); }
                    int v = use_obj(h);
                }
                return 0;
            }
            "#,
        )
        .unwrap();
        let managed = manage(unit).unwrap();
        let summaries = summarize(&managed.program, &table);
        let hot = find_hot_loop(&managed, &summaries, &table, "main").unwrap();
        let pdg = Pdg::build(&hot);
        let carried_data = pdg.edges.iter().any(|e| {
            e.carried
                && matches!(&e.kind, DepKind::Memory { loc: Location::Channel(c), .. } if c == "DATA")
        });
        assert!(
            carried_data,
            "conditional rebinding keeps the conflict: {}",
            pdg.dump()
        );
    }

    #[test]
    fn uncountable_loop_condition_gets_carried_edge() {
        let mut table = IntrinsicTable::new();
        table.register("next", vec![Type::Int], Type::Int, &["LL"], &[], 10);
        let unit = commset_lang::compile_unit(
            "extern int next(int p); int main() { int p = 1; while (p != 0) { p = next(p); } return 0; }",
        )
        .unwrap();
        let managed = manage(unit).unwrap();
        let summaries = summarize(&managed.program, &table);
        let hot = find_hot_loop(&managed, &summaries, &table, "main").unwrap();
        let pdg = Pdg::build(&hot);
        let to_cond = pdg
            .edges
            .iter()
            .any(|e| e.dst == NodeId(0) && e.carried && !e.induction);
        assert!(to_cond, "{}", pdg.dump());
        assert!(!pdg.doall_legal());
    }
}
