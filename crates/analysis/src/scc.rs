//! Strongly connected components of the relaxed PDG and the DAG-SCC the
//! DSWP transform family partitions (paper §4.4–4.5).
//!
//! Edge filtering implements the paper's rule: "the ico edges are treated
//! as intra-iteration dependence edges, while uco edges are treated as
//! non-existent edges in the PDG".

use crate::pdg::{CommAnnotation, NodeId, Pdg};
use std::collections::BTreeSet;

/// The DAG of strongly connected components of the relaxed PDG.
#[derive(Debug, Clone)]
pub struct DagScc {
    /// Component index of each PDG node.
    pub comp_of: Vec<usize>,
    /// Components in topological order (sources first); node ids within a
    /// component are sorted.
    pub comps: Vec<Vec<NodeId>>,
    /// Edges between distinct components (topological indices).
    pub comp_edges: BTreeSet<(usize, usize)>,
    /// Whether each component contains an internal loop-carried dependence
    /// (such a component cannot be replicated by PS-DSWP).
    pub comp_carried: Vec<bool>,
    /// Total profile weight of each component.
    pub comp_weight: Vec<u64>,
}

impl DagScc {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.comps.len()
    }

    /// True if there are no components (empty PDG).
    pub fn is_empty(&self) -> bool {
        self.comps.is_empty()
    }
}

/// Computes the DAG-SCC of the relaxed PDG.
pub fn dag_scc(pdg: &Pdg) -> DagScc {
    let n = pdg.nodes.len();
    // Effective edge list after relaxation.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut eff_edges: Vec<(usize, usize, bool)> = Vec::new(); // (src, dst, carried)
    for e in &pdg.edges {
        if e.comm == Some(CommAnnotation::Uco) || e.induction {
            continue;
        }
        let carried = e.carried && e.comm != Some(CommAnnotation::Ico);
        adj[e.src.0].push(e.dst.0);
        eff_edges.push((e.src.0, e.dst.0, carried));
    }

    // Iterative Tarjan.
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comp_of = vec![usize::MAX; n];
    let mut comps_rev: Vec<Vec<usize>> = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        // (node, next child position)
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().unwrap();
                        on_stack[w] = false;
                        comp_of[w] = comps_rev.len();
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    comps_rev.push(comp);
                }
            }
        }
    }
    // Tarjan yields reverse topological order; flip it.
    let m = comps_rev.len();
    let remap = |old: usize| m - 1 - old;
    let mut comps: Vec<Vec<NodeId>> = vec![Vec::new(); m];
    for (old, comp) in comps_rev.into_iter().enumerate() {
        comps[remap(old)] = comp.into_iter().map(NodeId).collect();
    }
    for c in comp_of.iter_mut() {
        *c = remap(*c);
    }
    let mut comp_edges = BTreeSet::new();
    let mut comp_carried = vec![false; m];
    for (s, d, carried) in eff_edges {
        let (cs, cd) = (comp_of[s], comp_of[d]);
        if cs != cd {
            comp_edges.insert((cs, cd));
        } else if carried {
            comp_carried[cs] = true;
        }
    }
    let mut comp_weight = vec![0u64; m];
    for (i, node) in pdg.nodes.iter().enumerate() {
        comp_weight[comp_of[i]] += node.weight;
    }
    DagScc {
        comp_of,
        comps,
        comp_edges,
        comp_carried,
        comp_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdg::{DepKind, PdgEdge, PdgNode};
    use commset_lang::token::Span;

    fn mk_pdg(n: usize, edges: &[(usize, usize, bool)]) -> Pdg {
        let nodes = (0..n)
            .map(|i| PdgNode {
                id: NodeId(i),
                kind: if i == 0 {
                    crate::pdg::NodeKind::Condition
                } else {
                    crate::pdg::NodeKind::Stmt(i - 1)
                },
                label: format!("S{i}"),
                span: Span::default(),
                weight: 10,
            })
            .collect();
        let edges = edges
            .iter()
            .map(|&(s, d, carried)| PdgEdge {
                src: NodeId(s),
                dst: NodeId(d),
                kind: DepKind::RegFlow("v".into()),
                carried,
                induction: false,
                comm: None,
            })
            .collect();
        Pdg { nodes, edges }
    }

    #[test]
    fn chain_gives_singleton_comps_in_topo_order() {
        let pdg = mk_pdg(4, &[(0, 1, false), (1, 2, false), (2, 3, false)]);
        let dag = dag_scc(&pdg);
        assert_eq!(dag.len(), 4);
        for (i, comp) in dag.comps.iter().enumerate() {
            assert_eq!(comp.len(), 1);
            // topological: edges only point forward
            for &(s, d) in &dag.comp_edges {
                assert!(s < d);
            }
            let _ = i;
        }
    }

    #[test]
    fn cycle_collapses_into_one_component() {
        let pdg = mk_pdg(
            4,
            &[(0, 1, false), (1, 2, false), (2, 1, true), (2, 3, false)],
        );
        let dag = dag_scc(&pdg);
        assert_eq!(dag.len(), 3);
        let c1 = dag.comp_of[1];
        assert_eq!(c1, dag.comp_of[2]);
        assert!(dag.comp_carried[c1], "cycle via carried edge");
        assert_eq!(dag.comp_weight[c1], 20);
    }

    #[test]
    fn uco_edges_are_ignored_and_ico_are_intra() {
        let mut pdg = mk_pdg(3, &[(1, 2, true), (2, 1, true)]);
        // Mark 1->2 uco and 2->1 ico: no cycle remains, and the ico edge is
        // not carried.
        pdg.edges[0].comm = Some(CommAnnotation::Uco);
        pdg.edges[1].comm = Some(CommAnnotation::Ico);
        let dag = dag_scc(&pdg);
        assert_eq!(dag.len(), 3);
        assert!(dag.comp_carried.iter().all(|&c| !c));
        // The ico edge 2->1 still orders the components.
        let c2 = dag.comp_of[2];
        let c1 = dag.comp_of[1];
        assert!(dag.comp_edges.contains(&(c2, c1)));
    }

    #[test]
    fn self_loop_marks_component_carried() {
        let pdg = mk_pdg(2, &[(1, 1, true)]);
        let dag = dag_scc(&pdg);
        let c = dag.comp_of[1];
        assert!(dag.comp_carried[c]);
    }
}
