//! Symbolic interpretation of `CommSetPredicate` bodies (paper §4.4).
//!
//! Algorithm 1 needs to prove a predicate *always true* given inequality or
//! equality assertions about the bindings of corresponding parameters
//! (`Assert(i1 != i2)` for induction variables on separate iterations). The
//! interpreter evaluates the predicate over symbolic values with
//! three-valued logic: a proof succeeds only when the result is
//! [`Tri::True`] under every valuation consistent with the assertions.

use commset_lang::ast::{BinOp, Expr, ExprKind, UnOp};
use commset_lang::sema::PredicateDef;
use std::collections::HashMap;

/// Three-valued truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// True under every consistent valuation.
    True,
    /// False under every consistent valuation.
    False,
    /// Neither provable nor refutable.
    Unknown,
}

impl Tri {
    fn not(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Unknown => Tri::Unknown,
        }
    }

    fn and(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::False, _) | (_, Tri::False) => Tri::False,
            (Tri::True, Tri::True) => Tri::True,
            _ => Tri::Unknown,
        }
    }

    fn or(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::True, _) | (_, Tri::True) => Tri::True,
            (Tri::False, Tri::False) => Tri::False,
            _ => Tri::Unknown,
        }
    }
}

/// Known relation between the two bindings of one predicate parameter pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    /// The two bindings are definitely equal.
    Eq,
    /// The two bindings are definitely different.
    Ne,
    /// Nothing is known.
    Unknown,
}

/// A symbolic value.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SVal {
    /// A compile-time integer.
    Const(i64),
    /// The i-th symbol (2k = first binding of pair k, 2k+1 = second).
    Sym(u32),
    /// An affine form `Sym + offset` (covers `i1 + 1 != i2 + 1`).
    SymOff(u32, i64),
    /// Anything else.
    Opaque,
}

/// Proves `pred` under per-pair relations `rels` (one per parameter pair).
///
/// Returns [`Tri::True`] only if the predicate is true for every valuation
/// consistent with `rels`.
pub fn prove(pred: &PredicateDef, rels: &[Rel]) -> Tri {
    debug_assert_eq!(rels.len(), pred.params1.len());
    let mut env: HashMap<&str, SVal> = HashMap::new();
    for (k, name) in pred.params1.iter().enumerate() {
        env.insert(name.as_str(), SVal::Sym(2 * k as u32));
    }
    for (k, name) in pred.params2.iter().enumerate() {
        env.insert(name.as_str(), SVal::Sym(2 * k as u32 + 1));
    }
    eval_bool(&pred.body, &env, rels)
}

/// Relation between two symbols, derived from the pair table.
fn sym_rel(a: u32, b: u32, rels: &[Rel]) -> Rel {
    if a == b {
        return Rel::Eq;
    }
    if a / 2 == b / 2 {
        return rels[(a / 2) as usize];
    }
    Rel::Unknown
}

#[allow(clippy::only_used_in_recursion)]
fn eval_val(e: &Expr, env: &HashMap<&str, SVal>, rels: &[Rel]) -> SVal {
    match &e.kind {
        ExprKind::IntLit(v) => SVal::Const(*v),
        ExprKind::Var(n) => env.get(n.as_str()).copied().unwrap_or(SVal::Opaque),
        ExprKind::Unary(UnOp::Neg, a) => match eval_val(a, env, rels) {
            SVal::Const(v) => SVal::Const(-v),
            _ => SVal::Opaque,
        },
        ExprKind::Binary(op @ (BinOp::Add | BinOp::Sub), a, b) => {
            let va = eval_val(a, env, rels);
            let vb = eval_val(b, env, rels);
            let sign = if *op == BinOp::Sub { -1 } else { 1 };
            match (va, vb) {
                (SVal::Const(x), SVal::Const(y)) => SVal::Const(x + sign * y),
                (SVal::Sym(s), SVal::Const(c)) => SVal::SymOff(s, sign * c),
                (SVal::SymOff(s, o), SVal::Const(c)) => SVal::SymOff(s, o + sign * c),
                (SVal::Const(c), SVal::Sym(s)) if *op == BinOp::Add => SVal::SymOff(s, c),
                (SVal::Const(c), SVal::SymOff(s, o)) if *op == BinOp::Add => SVal::SymOff(s, c + o),
                _ => SVal::Opaque,
            }
        }
        ExprKind::Binary(op, a, b) => {
            let va = eval_val(a, env, rels);
            let vb = eval_val(b, env, rels);
            match (op, va, vb) {
                (BinOp::Mul, SVal::Const(x), SVal::Const(y)) => SVal::Const(x * y),
                (BinOp::Div, SVal::Const(x), SVal::Const(y)) if y != 0 => SVal::Const(x / y),
                (BinOp::Rem, SVal::Const(x), SVal::Const(y)) if y != 0 => SVal::Const(x % y),
                _ => SVal::Opaque,
            }
        }
        _ => SVal::Opaque,
    }
}

fn eval_bool(e: &Expr, env: &HashMap<&str, SVal>, rels: &[Rel]) -> Tri {
    match &e.kind {
        ExprKind::IntLit(v) => {
            if *v != 0 {
                Tri::True
            } else {
                Tri::False
            }
        }
        ExprKind::Unary(UnOp::Not, a) => eval_bool(a, env, rels).not(),
        ExprKind::Binary(BinOp::And, a, b) => eval_bool(a, env, rels).and(eval_bool(b, env, rels)),
        ExprKind::Binary(BinOp::Or, a, b) => eval_bool(a, env, rels).or(eval_bool(b, env, rels)),
        ExprKind::Binary(
            op @ (BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge),
            a,
            b,
        ) => {
            let va = eval_val(a, env, rels);
            let vb = eval_val(b, env, rels);
            compare(*op, va, vb, rels)
        }
        _ => Tri::Unknown,
    }
}

fn compare(op: BinOp, a: SVal, b: SVal, rels: &[Rel]) -> Tri {
    // Normalize SymOff with zero offset.
    let norm = |v: SVal| match v {
        SVal::SymOff(s, 0) => SVal::Sym(s),
        other => other,
    };
    let a = norm(a);
    let b = norm(b);
    match (a, b) {
        (SVal::Const(x), SVal::Const(y)) => {
            let r = match op {
                BinOp::Eq => x == y,
                BinOp::Ne => x != y,
                BinOp::Lt => x < y,
                BinOp::Le => x <= y,
                BinOp::Gt => x > y,
                BinOp::Ge => x >= y,
                _ => return Tri::Unknown,
            };
            if r {
                Tri::True
            } else {
                Tri::False
            }
        }
        (SVal::Sym(x), SVal::Sym(y)) => rel_compare(op, sym_rel(x, y, rels)),
        (SVal::SymOff(x, ox), SVal::SymOff(y, oy)) => {
            // s1 + o1 <op> s2 + o2: decidable for Eq/Ne when the symbols'
            // relation and offsets combine cleanly.
            match sym_rel(x, y, rels) {
                Rel::Eq => {
                    // Reduces to o1 <op> o2.
                    compare(op, SVal::Const(ox), SVal::Const(oy), rels)
                }
                Rel::Ne if ox == oy => rel_compare(op, Rel::Ne),
                _ => Tri::Unknown,
            }
        }
        (SVal::Sym(x), SVal::SymOff(y, o)) | (SVal::SymOff(y, o), SVal::Sym(x)) => {
            // Only equality-ish conclusions are safe, and only when the
            // symbols are equal: s <op> s + o reduces to 0 <op> o
            // (respecting side for inequalities is not attempted).
            if sym_rel(x, y, rels) == Rel::Eq && matches!(op, BinOp::Eq | BinOp::Ne) {
                compare(op, SVal::Const(0), SVal::Const(o), rels)
            } else {
                Tri::Unknown
            }
        }
        _ => Tri::Unknown,
    }
}

fn rel_compare(op: BinOp, rel: Rel) -> Tri {
    match (op, rel) {
        (BinOp::Eq, Rel::Eq) => Tri::True,
        (BinOp::Eq, Rel::Ne) => Tri::False,
        (BinOp::Ne, Rel::Eq) => Tri::False,
        (BinOp::Ne, Rel::Ne) => Tri::True,
        (BinOp::Le | BinOp::Ge, Rel::Eq) => Tri::True,
        (BinOp::Lt | BinOp::Gt, Rel::Eq) => Tri::False,
        _ => Tri::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commset_lang::ast::Type;
    use commset_lang::parser::parse_expr;

    fn pred(p1: &[&str], p2: &[&str], body: &str) -> PredicateDef {
        PredicateDef {
            func_name: "__pred_T".into(),
            params1: p1.iter().map(|s| s.to_string()).collect(),
            params2: p2.iter().map(|s| s.to_string()).collect(),
            param_tys: vec![Type::Int; p1.len()],
            body: parse_expr(body).unwrap(),
        }
    }

    #[test]
    fn proves_induction_inequality() {
        let p = pred(&["i1"], &["i2"], "i1 != i2");
        assert_eq!(prove(&p, &[Rel::Ne]), Tri::True);
        assert_eq!(prove(&p, &[Rel::Eq]), Tri::False);
        assert_eq!(prove(&p, &[Rel::Unknown]), Tri::Unknown);
    }

    #[test]
    fn handles_disjunction_and_negation() {
        let p = pred(&["a"], &["b"], "a < b || a > b || 0");
        // a != b does not resolve < or > individually, so Unknown.
        assert_eq!(prove(&p, &[Rel::Ne]), Tri::Unknown);
        let q = pred(&["a"], &["b"], "!(a == b)");
        assert_eq!(prove(&q, &[Rel::Ne]), Tri::True);
    }

    #[test]
    fn multi_pair_conjunction() {
        let p = pred(&["x", "k"], &["y", "l"], "x != y && k == l");
        assert_eq!(prove(&p, &[Rel::Ne, Rel::Eq]), Tri::True);
        assert_eq!(prove(&p, &[Rel::Ne, Rel::Ne]), Tri::False);
        assert_eq!(prove(&p, &[Rel::Ne, Rel::Unknown]), Tri::Unknown);
    }

    #[test]
    fn affine_offsets() {
        let p = pred(&["i1"], &["i2"], "i1 + 1 != i2 + 1");
        assert_eq!(prove(&p, &[Rel::Ne]), Tri::True);
        let q = pred(&["i1"], &["i2"], "i1 != i2 + 1");
        assert_eq!(prove(&q, &[Rel::Eq]), Tri::True, "i = i + 1 is impossible");
        assert_eq!(prove(&q, &[Rel::Ne]), Tri::Unknown);
    }

    #[test]
    fn constants_fold() {
        let p = pred(&["a"], &["b"], "1 == 1");
        assert_eq!(prove(&p, &[Rel::Unknown]), Tri::True);
        let q = pred(&["a"], &["b"], "2 * 3 == 6 && a == a");
        assert_eq!(prove(&q, &[Rel::Unknown]), Tri::True);
    }

    #[test]
    fn opaque_forms_are_unknown() {
        let p = pred(&["a"], &["b"], "a % 2 != b % 2");
        assert_eq!(prove(&p, &[Rel::Ne]), Tri::Unknown);
    }

    #[test]
    fn same_symbol_comparisons() {
        let p = pred(&["a"], &["b"], "a <= a");
        assert_eq!(prove(&p, &[Rel::Unknown]), Tri::True);
        let q = pred(&["a"], &["b"], "a < a");
        assert_eq!(prove(&q, &[Rel::Unknown]), Tri::False);
    }
}
