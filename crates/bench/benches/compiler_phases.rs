//! Benches of the compiler itself: front end, full analysis (metadata
//! manager + PDG + Algorithm 1), and each transform, measured on the
//! md5sum workload source. Self-harnessed (no external bench crates).

use commset_bench::timing::bench;
use std::hint::black_box;

fn main() {
    let w = commset_workloads::md5sum::workload();
    let src = w.variants[0].clone();
    let compiler = w.compiler();

    bench("frontend_parse_and_check", 3, 20, || {
        commset_lang::compile_unit(black_box(&src)).unwrap()
    });

    bench("analysis_full_pipeline", 3, 20, || {
        compiler.analyze(black_box(&src)).unwrap()
    });

    let analysis = compiler.analyze(&src).unwrap();
    bench("transform_doall_x8", 3, 20, || {
        compiler
            .compile(
                black_box(&analysis),
                commset::Scheme::Doall,
                8,
                commset::SyncMode::Lib,
            )
            .unwrap()
    });

    let det = compiler.analyze(&w.variants[1]).unwrap();
    bench("transform_ps_dswp_x8", 3, 20, || {
        compiler
            .compile(
                black_box(&det),
                commset::Scheme::PsDswp,
                8,
                commset::SyncMode::Lib,
            )
            .unwrap()
    });

    bench("lower_sequential", 3, 20, || {
        compiler.compile_sequential(black_box(&analysis)).unwrap()
    });
}
