//! Criterion benches of the compiler itself: front end, full analysis
//! (metadata manager + PDG + Algorithm 1), and each transform, measured on
//! the md5sum workload source.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_phases(c: &mut Criterion) {
    let w = commset_workloads::md5sum::workload();
    let src = w.variants[0].clone();
    let compiler = w.compiler();

    c.bench_function("frontend_parse_and_check", |b| {
        b.iter(|| commset_lang::compile_unit(black_box(&src)).unwrap())
    });

    c.bench_function("analysis_full_pipeline", |b| {
        b.iter(|| compiler.analyze(black_box(&src)).unwrap())
    });

    let analysis = compiler.analyze(&src).unwrap();
    c.bench_function("transform_doall_x8", |b| {
        b.iter(|| {
            compiler
                .compile(black_box(&analysis), commset::Scheme::Doall, 8, commset::SyncMode::Lib)
                .unwrap()
        })
    });

    let det = compiler.analyze(&w.variants[1]).unwrap();
    c.bench_function("transform_ps_dswp_x8", |b| {
        b.iter(|| {
            compiler
                .compile(black_box(&det), commset::Scheme::PsDswp, 8, commset::SyncMode::Lib)
                .unwrap()
        })
    });

    c.bench_function("lower_sequential", |b| {
        b.iter(|| compiler.compile_sequential(black_box(&analysis)).unwrap())
    });
}

criterion_group! {
    name = phases;
    config = Criterion::default().sample_size(20);
    targets = bench_phases
}
criterion_main!(phases);
