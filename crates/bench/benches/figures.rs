//! Criterion benches regenerating each evaluation artifact's key data
//! point: the sequential baseline and the best parallel schedule of every
//! Table 2 / Figure 6 program, plus the Figure 3 schedules.

use commset_sim::CostModel;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_workloads(c: &mut Criterion) {
    let cm = CostModel::default();
    for w in commset_workloads::all() {
        let mut group = c.benchmark_group(format!("figure6/{}", w.name));
        group.sample_size(10);
        group.bench_function("sequential", |b| {
            b.iter(|| black_box(w.run_sequential(&cm)))
        });
        // The workload's first scheme series is its headline schedule.
        let spec = &w.schemes[0];
        group.bench_function(format!("{}@8", spec.label), |b| {
            b.iter(|| black_box(w.run_scheme(spec, 8, &cm).expect("applies")))
        });
        group.finish();
    }
}

fn bench_figure3(c: &mut Criterion) {
    let cm = CostModel::default();
    let w = commset_workloads::md5sum::workload();
    let compiler = w.compiler();
    let full = compiler.analyze(&w.variants[0]).unwrap();
    let det = compiler.analyze(&w.variants[1]).unwrap();
    let (doall_m, doall_p) = compiler
        .compile(&full, commset::Scheme::Doall, 8, commset::SyncMode::Lib)
        .unwrap();
    let (ps_m, ps_p) = compiler
        .compile(&det, commset::Scheme::PsDswp, 8, commset::SyncMode::Lib)
        .unwrap();
    let mut group = c.benchmark_group("figure3/md5sum");
    group.sample_size(10);
    group.bench_function("doall_x8", |b| {
        b.iter(|| {
            let mut world = (w.make_world)();
            black_box(commset_interp::run_simulated(
                &doall_m,
                &w.registry,
                std::slice::from_ref(&doall_p),
                &mut world,
                &cm,
            ))
        })
    });
    group.bench_function("ps_dswp_x8", |b| {
        b.iter(|| {
            let mut world = (w.make_world)();
            black_box(commset_interp::run_simulated(
                &ps_m,
                &w.registry,
                std::slice::from_ref(&ps_p),
                &mut world,
                &cm,
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default();
    targets = bench_workloads, bench_figure3
}
criterion_main!(figures);
