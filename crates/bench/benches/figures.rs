//! Benches regenerating each evaluation artifact's key data point: the
//! sequential baseline and the best parallel schedule of every Table 2 /
//! Figure 6 program, plus the Figure 3 schedules. Self-harnessed (no
//! external bench crates).

use commset_bench::timing::bench;
use commset_sim::CostModel;
use std::hint::black_box;

fn bench_workloads(cm: &CostModel) {
    for w in commset_workloads::all() {
        bench(&format!("figure6/{}/sequential", w.name), 1, 10, || {
            black_box(w.run_sequential(cm))
        });
        // The workload's first scheme series is its headline schedule.
        let spec = &w.schemes[0];
        bench(
            &format!("figure6/{}/{}@8", w.name, spec.label),
            1,
            10,
            || black_box(w.run_scheme(spec, 8, cm).expect("applies")),
        );
    }
}

fn bench_figure3(cm: &CostModel) {
    let w = commset_workloads::md5sum::workload();
    let compiler = w.compiler();
    let full = compiler.analyze(&w.variants[0]).unwrap();
    let det = compiler.analyze(&w.variants[1]).unwrap();
    let (doall_m, doall_p) = compiler
        .compile(&full, commset::Scheme::Doall, 8, commset::SyncMode::Lib)
        .unwrap();
    let (ps_m, ps_p) = compiler
        .compile(&det, commset::Scheme::PsDswp, 8, commset::SyncMode::Lib)
        .unwrap();
    bench("figure3/md5sum/doall_x8", 1, 10, || {
        let mut world = (w.make_world)();
        black_box(
            commset_interp::run_simulated(
                &doall_m,
                &w.registry,
                std::slice::from_ref(&doall_p),
                &mut world,
                cm,
            )
            .expect("doall schedule runs"),
        )
    });
    bench("figure3/md5sum/ps_dswp_x8", 1, 10, || {
        let mut world = (w.make_world)();
        black_box(
            commset_interp::run_simulated(
                &ps_m,
                &w.registry,
                std::slice::from_ref(&ps_p),
                &mut world,
                cm,
            )
            .expect("ps-dswp schedule runs"),
        )
    });
}

fn main() {
    let cm = CostModel::default();
    bench_workloads(&cm);
    bench_figure3(&cm);
}
