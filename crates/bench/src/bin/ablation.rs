//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **DOALL iteration scheduling** (cyclic vs blocked) on a workload
//!    with skewed per-iteration cost — why the transform defaults to
//!    cyclic distribution.
//! 2. **Static schedule selection**: does the performance estimator's
//!    ranking (`Compiler::compile_all`) agree with the simulated outcome?
//! 3. **Cost-model sensitivity**: how the kmeans spin-degradation story
//!    depends on the contention constants (showing the *shape*, not the
//!    constant, carries the result).
//!
//! Run: `cargo run -p commset-bench --bin ablation`

use commset::{Compiler, SyncMode};
use commset_interp::{run_sequential, run_simulated};
use commset_ir::IntrinsicTable;
use commset_lang::ast::Type;
use commset_runtime::intrinsics::IntrinsicOutcome;
use commset_runtime::{Registry, World};
use commset_sim::CostModel;
use commset_transform::doall::apply_doall_scheduled;
use commset_transform::plan::IterSchedule;

/// Skewed workload: iteration `i` costs ~`i` units — the worst case for
/// blocked scheduling.
const SKEWED: &str = r#"
    extern void work(int i);
    int main() {
        int n = 64;
        for (int i = 0; i < n; i = i + 1) {
            #pragma CommSet(SELF)
            { work(i); }
        }
        return 0;
    }
"#;

fn skewed_setup() -> (IntrinsicTable, Registry) {
    let mut t = IntrinsicTable::new();
    t.register("work", vec![Type::Int], Type::Void, &[], &["ACC"], 10);
    let mut r = Registry::new();
    r.register("work", |world, args| {
        *world.get_mut::<i64>("acc") += 1;
        // Ramp: late iterations are ~100x the early ones.
        IntrinsicOutcome::unit()
            .with_cost(20 * args[0].as_int() as u64)
            .with_serialized(2)
    });
    (t, r)
}

fn schedule_ablation() {
    println!("=== 1. DOALL iteration scheduling (skewed per-iteration cost) ===");
    let (table, registry) = skewed_setup();
    let compiler = Compiler::new(table);
    let a = compiler.analyze(SKEWED).expect("analyzes");
    let cm = CostModel::default();
    let seq_module = compiler.compile_sequential(&a).unwrap();
    let mut w = World::new();
    w.install("acc", 0i64);
    let seq = run_sequential(&seq_module, &registry, &mut w, &cm, "main").expect("baseline runs");
    println!("   threads   cyclic  blocked");
    for threads in [2, 4, 8] {
        let mut row = format!("   {threads:>7}");
        for schedule in [IterSchedule::Cyclic, IterSchedule::Blocked] {
            let pp = apply_doall_scheduled(
                &a.managed,
                &a.hot,
                &a.pdg,
                &a.summaries,
                &Default::default(),
                threads,
                SyncMode::Lib,
                0,
                schedule,
            )
            .expect("applies");
            let module =
                commset_ir::lower_program(&pp.program, compiler.intrinsics.clone()).unwrap();
            let mut w = World::new();
            w.install("acc", 0i64);
            let out =
                run_simulated(&module, &registry, &[pp.plan], &mut w, &cm).expect("schedule runs");
            assert_eq!(*w.get::<i64>("acc"), 64, "all iterations ran");
            row.push_str(&format!(
                "  {:6.2}",
                seq.sim_time as f64 / out.sim_time as f64
            ));
        }
        println!("{row}");
    }
    println!("   (cyclic interleaves the ramp across workers; blocked hands the");
    println!("    heavy tail to the last worker — the default is cyclic)\n");
}

fn estimator_ablation() {
    println!("=== 2. Estimator-selected schedule vs simulated best ===");
    let cm = CostModel::default();
    let mut agree_top2 = 0;
    let mut total = 0;
    for w in commset_workloads::all() {
        let compiler = w.compiler();
        let a = compiler.analyze(&w.variants[0]).expect("analyzes");
        let ranked = compiler.compile_all(&a, 8);
        if ranked.is_empty() {
            continue;
        }
        // Simulate every compiled schedule and find the true best.
        let mut simulated: Vec<(String, u64)> = Vec::new();
        for (scheme, sync, module, plan) in &ranked {
            let mut world = (w.make_world)();
            let out = run_simulated(
                module,
                &w.registry,
                std::slice::from_ref(plan),
                &mut world,
                &cm,
            )
            .expect("ranked schedule runs");
            simulated.push((format!("{scheme}+{sync}"), out.sim_time));
        }
        let est_pick = &simulated[0].0;
        let true_best = simulated
            .iter()
            .min_by_key(|(_, t)| *t)
            .expect("nonempty")
            .0
            .clone();
        let top2: Vec<&String> = simulated.iter().take(2).map(|(l, _)| l).collect();
        let hit = top2.contains(&&true_best);
        total += 1;
        agree_top2 += usize::from(hit);
        println!(
            "   {:<10} estimator: {:<16} simulated best: {:<16} {}",
            w.name,
            est_pick,
            true_best,
            if hit { "(top-2 hit)" } else { "(miss)" }
        );
    }
    println!("   estimator's top-2 contains the simulated best on {agree_top2}/{total} programs\n");
}

fn sensitivity_ablation() {
    println!("=== 3. Cost-model sensitivity: kmeans spin degradation ===");
    let w = commset_workloads::kmeans::workload();
    let spin = w
        .schemes
        .iter()
        .find(|s| s.label.contains("Spin"))
        .expect("spin series");
    println!("   spin_contended   s@5    s@8   degrades past 5?");
    for factor in [0u64, 6, 12, 24, 48] {
        let cm = CostModel {
            spin_contended: factor,
            ..CostModel::default()
        };
        let s5 = w.speedup(spin, 5, &cm).unwrap();
        let s8 = w.speedup(spin, 8, &cm).unwrap();
        println!(
            "   {:>14} {:6.2} {:6.2}   {}",
            factor,
            s5,
            s8,
            if s8 < s5 { "yes" } else { "no" }
        );
    }
    println!("   (the degradation *shape* appears for any nonzero cache-bounce");
    println!("    penalty; the constant only moves the knee)");
}

fn main() {
    schedule_ablation();
    estimator_ablation();
    sensitivity_ablation();
}
