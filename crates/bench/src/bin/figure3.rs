//! Regenerates Figure 3: the three md5sum schedules (sequential, PS-DSWP,
//! DOALL) and their timelines on eight simulated cores.
//!
//! Run: `cargo run -p commset-bench --bin figure3`

use commset::{Scheme, SyncMode};
use commset_interp::run_simulated;
use commset_sim::CostModel;
use commset_workloads::md5sum;

fn bar(t: u64, scale: u64) -> String {
    "#".repeat(t.div_ceil(scale) as usize)
}

fn main() {
    let w = md5sum::workload();
    let compiler = w.compiler();
    let cm = CostModel::default();

    let (seq_time, _) = w.run_sequential(&cm);
    let scale = seq_time / 60 + 1;

    println!("Figure 3: md5sum schedule timelines (8 simulated cores)\n");
    println!(
        "Sequential            |{}| {seq_time}",
        bar(seq_time, scale)
    );

    // PS-DSWP on the deterministic variant (one less SELF annotation).
    let det = compiler.analyze(&w.variants[1]).expect("analyzes");
    let (module, plan) = compiler
        .compile(&det, Scheme::PsDswp, 8, SyncMode::Lib)
        .expect("PS-DSWP applies");
    let stages = plan.stage_desc.clone();
    let mut world = (w.make_world)();
    let ps = run_simulated(&module, &w.registry, &[plan], &mut world, &cm)
        .expect("PS-DSWP schedule runs");
    println!(
        "PS-DSWP (deterministic)|{}| {} -> {:.2}x (paper: 5.8x)",
        bar(ps.sim_time, scale),
        ps.sim_time,
        seq_time as f64 / ps.sim_time as f64
    );
    for s in &stages {
        println!("    {s}");
    }

    // DOALL on the fully annotated variant.
    let full = compiler.analyze(&w.variants[0]).expect("analyzes");
    let (module, plan) = compiler
        .compile(&full, Scheme::Doall, 8, SyncMode::Lib)
        .expect("DOALL applies");
    let mut world = (w.make_world)();
    let doall =
        run_simulated(&module, &w.registry, &[plan], &mut world, &cm).expect("DOALL schedule runs");
    println!(
        "DOALL (out-of-order)   |{}| {} -> {:.2}x (paper: 7.6x)",
        bar(doall.sim_time, scale),
        doall.sim_time,
        seq_time as f64 / doall.sim_time as f64
    );
    println!("\nOne SELF annotation separates the two parallel schedules: with it,");
    println!("digests print out of order (DOALL); without it, a sequential print");
    println!("stage preserves the sequential output order (PS-DSWP).");
}
