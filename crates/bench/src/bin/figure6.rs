//! Regenerates Figure 6: speedup vs thread count for every program and
//! every scheme series, plus the geomean panel (6i).
//!
//! Run: `cargo run -p commset-bench --bin figure6`

use commset_bench::{cell, geomean, run_panel, THREADS};
use commset_sim::CostModel;

fn main() {
    let cm = CostModel::default();
    let mut best = Vec::new();
    let mut noncomm = Vec::new();
    let letters = ["a", "b", "c", "d", "e", "f", "g", "h"];
    for (i, w) in commset_workloads::all().iter().enumerate() {
        let panel = run_panel(w, &cm);
        println!(
            "Figure 6{}: {}   (paper best: {:.1}x {})",
            letters[i], panel.name, w.paper.best_speedup, w.paper.best_scheme
        );
        print!("  {:<26}", "threads");
        for t in THREADS {
            print!(" {t:>5}");
        }
        println!();
        for (label, curve) in &panel.series {
            print!("  {label:<26}");
            for v in curve {
                print!(" {}", cell(*v));
            }
            println!();
        }
        println!(
            "  best COMMSET @8: {:.2}x ({}) | best non-COMMSET @8: {:.2}x\n",
            panel.best8, panel.best8_label, panel.noncomm8
        );
        best.push(panel.best8);
        noncomm.push(panel.noncomm8);
    }
    println!("Figure 6i: geomean across the eight programs");
    println!("  COMMSET:     {:.2}x  (paper: 5.7x)", geomean(&best));
    println!("  non-COMMSET: {:.2}x  (paper: 1.49x)", geomean(&noncomm));
}
