//! Wall-clock benchmark harness on **real OS threads**.
//!
//! Unlike `figure6` (which regenerates the paper's plots from the
//! discrete-event simulator), `perf` measures actual elapsed time of the
//! real-thread executor, comparing the historical single-mutex world
//! against the rank-ordered sharded world on every workload, scheme and
//! thread count, and reporting the shard/queue contention counters next
//! to each number.
//!
//! Run: `cargo run --release -p commset-bench --bin perf`
//!
//! Flags:
//!
//! * `--quick` — 1 iteration, 2 threads only (the CI smoke mode);
//! * `--iters K` — median-of-K iterations (default 3);
//! * `--out PATH` — output path (default `BENCH_PARALLEL.json`);
//! * `--delta-smoke WORKLOAD` — CI's delta gate: run one merge-declared
//!   workload in `WorldMode::Deltas` and fail if the privatized path
//!   ever touches a shard lock.
//! * `--engine-smoke` — CI's engine gate: run the md5sum canary on the
//!   simulated executor under both execution engines and fail if the
//!   compiled bytecode backend is not strictly faster than the
//!   tree-walk engine on any applicable cell.
//! * `--diff OLD.json [--against NEW.json]` — the noise-aware perf
//!   regression gate: diff a candidate report against the committed
//!   baseline cell-by-cell (tight 5% band on the deterministic
//!   simulator columns, factor + absolute-floor band on the noisy
//!   wall-clock columns — see `commset_bench::diff`). Without
//!   `--against`, a quick suite runs in-process as the candidate.
//!   Exit 1 on any regression; unknown flags and unreadable files
//!   exit 2 with the usage line.
//!
//! Workloads whose registries declare merge operators get a third
//! `deltas` cell per DOALL row (CCD-style privatization), with the
//! shard counters proving the update path took no locks, plus a pair of
//! deterministic simulator times (`sim_time` / `sim_time_deltas`): the
//! DES models full `threads`-way parallelism whatever the host has, so
//! the modeled pair shows the contention win even when the wall clock
//! is measured on a small machine. Every row also carries
//! `sim_time_bytecode` — the same modeled run on the compiled bytecode
//! backend — next to `sim_time` (tree-walk), so the dispatch win of the
//! compiled engine is a column diff, not a separate report.
//!
//! The output is a machine-readable JSON report (written without any
//! external serialization dependency): one entry per
//! `workload x scheme x thread-count`, with wall-clock microseconds and
//! contention counters for both world modes, the sharded-over-single
//! ratio, per-mode speedups over the same scheme at one thread, and a
//! full telemetry `RunReport` (stage balance, lock contention by rank,
//! queue traffic) captured by one extra untimed instrumented run.
//! Every measured run is validated against the sequential oracle — a
//! benchmark that computes the wrong answer aborts.

use commset::Scheme;
use commset_bench::diff::{diff_reports, DiffConfig};
use commset_interp::bundle::Json;
use commset_interp::{Backend, Engine, ExecConfig, RecoveryPolicy, ThreadOutcome, WorldMode};
use commset_runtime::{DeltaSnapshot, ShardStatsSnapshot};
use commset_sim::CostModel;
use commset_telemetry::{RecoveryReport, RunReport};
use commset_workloads::{SchemeSpec, Workload};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One measured cell: the median run of a (workload, scheme, threads,
/// world-mode) configuration.
struct Cell {
    wall_us: u128,
    shard: ShardStatsSnapshot,
    delta: DeltaSnapshot,
    queue_full_spins: u64,
    queue_empty_spins: u64,
    /// The unified profiling report from one extra, *untimed* run with
    /// telemetry on (so the measured iterations stay instrumentation-free).
    telemetry: Option<RunReport>,
    /// The execution supervisor's account of that instrumented run:
    /// retries taken, ladder rungs walked, final mode. `is_clean()` for a
    /// healthy cell.
    recovery: Option<RecoveryReport>,
}

struct Row {
    workload: String,
    scheme: String,
    threads: usize,
    single: Cell,
    /// `None` when the workload's registry declares no slot bindings —
    /// `WorldMode::Auto` would never shard it, so forcing the sharded
    /// world would only measure the whole-world slow path.
    sharded: Option<Cell>,
    /// `None` unless the registry declares merge operators and the
    /// scheme is DOALL — pipeline sections never delta-route, so a
    /// deltas cell there would just re-measure `sharded`.
    deltas: Option<Cell>,
    /// Modeled time on the discrete-event simulator, default world,
    /// tree-walk engine. The DES models `threads`-way parallelism
    /// whatever the host has, so this pair is the deterministic,
    /// noise-free contention story the wall clock can't tell on a small
    /// machine.
    sim_time: Option<u64>,
    /// The same modeled run on the compiled bytecode backend: program
    /// work retires without the tree-walk dispatch premium, so this is
    /// strictly below `sim_time` wherever program work exists.
    sim_time_bytecode: Option<u64>,
    /// Modeled time with `WorldMode::Deltas` (tree-walk, so the ratio
    /// against `sim_time` isolates the privatization win): privatized
    /// updates skip the commutative channel's serialization charge, so
    /// on reduction workloads this is strictly below `sim_time` at 2+
    /// threads.
    sim_time_deltas: Option<u64>,
}

/// One validated run on the simulated executor; `None` if the scheme is
/// inapplicable (panics on executor failure — sim runs must not fail).
fn sim_time(
    w: &Workload,
    spec: &SchemeSpec,
    threads: usize,
    mode: WorldMode,
    engine: Engine,
    cm: &CostModel,
    seq_world: &commset_runtime::World,
) -> Option<u64> {
    let cfg = ExecConfig {
        world: mode,
        engine,
        ..ExecConfig::default()
    };
    match w.run_scheme_with(spec, threads, cm, &cfg) {
        Ok((time, world, _)) => {
            (w.validate)(seq_world, &world).unwrap_or_else(|e| {
                panic!(
                    "{}: {} x{threads} sim ({mode:?}, {engine:?}) computed a wrong answer: {e}",
                    w.name, spec.label
                )
            });
            Some(time)
        }
        Err(Ok(_diag)) => None,
        Err(Err(e)) => panic!(
            "{}: {} x{threads} sim ({mode:?}, {engine:?}): executor failed: {e}",
            w.name, spec.label
        ),
    }
}

fn median(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Runs one configuration `iters` times, validating every run, and
/// returns the median-wall cell.
fn measure(
    w: &Workload,
    spec: &SchemeSpec,
    threads: usize,
    mode: WorldMode,
    iters: usize,
    seq_world: &commset_runtime::World,
) -> Option<Cell> {
    let cfg = ExecConfig {
        world: mode,
        ..ExecConfig::default()
    };
    let mut walls = Vec::with_capacity(iters);
    let mut last: Option<ThreadOutcome> = None;
    for _ in 0..iters {
        match w.run_scheme_threaded(spec, threads, &cfg) {
            Ok(out) => {
                (w.validate)(seq_world, &out.world).unwrap_or_else(|e| {
                    panic!(
                        "{}: {} x{threads} ({mode:?}) computed a wrong answer: {e}",
                        w.name, spec.label
                    )
                });
                assert!(
                    out.stats.watchdog.is_clean(),
                    "{}: {} x{threads} ({mode:?}): watchdog {:?}",
                    w.name,
                    spec.label,
                    out.stats.watchdog
                );
                if mode == WorldMode::Deltas {
                    // The point of the deltas cell: updates land in
                    // per-worker buffers, so the shard locks stay cold.
                    // One fast acquire is tolerated for a main-thread
                    // pre-section call (md5sum's `file_count`).
                    let s = &out.stats.shard;
                    assert!(
                        out.stats.delta.applies > 0,
                        "{}: {} x{threads}: deltas cell never took the privatized path",
                        w.name,
                        spec.label
                    );
                    assert!(
                        s.fast_acquires + s.multi_acquires + s.whole_acquires <= 1,
                        "{}: {} x{threads}: deltas cell touched the shard locks: {s:?}",
                        w.name,
                        spec.label
                    );
                }
                walls.push(out.wall.as_micros());
                last = Some(out);
            }
            Err(Ok(_diag)) => return None, // scheme inapplicable
            Err(Err(e)) => panic!(
                "{}: {} x{threads} ({mode:?}): executor failed: {e}",
                w.name, spec.label
            ),
        }
    }
    let last = last?;
    // One extra run with telemetry on, outside the timed loop: the report
    // rides along in the JSON without perturbing the wall-clock numbers.
    // It goes through the execution supervisor, so every cell also
    // records a RecoveryReport — clean on a healthy host, and an explicit
    // account of retries/degradation if the instrumented run hiccups.
    let telem_cfg = ExecConfig {
        telemetry: true,
        ..cfg
    };
    let policy = RecoveryPolicy {
        max_retries: 1,
        ..RecoveryPolicy::default()
    };
    let (telemetry, recovery) =
        match w.run_scheme_supervised(spec, threads, Backend::Threads, &telem_cfg, &policy) {
            Ok(out) => (out.telemetry, Some(out.recovery)),
            Err(Ok(_diag)) => (None, None),
            Err(Err(fail)) => (None, Some(fail.recovery)),
        };
    Some(Cell {
        wall_us: median(walls),
        shard: last.stats.shard,
        delta: last.stats.delta,
        queue_full_spins: last.stats.queue_full_spins,
        queue_empty_spins: last.stats.queue_empty_spins,
        telemetry,
        recovery,
    })
}

fn cell_json(c: &Cell) -> String {
    format!(
        "{{\"wall_us\": {}, \"shard\": {{\"fast_acquires\": {}, \"fast_waits\": {}, \
         \"multi_acquires\": {}, \"whole_acquires\": {}}}, \
         \"delta\": {{\"applies\": {}, \"coalesces\": {}, \"merged_slots\": {}, \
         \"lock_elisions\": {}}}, \
         \"queue_full_spins\": {}, \"queue_empty_spins\": {}, \"telemetry\": {}, \
         \"recovery\": {}}}",
        c.wall_us,
        c.shard.fast_acquires,
        c.shard.fast_waits,
        c.shard.multi_acquires,
        c.shard.whole_acquires,
        c.delta.applies,
        c.delta.coalesces,
        c.delta.merged_slots,
        c.delta.lock_elisions,
        c.queue_full_spins,
        c.queue_empty_spins,
        c.telemetry
            .as_ref()
            .map(|r| r.to_json())
            .unwrap_or_else(|| "null".to_string()),
        c.recovery
            .as_ref()
            .map(|r| r.to_json())
            .unwrap_or_else(|| "null".to_string())
    )
}

/// CI's delta perf gate: run one merge-declared reduction workload
/// entirely in `WorldMode::Deltas` (every DOALL scheme, 2 threads),
/// validate against the sequential oracle, and fail hard if the delta
/// path ever touched a shard lock. The `measure` assertions do the
/// enforcement; this just narrates the counters.
fn delta_smoke(name: &str) {
    let cm = CostModel::default();
    let w = commset_workloads::all()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("no workload named {name}"));
    assert!(
        w.registry.has_merges(),
        "{name} declares no merge operators — not a delta workload"
    );
    let (_, seq_world) = w.run_sequential(&cm);
    let mut cells = 0u32;
    for spec in &w.schemes {
        if spec.scheme != Scheme::Doall {
            continue;
        }
        let Some(cell) = measure(&w, spec, 2, WorldMode::Deltas, 1, &seq_world) else {
            continue;
        };
        eprintln!(
            "{:<8} {:<26} x2 deltas: {:>8}us  applies {}  coalesces {}  elisions {}  shard locks {:?}",
            w.name,
            spec.label,
            cell.wall_us,
            cell.delta.applies,
            cell.delta.coalesces,
            cell.delta.lock_elisions,
            cell.shard
        );
        cells += 1;
    }
    assert!(cells > 0, "{name}: no DOALL scheme was measurable");
    eprintln!("delta smoke: {cells} scheme(s) lock-free and oracle-identical");
}

/// CI's engine perf gate: the md5sum canary on the simulated executor,
/// every applicable scheme at 2 and 4 threads, under the tree-walk and
/// the compiled bytecode engine. Both runs must validate against the
/// sequential oracle and the bytecode clock must be strictly faster —
/// a dispatch regression in the compiled backend fails the build.
fn engine_smoke() {
    let cm = CostModel::default();
    let w = commset_workloads::all()
        .into_iter()
        .find(|w| w.name == "md5sum")
        .expect("md5sum workload exists");
    let (_, seq_world) = w.run_sequential(&cm);
    let mut cells = 0u32;
    for spec in &w.schemes {
        if spec.scheme == Scheme::Sequential {
            continue;
        }
        for t in [2usize, 4] {
            let Some(slow) = sim_time(
                &w,
                spec,
                t,
                WorldMode::Auto,
                Engine::TreeWalk,
                &cm,
                &seq_world,
            ) else {
                continue;
            };
            let fast = sim_time(
                &w,
                spec,
                t,
                WorldMode::Auto,
                Engine::Bytecode,
                &cm,
                &seq_world,
            )
            .unwrap_or_else(|| {
                panic!(
                    "md5sum {} x{t}: bytecode must apply where tree-walk does",
                    spec.label
                )
            });
            assert!(
                fast < slow,
                "md5sum {} x{t}: bytecode sim_time ({fast}) regressed vs tree-walk ({slow})",
                spec.label
            );
            eprintln!(
                "md5sum   {:<26} x{t}: sim tree {:>9}  bytecode {:>9}  ({:.2}x)",
                spec.label,
                slow,
                fast,
                slow as f64 / fast.max(1) as f64
            );
            cells += 1;
        }
    }
    assert!(cells > 0, "md5sum: no scheme was measurable");
    eprintln!("engine smoke: {cells} cell(s), bytecode strictly faster and oracle-identical");
}

/// Usage-error exit: the usage line on stderr, status 2 (so CI can tell
/// a mis-invocation from a perf regression, which exits 1).
fn usage() -> ! {
    eprintln!(
        "usage: perf [--quick] [--iters K] [--out PATH] \
         [--delta-smoke WORKLOAD] [--engine-smoke] \
         [--diff OLD.json [--against NEW.json]]"
    );
    std::process::exit(2);
}

fn read_report(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        usage();
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        usage();
    })
}

/// The `--diff` mode: baseline vs candidate (a saved report, or a fresh
/// in-process quick run). Exits 1 when any column regressed.
fn run_diff(old_path: &str, against: Option<&str>) -> ! {
    let old = read_report(old_path);
    let new = match against {
        Some(path) => read_report(path),
        None => {
            eprintln!("no --against report: running the quick suite as the candidate");
            let (json, _) = run_suite(true, 1);
            Json::parse(&json).expect("in-process report serializes round-trip")
        }
    };
    let report = diff_reports(&old, &new, &DiffConfig::default()).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        usage();
    });
    print!("{}", report.render_text());
    if report.regressions().is_empty() {
        std::process::exit(0);
    }
    std::process::exit(1);
}

fn main() {
    let mut quick = false;
    let mut iters = 3usize;
    let mut out_path = "BENCH_PARALLEL.json".to_string();
    let mut diff_path: Option<String> = None;
    let mut against: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--iters" => {
                iters = match args.next().and_then(|v| v.parse().ok()) {
                    Some(k) => k,
                    None => usage(),
                };
            }
            "--out" => {
                out_path = match args.next() {
                    Some(p) => p,
                    None => usage(),
                }
            }
            "--delta-smoke" => {
                let name = match args.next() {
                    Some(n) => n,
                    None => usage(),
                };
                delta_smoke(&name);
                return;
            }
            "--engine-smoke" => {
                engine_smoke();
                return;
            }
            "--diff" => {
                diff_path = match args.next() {
                    Some(p) => Some(p),
                    None => usage(),
                }
            }
            "--against" => {
                against = match args.next() {
                    Some(p) => Some(p),
                    None => usage(),
                }
            }
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage();
            }
        }
    }
    if let Some(old_path) = &diff_path {
        run_diff(old_path, against.as_deref());
    }
    if against.is_some() {
        eprintln!("error: --against only applies with --diff");
        usage();
    }
    if quick {
        iters = 1;
    }
    let (json, rows) = run_suite(quick, iters);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path} failed: {e}"));
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "wrote {out_path} ({rows} configurations, {iters} iteration(s), \
         host has {host_threads} hardware thread(s))",
    );
}

/// Runs the whole measurement matrix and serializes the report; returns
/// `(json, row count)`. Shared by the default write-a-report mode and
/// `--diff`'s in-process candidate.
fn run_suite(quick: bool, iters: usize) -> (String, usize) {
    let threads: Vec<usize> = if quick { vec![2] } else { vec![1, 2, 4, 8] };
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cm = CostModel::default();

    let mut rows: Vec<Row> = Vec::new();
    for w in commset_workloads::all() {
        let (_, seq_world) = w.run_sequential(&cm);
        for spec in &w.schemes {
            if spec.scheme == Scheme::Sequential {
                continue;
            }
            for &t in &threads {
                let Some(single) = measure(&w, spec, t, WorldMode::SingleLock, iters, &seq_world)
                else {
                    continue;
                };
                let sharded = if w.registry.has_bindings() {
                    measure(&w, spec, t, WorldMode::Sharded, iters, &seq_world)
                } else {
                    None
                };
                let deltas = if w.registry.has_merges() && spec.scheme == Scheme::Doall {
                    measure(&w, spec, t, WorldMode::Deltas, iters, &seq_world)
                } else {
                    None
                };
                let sim = sim_time(
                    &w,
                    spec,
                    t,
                    WorldMode::Auto,
                    Engine::TreeWalk,
                    &cm,
                    &seq_world,
                );
                let sim_bc = sim_time(
                    &w,
                    spec,
                    t,
                    WorldMode::Auto,
                    Engine::Bytecode,
                    &cm,
                    &seq_world,
                );
                let sim_deltas = if deltas.is_some() {
                    sim_time(
                        &w,
                        spec,
                        t,
                        WorldMode::Deltas,
                        Engine::TreeWalk,
                        &cm,
                        &seq_world,
                    )
                } else {
                    None
                };
                let mut extra = match (sim, sim_bc) {
                    (Some(s), Some(b)) => {
                        format!("  [sim {s} bc {b}, {:.2}x]", s as f64 / b.max(1) as f64)
                    }
                    _ => String::new(),
                };
                match (&deltas, sim, sim_deltas) {
                    (Some(d), Some(s), Some(sd)) => {
                        let _ = write!(
                            extra,
                            "  deltas {:>8}us  [sim {s} -> {sd}, {:.2}x]",
                            d.wall_us,
                            s as f64 / sd.max(1) as f64
                        );
                    }
                    (Some(d), _, _) => {
                        let _ = write!(extra, "  deltas {:>8}us", d.wall_us);
                    }
                    _ => {}
                }
                match &sharded {
                    Some(sh) => eprintln!(
                        "{:<8} {:<26} x{t}: single {:>8}us  sharded {:>8}us  (ratio {:.2}){extra}",
                        w.name,
                        spec.label,
                        single.wall_us,
                        sh.wall_us,
                        single.wall_us as f64 / sh.wall_us.max(1) as f64
                    ),
                    None => eprintln!(
                        "{:<8} {:<26} x{t}: single {:>8}us  (no slot bindings){extra}",
                        w.name, spec.label, single.wall_us
                    ),
                }
                rows.push(Row {
                    workload: w.name.to_string(),
                    scheme: spec.label.clone(),
                    threads: t,
                    single,
                    sharded,
                    deltas,
                    sim_time: sim,
                    sim_time_bytecode: sim_bc,
                    sim_time_deltas: sim_deltas,
                });
            }
        }
    }

    // Wall at one thread per (workload, scheme, mode), for speedups.
    #[allow(clippy::type_complexity)]
    let mut base: BTreeMap<(String, String), (u128, Option<u128>, Option<u128>)> = BTreeMap::new();
    for r in &rows {
        if r.threads == 1 {
            base.insert(
                (r.workload.clone(), r.scheme.clone()),
                (
                    r.single.wall_us,
                    r.sharded.as_ref().map(|c| c.wall_us),
                    r.deltas.as_ref().map(|c| c.wall_us),
                ),
            );
        }
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"generated_by\": \"commset-bench perf\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"iterations\": {iters},");
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(
        json,
        "  \"threads\": [{}],",
        threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let key = (r.workload.clone(), r.scheme.clone());
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"workload\": \"{}\",", r.workload);
        let _ = writeln!(json, "      \"scheme\": \"{}\",", r.scheme);
        let _ = writeln!(json, "      \"threads\": {},", r.threads);
        let _ = writeln!(json, "      \"single_lock\": {},", cell_json(&r.single));
        match &r.sharded {
            Some(sh) => {
                let ratio = r.single.wall_us as f64 / sh.wall_us.max(1) as f64;
                let _ = writeln!(json, "      \"sharded\": {},", cell_json(sh));
                let _ = writeln!(json, "      \"sharded_over_single\": {ratio:.4},");
            }
            None => {
                let _ = writeln!(json, "      \"sharded\": null,");
                let _ = writeln!(json, "      \"sharded_over_single\": null,");
            }
        }
        match &r.deltas {
            Some(d) => {
                let ratio = r.single.wall_us as f64 / d.wall_us.max(1) as f64;
                let _ = writeln!(json, "      \"deltas\": {},", cell_json(d));
                let _ = writeln!(json, "      \"deltas_over_single\": {ratio:.4},");
            }
            None => {
                let _ = writeln!(json, "      \"deltas\": null,");
                let _ = writeln!(json, "      \"deltas_over_single\": null,");
            }
        }
        match r.sim_time {
            Some(s) => {
                let _ = writeln!(json, "      \"sim_time\": {s},");
            }
            None => {
                let _ = writeln!(json, "      \"sim_time\": null,");
            }
        }
        match (r.sim_time, r.sim_time_bytecode) {
            (Some(s), Some(b)) => {
                let v = s as f64 / b.max(1) as f64;
                let _ = writeln!(json, "      \"sim_time_bytecode\": {b},");
                let _ = writeln!(json, "      \"sim_bytecode_speedup\": {v:.4},");
            }
            _ => {
                let _ = writeln!(json, "      \"sim_time_bytecode\": null,");
                let _ = writeln!(json, "      \"sim_bytecode_speedup\": null,");
            }
        }
        match (r.sim_time, r.sim_time_deltas) {
            (Some(s), Some(sd)) => {
                let v = s as f64 / sd.max(1) as f64;
                let _ = writeln!(json, "      \"sim_time_deltas\": {sd},");
                let _ = writeln!(json, "      \"sim_deltas_over_base\": {v:.4},");
            }
            _ => {
                let _ = writeln!(json, "      \"sim_time_deltas\": null,");
                let _ = writeln!(json, "      \"sim_deltas_over_base\": null,");
            }
        }
        match base.get(&key) {
            Some(&(single1, sharded1, deltas1)) => {
                let ss = single1 as f64 / r.single.wall_us.max(1) as f64;
                let _ = writeln!(json, "      \"speedup_single\": {ss:.4},");
                match (sharded1, &r.sharded) {
                    (Some(b), Some(sh)) => {
                        let v = b as f64 / sh.wall_us.max(1) as f64;
                        let _ = writeln!(json, "      \"speedup_sharded\": {v:.4},");
                    }
                    _ => {
                        let _ = writeln!(json, "      \"speedup_sharded\": null,");
                    }
                }
                match (deltas1, &r.deltas) {
                    (Some(b), Some(d)) => {
                        let v = b as f64 / d.wall_us.max(1) as f64;
                        let _ = writeln!(json, "      \"speedup_deltas\": {v:.4}");
                    }
                    _ => {
                        let _ = writeln!(json, "      \"speedup_deltas\": null");
                    }
                }
            }
            None => {
                let _ = writeln!(json, "      \"speedup_single\": null,");
                let _ = writeln!(json, "      \"speedup_sharded\": null,");
                let _ = writeln!(json, "      \"speedup_deltas\": null");
            }
        }
        let _ = writeln!(json, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    (json, rows.len())
}
