//! Regenerates Table 1: the programming-model comparison matrix.
//!
//! Run: `cargo run -p commset-bench --bin table1`

fn main() {
    println!("Table 1: COMMSET vs prior semantic-commutativity systems\n");
    print!("{}", commset_bench::table1::render());
    println!("\n(The CommSet column claims are enforced by this repository:");
    println!(" predication, commuting blocks, group sets and automatic");
    println!(" concurrency control are all exercised by the workloads.)");
}
