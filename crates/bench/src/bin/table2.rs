//! Regenerates Table 2: per-program annotations, SLOC, applicable
//! transforms, best speedup and scheme on eight (virtual) cores.
//!
//! Run: `cargo run -p commset-bench --bin table2`

use commset_sim::CostModel;

fn main() {
    let cm = CostModel::default();
    println!("Table 2: evaluated programs (8 simulated cores)\n");
    println!(
        "{:<10} {:<10} {:>5} {:>6} {:>6}  {:<22} {:>7}  {:<22} {:>7}",
        "Program", "Origin", "Exec", "#Ann", "SLOC", "Transforms", "Best", "Best scheme", "Paper"
    );
    let mut best_all = Vec::new();
    for w in commset_workloads::all() {
        let a = w.analyze(0).expect("workload analyzes");
        let transforms: Vec<String> = w
            .compiler()
            .applicable_schemes(&a, 8)
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (best, label) = w.best_commset(8, &cm).expect("some scheme applies");
        best_all.push(best);
        println!(
            "{:<10} {:<10} {:>5} {:>6} {:>6}  {:<22} {:>6.2}x  {:<22} {:>6.2}x",
            w.name,
            w.origin,
            w.exec_fraction,
            w.annotation_count(),
            w.sloc(),
            transforms.join(", "),
            best,
            label,
            w.paper.best_speedup,
        );
    }
    let geo = commset_bench::geomean(&best_all);
    println!("\ngeomean best COMMSET speedup: {geo:.2}x (paper: 5.7x)");
}
