//! The noise-aware perf regression differ behind `perf --diff`.
//!
//! Compares two `BENCH_PARALLEL.json` reports cell-by-cell — cells are
//! matched on `(workload, scheme, threads)`, so a quick-mode run (2
//! threads only) diffs cleanly against the committed full matrix. Two
//! tolerance regimes, because the report carries two kinds of numbers:
//!
//! * **simulator columns** (`sim_time`, `sim_time_bytecode`,
//!   `sim_time_deltas`) are deterministic logical ticks — any drift is a
//!   real behavior change, so the band is tight (5% relative + a small
//!   absolute floor against integer jitter on tiny cells);
//! * **wall-clock columns** (`*.wall_us`) are host- and load-dependent —
//!   a regression needs *both* a large factor (1.75x) and a large
//!   absolute delta (10ms), so laptop noise and CI-runner variance don't
//!   page anyone.
//!
//! A cell present in one report but not the other is counted and
//! narrated but is never a failure: quick mode legitimately covers a
//! subset of the committed matrix.

use commset_interp::bundle::Json;
use std::fmt::Write as _;

/// Tolerance knobs. The defaults are the CI gate's contract: an injected
/// >=20% simulator slowdown must trip, a self-diff must be silent.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Relative band for deterministic simulator columns (0.05 = 5%).
    pub sim_rel: f64,
    /// Absolute tick floor under which simulator drift is ignored.
    pub sim_abs: u64,
    /// Factor a wall-clock column must grow by to count as regressed.
    pub wall_factor: f64,
    /// Absolute microsecond floor a wall-clock column must also exceed.
    pub wall_abs_us: u64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            sim_rel: 0.05,
            sim_abs: 50,
            wall_factor: 1.75,
            wall_abs_us: 10_000,
        }
    }
}

/// One compared column of one matched cell.
#[derive(Debug, Clone)]
pub struct ColumnDiff {
    /// Workload name.
    pub workload: String,
    /// Scheme label.
    pub scheme: String,
    /// Thread count.
    pub threads: u64,
    /// Column path, e.g. `sim_time` or `sharded.wall_us`.
    pub column: String,
    /// Baseline value.
    pub old: u64,
    /// Candidate value.
    pub new: u64,
    /// `new / old` (1.0 when the baseline is 0).
    pub ratio: f64,
    /// True when the column exceeded its tolerance regime.
    pub regressed: bool,
}

/// The outcome of diffing two reports.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Cells matched on `(workload, scheme, threads)`.
    pub matched: usize,
    /// Cells only in the baseline (e.g. full matrix vs quick run).
    pub only_old: usize,
    /// Cells only in the candidate.
    pub only_new: usize,
    /// Every compared column, in baseline order.
    pub columns: Vec<ColumnDiff>,
}

impl DiffReport {
    /// The columns that exceeded tolerance.
    pub fn regressions(&self) -> Vec<&ColumnDiff> {
        self.columns.iter().filter(|c| c.regressed).collect()
    }

    /// Renders the comparison: a row per regression (or a clean bill),
    /// then the match/coverage summary.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let regs = self.regressions();
        if regs.is_empty() {
            s.push_str("perf diff: no regressions\n");
        } else {
            let _ = writeln!(
                s,
                "{:<10} {:<26} {:>3}  {:<22} {:>12} {:>12} {:>7}",
                "workload", "scheme", "thr", "column", "old", "new", "ratio"
            );
            for c in &regs {
                let _ = writeln!(
                    s,
                    "{:<10} {:<26} {:>3}  {:<22} {:>12} {:>12} {:>6.2}x  REGRESSED",
                    c.workload, c.scheme, c.threads, c.column, c.old, c.new, c.ratio
                );
            }
        }
        let _ = writeln!(
            s,
            "compared {} cell(s), {} column(s); {} regression(s); \
             {} baseline-only, {} candidate-only cell(s)",
            self.matched,
            self.columns.len(),
            regs.len(),
            self.only_old,
            self.only_new
        );
        s
    }
}

fn cell_key(r: &Json) -> Option<(String, String, u64)> {
    Some((
        r.get("workload")?.as_str()?.to_string(),
        r.get("scheme")?.as_str()?.to_string(),
        r.get("threads")?.as_u64()?,
    ))
}

/// Walks a dotted column path (`sharded.wall_us`) down nested objects.
fn column_value(r: &Json, path: &str) -> Option<u64> {
    let mut v = r;
    for seg in path.split('.') {
        v = v.get(seg)?;
    }
    v.as_u64()
}

/// Simulator columns: deterministic ticks, tight band.
const SIM_COLUMNS: [&str; 3] = ["sim_time", "sim_time_bytecode", "sim_time_deltas"];
/// Wall-clock columns: noisy, factor + absolute-floor band.
const WALL_COLUMNS: [&str; 3] = ["single_lock.wall_us", "sharded.wall_us", "deltas.wall_us"];

/// Diffs candidate `new` against baseline `old` (both the JSON of a
/// `perf` report) under `cfg`.
///
/// # Errors
///
/// Returns a message when either report lacks the `results` array — a
/// wrong or truncated file, not a perf report.
pub fn diff_reports(old: &Json, new: &Json, cfg: &DiffConfig) -> Result<DiffReport, String> {
    let old_results = old
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("baseline has no results[] — not a perf report")?;
    let new_results = new
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("candidate has no results[] — not a perf report")?;
    let mut report = DiffReport::default();
    let mut matched_new = vec![false; new_results.len()];
    for old_cell in old_results {
        let Some(key) = cell_key(old_cell) else {
            continue;
        };
        let found = new_results
            .iter()
            .enumerate()
            .find(|(_, n)| cell_key(n).as_ref() == Some(&key));
        let Some((idx, new_cell)) = found else {
            report.only_old += 1;
            continue;
        };
        matched_new[idx] = true;
        report.matched += 1;
        for (path, sim) in SIM_COLUMNS
            .iter()
            .map(|p| (*p, true))
            .chain(WALL_COLUMNS.iter().map(|p| (*p, false)))
        {
            let (Some(o), Some(n)) = (column_value(old_cell, path), column_value(new_cell, path))
            else {
                continue; // column absent (null) on either side
            };
            let ratio = if o == 0 { 1.0 } else { n as f64 / o as f64 };
            let grew = n.saturating_sub(o);
            let regressed = if sim {
                grew > cfg.sim_abs.max((o as f64 * cfg.sim_rel) as u64)
            } else {
                n as f64 > o as f64 * cfg.wall_factor && grew > cfg.wall_abs_us
            };
            report.columns.push(ColumnDiff {
                workload: key.0.clone(),
                scheme: key.1.clone(),
                threads: key.2,
                column: path.to_string(),
                old: o,
                new: n,
                ratio,
                regressed,
            });
        }
    }
    report.only_new = matched_new.iter().filter(|m| !**m).count();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal two-cell perf report in the real serialization shape.
    fn sample(sim_md5: u64, wall_md5: u64) -> String {
        format!(
            r#"{{
  "generated_by": "commset-bench perf",
  "results": [
    {{
      "workload": "md5sum", "scheme": "Comm-DOALL (Lib)", "threads": 2,
      "single_lock": {{"wall_us": {wall_md5}, "queue_full_spins": 0}},
      "sharded": {{"wall_us": 1500}},
      "deltas": null,
      "sim_time": {sim_md5},
      "sim_time_bytecode": 150000,
      "sim_time_deltas": null
    }},
    {{
      "workload": "grep", "scheme": "Comm-PS-DSWP", "threads": 2,
      "single_lock": {{"wall_us": 900}},
      "sharded": null,
      "deltas": null,
      "sim_time": 70000,
      "sim_time_bytecode": null,
      "sim_time_deltas": null
    }}
  ]
}}"#
        )
    }

    fn parse(s: &str) -> Json {
        Json::parse(s).expect("sample parses")
    }

    #[test]
    fn self_diff_is_clean() {
        let a = parse(&sample(450_000, 1400));
        let d = diff_reports(&a, &a, &DiffConfig::default()).unwrap();
        assert_eq!(d.matched, 2);
        assert!(d.regressions().is_empty(), "{}", d.render_text());
        assert_eq!(d.only_old + d.only_new, 0);
        assert!(d.render_text().contains("no regressions"));
    }

    #[test]
    fn injected_twenty_percent_sim_slowdown_is_flagged() {
        let old = parse(&sample(450_000, 1400));
        let new = parse(&sample(540_000, 1400)); // +20% sim ticks
        let d = diff_reports(&old, &new, &DiffConfig::default()).unwrap();
        let regs = d.regressions();
        assert_eq!(regs.len(), 1, "{}", d.render_text());
        assert_eq!(regs[0].column, "sim_time");
        assert!((regs[0].ratio - 1.2).abs() < 1e-9);
        assert!(d.render_text().contains("REGRESSED"));
    }

    #[test]
    fn small_sim_drift_within_band_passes() {
        let old = parse(&sample(450_000, 1400));
        let new = parse(&sample(460_000, 1400)); // +2.2%
        let d = diff_reports(&old, &new, &DiffConfig::default()).unwrap();
        assert!(d.regressions().is_empty(), "{}", d.render_text());
    }

    #[test]
    fn wall_noise_needs_factor_and_absolute_floor() {
        // 3x growth but only ~3ms absolute: noise on a fast cell.
        let old = parse(&sample(450_000, 1400));
        let new = parse(&sample(450_000, 4400));
        let d = diff_reports(&old, &new, &DiffConfig::default()).unwrap();
        assert!(d.regressions().is_empty(), "{}", d.render_text());
        // 3x growth AND 2.8 seconds absolute: a real wall regression.
        let new = parse(&sample(450_000, 2_800_000));
        let d = diff_reports(&old, &new, &DiffConfig::default()).unwrap();
        let regs = d.regressions();
        assert_eq!(regs.len(), 1, "{}", d.render_text());
        assert_eq!(regs[0].column, "single_lock.wall_us");
    }

    #[test]
    fn unmatched_cells_are_counted_not_failed() {
        let old = parse(&sample(450_000, 1400));
        // Candidate covers only one of the two baseline cells.
        let new = parse(
            r#"{"results": [
              {"workload": "md5sum", "scheme": "Comm-DOALL (Lib)", "threads": 2,
               "single_lock": {"wall_us": 1400}, "sim_time": 450000}
            ]}"#,
        );
        let d = diff_reports(&old, &new, &DiffConfig::default()).unwrap();
        assert_eq!(d.matched, 1);
        assert_eq!(d.only_old, 1);
        assert_eq!(d.only_new, 0);
        assert!(d.regressions().is_empty());
    }

    #[test]
    fn non_reports_are_errors() {
        let junk = parse(r#"{"hello": 1}"#);
        let ok = parse(&sample(1, 1));
        assert!(diff_reports(&junk, &ok, &DiffConfig::default())
            .unwrap_err()
            .contains("baseline"));
        assert!(diff_reports(&ok, &junk, &DiffConfig::default())
            .unwrap_err()
            .contains("candidate"));
    }

    #[test]
    fn committed_baseline_self_diffs_clean() {
        // The repo's committed BENCH_PARALLEL.json must parse as a perf
        // report and self-diff with zero regressions.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PARALLEL.json");
        let text = std::fs::read_to_string(path).expect("committed baseline exists");
        let v = Json::parse(&text).expect("committed baseline parses");
        let d = diff_reports(&v, &v, &DiffConfig::default()).unwrap();
        assert!(d.matched > 0);
        assert!(d.regressions().is_empty(), "{}", d.render_text());
    }
}
