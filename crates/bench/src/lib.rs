//! # commset-bench
//!
//! The evaluation harness: regenerates every table and figure of the
//! paper's evaluation (§5) from this reproduction.
//!
//! | artifact | binary | paper content |
//! |----------|--------|---------------|
//! | Table 1  | `table1`  | feature matrix vs Jade/Galois/DPJ/Paralax/VELOCITY |
//! | Table 2  | `table2`  | per-program annotations, SLOC, transforms, best speedup |
//! | Figure 3 | `figure3` | md5sum schedule timelines (Seq / PS-DSWP / DOALL) |
//! | Figure 6 | `figure6` | speedup-vs-threads series per program + geomean |
//!
//! Benches (`cargo bench`, self-harnessed — the workspace carries no
//! external dependencies) measure the compiler itself (`compiler_phases`)
//! and the per-figure regeneration cost (`figures`).

pub mod diff;
pub mod table1;
pub mod timing;

use commset_sim::CostModel;
use commset_workloads::Workload;

/// Threads evaluated by Figure 6 (the paper's x-axis, 2..=8 plus the
/// 1-thread baseline defined as 1.0).
pub const THREADS: [usize; 7] = [2, 3, 4, 5, 6, 7, 8];

/// One Figure 6 panel: the speedups of every scheme series of a workload.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Program name.
    pub name: &'static str,
    /// (series label, speedups at [`THREADS`]; `None` = inapplicable).
    pub series: Vec<(String, Vec<Option<f64>>)>,
    /// Best COMMSET speedup at 8 threads.
    pub best8: f64,
    /// Best COMMSET scheme label at 8 threads.
    pub best8_label: String,
    /// Best non-COMMSET speedup at 8 threads.
    pub noncomm8: f64,
}

/// Runs one workload's full Figure 6 panel.
pub fn run_panel(w: &Workload, cm: &CostModel) -> Panel {
    let series = w
        .schemes
        .iter()
        .map(|spec| {
            let curve = THREADS
                .iter()
                .map(|&t| w.speedup(spec, t, cm))
                .collect::<Vec<_>>();
            (spec.label.clone(), curve)
        })
        .collect();
    let (best8, best8_label) = w
        .best_commset(8, cm)
        .unwrap_or((1.0, "Sequential".to_string()));
    let (noncomm8, _) = w.best_noncomm(8, cm);
    Panel {
        name: w.name,
        series,
        best8,
        best8_label,
        noncomm8,
    }
}

/// Formats one speedup cell.
pub fn cell(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:5.2}"),
        None => "  n/a".to_string(),
    }
}

/// Geometric mean.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let product: f64 = values.iter().product();
    product.powf(1.0 / values.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_uniform_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn cell_formats() {
        assert_eq!(cell(Some(7.6)), " 7.60");
        assert_eq!(cell(None), "  n/a");
    }
}
