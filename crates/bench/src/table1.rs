//! Table 1: the comparison between COMMSET and the prior semantic
//! commutativity systems, encoded as data so the `table1` binary can
//! render it (and tests can sanity-check the claims the implementation
//! must uphold for the COMMSET row).

/// One system's row in Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemRow {
    /// System name.
    pub name: &'static str,
    /// Expressiveness: commutativity predication supported.
    pub predication: bool,
    /// Expressiveness: commuting *blocks* (not just interfaces).
    pub commuting_blocks: bool,
    /// Expressiveness: group commutativity (linear specification).
    pub group_commutativity: bool,
    /// Requires additional parallelism extensions beyond commutativity.
    pub extra_extensions: bool,
    /// Parallelism forms supported: data.
    pub data_parallelism: bool,
    /// Parallelism forms supported: pipeline.
    pub pipeline_parallelism: bool,
    /// Concurrency control chosen automatically.
    pub auto_concurrency_control: bool,
    /// Parallelization driven by (Runtime / Programmer / Compiler).
    pub driver: &'static str,
    /// Optimistic or speculative parallelism in the implementation.
    pub speculative: bool,
}

/// The rows of Table 1, in the paper's order.
pub fn rows() -> Vec<SystemRow> {
    vec![
        SystemRow {
            name: "Jade",
            predication: false,
            commuting_blocks: false,
            group_commutativity: false,
            extra_extensions: true,
            data_parallelism: true,
            pipeline_parallelism: true,
            auto_concurrency_control: true,
            driver: "Runtime",
            speculative: false,
        },
        SystemRow {
            name: "Galois",
            predication: true,
            commuting_blocks: false,
            group_commutativity: false,
            extra_extensions: true,
            data_parallelism: true,
            pipeline_parallelism: false,
            auto_concurrency_control: true,
            driver: "Runtime",
            speculative: true,
        },
        SystemRow {
            name: "DPJ",
            predication: false,
            commuting_blocks: false,
            group_commutativity: false,
            extra_extensions: true,
            data_parallelism: true,
            pipeline_parallelism: false,
            auto_concurrency_control: false,
            driver: "Programmer",
            speculative: false,
        },
        SystemRow {
            name: "Paralax",
            predication: false,
            commuting_blocks: false,
            group_commutativity: false,
            extra_extensions: false,
            data_parallelism: false,
            pipeline_parallelism: true,
            auto_concurrency_control: true,
            driver: "Compiler",
            speculative: false,
        },
        SystemRow {
            name: "VELOCITY",
            predication: false,
            commuting_blocks: false,
            group_commutativity: false,
            extra_extensions: false,
            data_parallelism: false,
            pipeline_parallelism: true,
            auto_concurrency_control: true,
            driver: "Compiler",
            speculative: true,
        },
        SystemRow {
            name: "CommSet",
            predication: true,
            commuting_blocks: true,
            group_commutativity: true,
            extra_extensions: false,
            data_parallelism: true,
            pipeline_parallelism: true,
            auto_concurrency_control: true,
            driver: "Compiler",
            speculative: false,
        },
    ]
}

fn mark(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "-"
    }
}

/// Renders the table.
pub fn render() -> String {
    let mut out = String::new();
    out.push_str(
        "System    | Pred | Blocks | Group | NoExtraExt | Data | Pipeline | AutoSync | Driver     | Spec\n",
    );
    out.push_str(
        "----------+------+--------+-------+------------+------+----------+----------+------------+-----\n",
    );
    for r in rows() {
        out.push_str(&format!(
            "{:<9} | {:<4} | {:<6} | {:<5} | {:<10} | {:<4} | {:<8} | {:<8} | {:<10} | {}\n",
            r.name,
            mark(r.predication),
            mark(r.commuting_blocks),
            mark(r.group_commutativity),
            mark(!r.extra_extensions),
            mark(r.data_parallelism),
            mark(r.pipeline_parallelism),
            mark(r.auto_concurrency_control),
            r.driver,
            mark(r.speculative),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commset_row_claims_every_advantage() {
        let commset = rows().into_iter().find(|r| r.name == "CommSet").unwrap();
        assert!(commset.predication);
        assert!(commset.commuting_blocks);
        assert!(commset.group_commutativity);
        assert!(!commset.extra_extensions);
        assert!(commset.data_parallelism && commset.pipeline_parallelism);
        assert!(commset.auto_concurrency_control);
        assert_eq!(commset.driver, "Compiler");
    }

    #[test]
    fn only_commset_offers_blocks_and_groups() {
        for r in rows() {
            if r.name != "CommSet" {
                assert!(!r.commuting_blocks, "{}", r.name);
                assert!(!r.group_commutativity, "{}", r.name);
            }
        }
    }

    #[test]
    fn render_contains_every_system() {
        let s = render();
        for name in ["Jade", "Galois", "DPJ", "Paralax", "VELOCITY", "CommSet"] {
            assert!(s.contains(name));
        }
    }
}
