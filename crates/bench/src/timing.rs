//! A minimal self-contained benchmark harness.
//!
//! The workspace builds on air-gapped hosts with no external crates, so
//! `cargo bench` targets use this instead of criterion: warm up, time a
//! fixed number of iterations, report min/median/mean wall-clock per
//! iteration. Numbers are indicative, not statistically rigorous — the
//! evaluation artifacts themselves come from the deterministic simulator,
//! not from these wall-clock measurements.

use std::time::{Duration, Instant};

/// Times `iters` runs of `f` after `warmup` unmeasured runs and prints a
/// one-line summary under `name`.
pub fn bench<R>(name: &str, warmup: u32, iters: u32, mut f: impl FnMut() -> R) {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples: Vec<Duration> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed());
    }
    samples.sort();
    let min = samples.first().copied().unwrap_or_default();
    let median = samples.get(samples.len() / 2).copied().unwrap_or_default();
    let total: Duration = samples.iter().sum();
    let mean = total.checked_div(iters.max(1)).unwrap_or_default();
    println!(
        "{name:<40} min {:>10.1?}  median {:>10.1?}  mean {:>10.1?}  ({iters} iters)",
        min, median, mean
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts() {
        let mut calls = 0u32;
        bench("noop", 2, 5, || calls += 1);
        assert_eq!(calls, 7);
    }
}
