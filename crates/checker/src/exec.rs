//! The controlled (schedule-driven) executor.
//!
//! Replays a *transformed* parallel program with the scheduling decisions
//! taken by an explicit [`Scheduler`] instead of a clock or the OS: each
//! worker runs until its next **visible event** — the entry of an outlined
//! commutative region (`__commset_region_*`), a blocking queue pop, or
//! (under [`ModelConfig::pause_at_world_calls`]) a bare world-intrinsic
//! call, the schedule-space analogue of a shard acquisition in the real
//! runtime's sharded world — and the scheduler picks which paused worker
//! executes next. A chosen
//! region runs *atomically* (the paper's synchronization already
//! guarantees mutual exclusion of same-set members; the checker varies
//! only their *order*). Lock and transaction intrinsics are therefore
//! no-ops here; pipeline queues are real FIFOs.
//!
//! The run is a pure function of `(module, plan, scheduler, model config)`
//! — same inputs, same interleaving, same final world.

use crate::model::{ModelConfig, ModelWorld};
use commset_interp::globals::PlainGlobals;
use commset_interp::vm::GlobalMem;
use commset_interp::{prepare_engine, EngineVm, ExecError, StepOutcome};
use commset_ir::Module;
use commset_runtime::rng::SplitMix64;
use commset_runtime::Value;
use commset_transform::ParallelPlan;
use std::collections::{HashMap, VecDeque};

/// A failure of a controlled run.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckError {
    /// The VM reported a dynamic error.
    Exec(String),
    /// No worker can advance but not all are done.
    Deadlock {
        /// Human-readable per-worker states.
        states: Vec<String>,
    },
    /// The step budget was exhausted (runaway schedule).
    BudgetExhausted,
    /// A queue pop blocked *inside* a commutative region — the controlled
    /// executor cannot keep the region atomic.
    PopInsideRegion {
        /// The region function.
        func: String,
    },
    /// The program shape is unsupported (nested sections, unknown queue).
    Unsupported(String),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Exec(e) => write!(f, "execution error: {e}"),
            CheckError::Deadlock { states } => {
                write!(f, "schedule deadlocked: [{}]", states.join(", "))
            }
            CheckError::BudgetExhausted => write!(f, "step budget exhausted"),
            CheckError::PopInsideRegion { func } => {
                write!(f, "queue pop blocked inside region {func}")
            }
            CheckError::Unsupported(s) => write!(f, "unsupported: {s}"),
        }
    }
}

impl From<ExecError> for CheckError {
    fn from(e: ExecError) -> Self {
        CheckError::Exec(e.to_string())
    }
}

/// One scheduled region execution (the interleaving log's unit).
#[derive(Debug, Clone, PartialEq)]
pub struct RegionExec {
    /// Worker index within the section.
    pub worker: usize,
    /// The region function.
    pub func: String,
    /// The region instance arguments.
    pub args: Vec<Value>,
}

impl std::fmt::Display for RegionExec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let args = self
            .args
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        write!(f, "[w{}] {}({args})", self.worker, self.func)
    }
}

/// Renders an interleaving, one region per line.
pub fn render_interleaving(log: &[RegionExec]) -> String {
    log.iter().map(|r| format!("  {r}\n")).collect()
}

/// Final state of a controlled run.
#[derive(Debug, Clone)]
pub struct ControlledOutcome {
    /// The abstract world after execution.
    pub world: ModelWorld,
    /// Final scalar globals (name, value), `__`-prefixed names excluded.
    pub globals: Vec<(String, Value)>,
    /// The region interleaving that was executed.
    pub log: Vec<RegionExec>,
    /// VM steps spent (against the step budget) — the exploration
    /// throughput denominator the metrics registry reports.
    pub steps: u64,
}

/// A schedule: picks which paused worker advances next.
pub trait Scheduler {
    /// The schedule's stable, human-readable name.
    fn name(&self) -> String;
    /// Picks one element of `ready` (worker ids, ascending). The default
    /// contract: must return a member of `ready`.
    fn pick(&mut self, ready: &[usize]) -> usize;
}

/// Always the lowest-numbered ready worker (runs whole workers in order).
pub struct Canonical;
impl Scheduler for Canonical {
    fn name(&self) -> String {
        "canonical".into()
    }
    fn pick(&mut self, ready: &[usize]) -> usize {
        ready[0]
    }
}

/// Always the highest-numbered ready worker.
pub struct Reverse;
impl Scheduler for Reverse {
    fn name(&self) -> String {
        "reverse".into()
    }
    fn pick(&mut self, ready: &[usize]) -> usize {
        *ready.last().expect("nonempty ready set")
    }
}

/// Cycles through workers, one region each.
pub struct RoundRobin {
    next: usize,
}
impl RoundRobin {
    /// Starts at worker 0.
    pub fn new() -> Self {
        RoundRobin { next: 0 }
    }
}
impl Default for RoundRobin {
    fn default() -> Self {
        RoundRobin::new()
    }
}
impl Scheduler for RoundRobin {
    fn name(&self) -> String {
        "round-robin".into()
    }
    fn pick(&mut self, ready: &[usize]) -> usize {
        let w = ready
            .iter()
            .copied()
            .find(|w| *w >= self.next)
            .unwrap_or(ready[0]);
        self.next = w + 1;
        w
    }
}

/// Holds back one worker until the others have executed `hold` regions —
/// the systematic pair-flip: it reorders the victim's k-th same-set
/// instance after its neighbors'.
pub struct Delay {
    victim: usize,
    hold: usize,
    executed_others: usize,
}
impl Delay {
    /// Delay `victim`'s first region until `hold` other regions ran.
    pub fn new(victim: usize, hold: usize) -> Self {
        Delay {
            victim,
            hold,
            executed_others: 0,
        }
    }
}
impl Scheduler for Delay {
    fn name(&self) -> String {
        format!("delay(w{},{})", self.victim, self.hold)
    }
    fn pick(&mut self, ready: &[usize]) -> usize {
        let non_victim = ready.iter().copied().find(|w| *w != self.victim);
        match non_victim {
            Some(w) if self.executed_others < self.hold => {
                self.executed_others += 1;
                w
            }
            _ => {
                if ready.contains(&self.victim) {
                    self.victim
                } else {
                    ready[0]
                }
            }
        }
    }
}

/// Wraps a scheduler and records every decision it takes — the raw
/// material for the counterexample shrinker and the schedule-diversity
/// guard.
pub struct Recording<'a> {
    inner: &'a mut dyn Scheduler,
    /// The chosen worker at each decision point, in order.
    pub trace: Vec<usize>,
}
impl<'a> Recording<'a> {
    /// Records `inner`'s picks.
    pub fn new(inner: &'a mut dyn Scheduler) -> Self {
        Recording {
            inner,
            trace: Vec::new(),
        }
    }
}
impl Scheduler for Recording<'_> {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn pick(&mut self, ready: &[usize]) -> usize {
        let c = self.inner.pick(ready);
        self.trace.push(c);
        c
    }
}

/// Replays a recorded decision trace. `None` entries (and positions past
/// the trace, and recorded picks that are no longer ready) fall back to
/// the canonical choice — so a partially-canonicalized trace is always a
/// valid schedule. This is the shrinker's search space: flip recorded
/// decisions back to canonical one at a time and keep the flips that
/// preserve the violation.
pub struct Replay {
    decisions: Vec<Option<usize>>,
    pos: usize,
}
impl Replay {
    /// Replays `decisions`; `None` means "canonical choice here".
    pub fn new(decisions: Vec<Option<usize>>) -> Self {
        Replay { decisions, pos: 0 }
    }
}
impl Scheduler for Replay {
    fn name(&self) -> String {
        let flips = self.decisions.iter().flatten().count();
        format!("replay({flips} pinned)")
    }
    fn pick(&mut self, ready: &[usize]) -> usize {
        let want = self.decisions.get(self.pos).copied().flatten();
        self.pos += 1;
        match want {
            Some(w) if ready.contains(&w) => w,
            _ => ready[0],
        }
    }
}

/// Seeded random choice — the bounded "everything else" of the budget.
pub struct Chaos {
    rng: SplitMix64,
    seed: u64,
}
impl Chaos {
    /// A chaos schedule with the given seed.
    pub fn new(seed: u64) -> Self {
        Chaos {
            rng: SplitMix64::new(seed),
            seed,
        }
    }
}
impl Scheduler for Chaos {
    fn name(&self) -> String {
        format!("chaos({:#x})", self.seed)
    }
    fn pick(&mut self, ready: &[usize]) -> usize {
        ready[self.rng.next_below(ready.len() as u64) as usize]
    }
}

#[derive(Debug, Clone, PartialEq)]
enum WState {
    /// Paused at the entry of a region (frame pushed, body unexecuted).
    AtRegion {
        func: String,
        args: Vec<Value>,
    },
    /// Paused at a bare world-intrinsic call (shard-acquisition point);
    /// only reachable under [`ModelConfig::pause_at_world_calls`].
    AtWorldCall {
        name: String,
        args: Vec<Value>,
    },
    /// Blocked popping queue `q` (by plan index).
    BlockedPop(usize),
    Done,
}

struct CWorker<'m> {
    vm: EngineVm<'m>,
    state: WState,
}

struct Machine<'m> {
    module: &'m Module,
    world: ModelWorld,
    budget: u64,
    queues: Vec<VecDeque<u64>>,
    queue_index: HashMap<i64, usize>,
    /// Pause workers at bare world calls (shard-acquisition points).
    pause_world: bool,
}

impl<'m> Machine<'m> {
    fn spend(&mut self) -> Result<(), CheckError> {
        if self.budget == 0 {
            return Err(CheckError::BudgetExhausted);
        }
        self.budget -= 1;
        Ok(())
    }

    /// Steps `vm` until its next pause point. `in_region` makes queue-pop
    /// blocking an error (regions must stay atomic) and returns at region
    /// *exit* instead of entry.
    fn run_vm(
        &mut self,
        vm: &mut EngineVm<'_>,
        globals: &mut PlainGlobals,
        in_region: bool,
        region_func: &str,
    ) -> Result<WState, CheckError> {
        // Copy the module reference out so intrinsic names can stay
        // borrowed `&str` across the `self.world` calls below.
        let module = self.module;
        loop {
            self.spend()?;
            match vm.step(globals)? {
                StepOutcome::Ran { .. } => {
                    for ev in vm.drain_call_events() {
                        if !in_region && ev.enter && ev.depth == 1 {
                            return Ok(WState::AtRegion {
                                func: ev.func,
                                args: ev.args,
                            });
                        }
                    }
                    if in_region && vm.watched_depth() == 0 {
                        return Ok(WState::AtRegion {
                            // Placeholder — caller continues to next pause.
                            func: String::new(),
                            args: Vec::new(),
                        });
                    }
                }
                StepOutcome::Finished(_) => return Ok(WState::Done),
                StepOutcome::Special(p) => {
                    let name = module.intrinsics.name(p.intrinsic.0 as usize);
                    match name {
                        "__lock_acquire" | "__lock_release" | "__tx_begin" | "__tx_commit" => {
                            // Regions execute atomically: synchronization
                            // is vacuous under the controlled scheduler.
                            vm.resolve_special(Value::Int(0));
                        }
                        "__q_push" | "__q_push_f" => {
                            let q = self.qidx(p.args[0].as_int())?;
                            self.queues[q].push_back(p.args[1].to_bits());
                            vm.resolve_special(Value::Int(0));
                        }
                        "__q_pop" | "__q_pop_f" => {
                            let q = self.qidx(p.args[0].as_int())?;
                            match self.queues[q].pop_front() {
                                Some(bits) => {
                                    vm.resolve_special(Value::from_bits(bits, name == "__q_pop_f"));
                                }
                                None => {
                                    if in_region {
                                        return Err(CheckError::PopInsideRegion {
                                            func: region_func.to_string(),
                                        });
                                    }
                                    vm.retry_special_later();
                                    return Ok(WState::BlockedPop(q));
                                }
                            }
                        }
                        "__par_invoke" => {
                            return Err(CheckError::Unsupported("nested parallel section".into()))
                        }
                        _ => {
                            if self.pause_world && !in_region {
                                // A bare world call is a shard-acquisition
                                // point: surface it to the scheduler. The
                                // special stays pending; the section loop
                                // executes it when this worker is picked.
                                return Ok(WState::AtWorldCall {
                                    name: name.to_string(),
                                    args: p.args.clone(),
                                });
                            }
                            let v = self.world.call(&module.intrinsics, name, &p.args);
                            vm.resolve_special(v);
                        }
                    }
                }
            }
        }
    }

    fn qidx(&self, id: i64) -> Result<usize, CheckError> {
        self.queue_index
            .get(&id)
            .copied()
            .ok_or(CheckError::Unsupported(format!("unknown queue {id}")))
    }
}

/// Runs the transformed `module` under `plan`, scheduling same-section
/// region instances with `sched`.
///
/// # Errors
///
/// Returns a [`CheckError`] on dynamic errors, deadlock, budget
/// exhaustion or unsupported program shapes.
pub fn run_controlled(
    module: &Module,
    plan: &ParallelPlan,
    model_cfg: &ModelConfig,
    sched: &mut dyn Scheduler,
    step_budget: u64,
) -> Result<ControlledOutcome, CheckError> {
    // Declared before `machine` and the VMs so it outlives every borrow.
    let bc = prepare_engine(module, model_cfg.engine);
    let mut machine = Machine {
        module,
        world: ModelWorld::new(model_cfg.clone()),
        budget: step_budget,
        queues: plan.queues.iter().map(|_| VecDeque::new()).collect(),
        queue_index: plan
            .queues
            .iter()
            .enumerate()
            .map(|(i, q)| (q.id, i))
            .collect(),
        pause_world: model_cfg.pause_at_world_calls,
    };
    let mut globals = PlainGlobals::new(module);
    let mut main = EngineVm::for_name(module, bc.as_ref(), "main", &[])?;
    let mut log: Vec<RegionExec> = Vec::new();

    loop {
        machine.spend()?;
        match main.step(&mut globals)? {
            StepOutcome::Ran { .. } => {}
            StepOutcome::Finished(_) => break,
            StepOutcome::Special(p) => {
                let name = module.intrinsics.name(p.intrinsic.0 as usize);
                if name == "__par_invoke" {
                    let section = p.args[0].as_int();
                    if section != plan.section {
                        return Err(CheckError::Unsupported(format!(
                            "section {section} has no plan"
                        )));
                    }
                    run_section(
                        &mut machine,
                        bc.as_ref(),
                        plan,
                        &mut globals,
                        sched,
                        &mut log,
                    )?;
                    main.resolve_special(Value::Int(0));
                } else if name.starts_with("__") {
                    return Err(CheckError::Unsupported(format!(
                        "synchronization intrinsic {name} outside a section"
                    )));
                } else {
                    let v = machine.world.call(&module.intrinsics, name, &p.args);
                    main.resolve_special(v);
                }
            }
        }
    }

    Ok(ControlledOutcome {
        steps: step_budget - machine.budget,
        world: machine.world,
        globals: snapshot_globals(module, &mut globals),
        log,
    })
}

/// Final scalar globals (name, value), transform-introduced `__`-prefixed
/// names and arrays excluded, sorted by name.
fn snapshot_globals(module: &Module, globals: &mut PlainGlobals) -> Vec<(String, Value)> {
    let mut finals: Vec<(String, Value)> = Vec::new();
    for g in &module.globals {
        if g.name.starts_with("__") || g.len.is_some() {
            continue;
        }
        if let Some(id) = module.global_id(&g.name) {
            finals.push((g.name.clone(), globals.load(id)));
        }
    }
    finals.sort_by(|a, b| a.0.cmp(&b.0));
    finals
}

/// Runs the *sequential* (untransformed) `module` against a fresh model
/// world — the oracle every controlled schedule is compared to.
///
/// # Errors
///
/// Returns a [`CheckError`] on dynamic errors, budget exhaustion, or if a
/// synchronization intrinsic appears (the module was not sequential).
pub fn run_sequential_model(
    module: &Module,
    model_cfg: &ModelConfig,
    step_budget: u64,
) -> Result<ControlledOutcome, CheckError> {
    // The oracle is sequentially consistent by definition: a stray
    // per-run store-buffer window must not leak into it.
    let mut seq_cfg = model_cfg.clone();
    seq_cfg.sb_window = None;
    let bc = prepare_engine(module, model_cfg.engine);
    let mut world = ModelWorld::new(seq_cfg);
    let mut globals = PlainGlobals::new(module);
    let mut vm = EngineVm::for_name(module, bc.as_ref(), "main", &[])?;
    let mut budget = step_budget;
    loop {
        if budget == 0 {
            return Err(CheckError::BudgetExhausted);
        }
        budget -= 1;
        match vm.step(&mut globals)? {
            StepOutcome::Ran { .. } => {}
            StepOutcome::Finished(_) => break,
            StepOutcome::Special(p) => {
                let name = module.intrinsics.name(p.intrinsic.0 as usize);
                if name.starts_with("__") {
                    return Err(CheckError::Unsupported(format!(
                        "synchronization intrinsic {name} in the sequential oracle"
                    )));
                }
                let v = world.call(&module.intrinsics, name, &p.args);
                vm.resolve_special(v);
            }
        }
    }
    Ok(ControlledOutcome {
        steps: step_budget - budget,
        world,
        globals: snapshot_globals(module, &mut globals),
        log: Vec::new(),
    })
}

fn run_section<'m, 'e>(
    machine: &mut Machine<'m>,
    bc: Option<&'e commset_interp::BcModule>,
    plan: &ParallelPlan,
    globals: &mut PlainGlobals,
    sched: &mut dyn Scheduler,
    log: &mut Vec<RegionExec>,
) -> Result<(), CheckError>
where
    'm: 'e,
{
    let mut workers: Vec<CWorker<'e>> = Vec::with_capacity(plan.workers.len());
    for (i, w) in plan.workers.iter().enumerate() {
        let mut vm = EngineVm::for_name(
            machine.module,
            bc,
            &w.func,
            &[Value::Int(w.tid), Value::Int(w.nt)],
        )?;
        vm.watch_calls_matching("__commset_region_");
        // Run the pre-region prefix (private computation) eagerly, in
        // worker order — deterministic and schedule-irrelevant.
        machine.world.set_worker(i + 1);
        let state = machine.run_vm(&mut vm, globals, false, &w.func)?;
        workers.push(CWorker { vm, state });
    }

    loop {
        // Re-arm blocked pops whose queue has data.
        let ready: Vec<usize> = workers
            .iter()
            .enumerate()
            .filter(|(_, w)| match &w.state {
                WState::AtRegion { .. } | WState::AtWorldCall { .. } => true,
                WState::BlockedPop(q) => !machine.queues[*q].is_empty(),
                WState::Done => false,
            })
            .map(|(i, _)| i)
            .collect();
        if ready.is_empty() {
            if workers.iter().all(|w| w.state == WState::Done) {
                // Section barrier: every store buffer drains, so the
                // final write multisets match an SC interleaving.
                machine.world.flush_all();
                machine.world.set_worker(0);
                return Ok(());
            }
            return Err(CheckError::Deadlock {
                states: workers
                    .iter()
                    .enumerate()
                    .map(|(i, w)| format!("w{i}:{:?}", w.state))
                    .collect(),
            });
        }
        let chosen = sched.pick(&ready);
        debug_assert!(ready.contains(&chosen), "scheduler returned non-ready");
        // Every scheduled event is one tick of the store-buffer clock;
        // parked writes older than the window drain before the event runs.
        machine.world.tick_advance();
        machine.world.set_worker(chosen + 1);
        let w = &mut workers[chosen];
        match w.state.clone() {
            WState::AtRegion { func, args } => {
                log.push(RegionExec {
                    worker: chosen,
                    func: func.clone(),
                    args,
                });
                // Execute the region body atomically...
                let after = machine.run_vm(&mut w.vm, globals, true, &func)?;
                w.state = match after {
                    WState::Done => WState::Done,
                    // ...then run to the next pause point.
                    _ => machine.run_vm(&mut w.vm, globals, false, &func)?,
                };
            }
            WState::AtWorldCall { name, args } => {
                // Execute the pending world call (the shard acquisition
                // the worker paused at), then run to the next pause.
                let v = machine.world.call(&machine.module.intrinsics, &name, &args);
                w.vm.resolve_special(v);
                w.state = machine.run_vm(&mut w.vm, globals, false, "")?;
            }
            WState::BlockedPop(_) => {
                w.state = machine.run_vm(&mut w.vm, globals, false, "")?;
            }
            WState::Done => unreachable!("done workers are not ready"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedulers_respect_the_ready_set() {
        let ready = vec![0, 2, 3];
        assert_eq!(Canonical.pick(&ready), 0);
        assert_eq!(Reverse.pick(&ready), 3);
        let mut rr = RoundRobin::new();
        assert_eq!(rr.pick(&ready), 0);
        assert_eq!(rr.pick(&ready), 2);
        assert_eq!(rr.pick(&ready), 3);
        assert_eq!(rr.pick(&ready), 0);
        let mut d = Delay::new(0, 2);
        assert_eq!(d.pick(&ready), 2);
        assert_eq!(d.pick(&ready), 2);
        assert_eq!(d.pick(&ready), 0, "victim released after hold");
        let mut c = Chaos::new(7);
        for _ in 0..20 {
            assert!(ready.contains(&c.pick(&ready)));
        }
    }

    #[test]
    fn recording_and_replay_round_trip() {
        let ready = vec![0, 1, 2];
        let mut base = Reverse;
        let mut rec = Recording::new(&mut base);
        for _ in 0..3 {
            rec.pick(&ready);
        }
        assert_eq!(rec.trace, vec![2, 2, 2]);
        // Replaying the trace reproduces it; canonicalizing one decision
        // falls back to ready[0]; past the trace end is canonical too.
        let mut rep = Replay::new(vec![Some(2), None, Some(2)]);
        assert_eq!(rep.pick(&ready), 2);
        assert_eq!(rep.pick(&ready), 0);
        assert_eq!(rep.pick(&ready), 2);
        assert_eq!(rep.pick(&ready), 0, "past-end is canonical");
        // A pinned worker that is no longer ready degrades to canonical.
        let mut rep = Replay::new(vec![Some(7)]);
        assert_eq!(rep.pick(&ready), 0);
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let ready = vec![0, 1, 2, 3];
        let run = |seed| {
            let mut c = Chaos::new(seed);
            (0..32).map(|_| c.pick(&ready)).collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds explore differently");
    }
}
