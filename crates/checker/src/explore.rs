//! The schedule explorer — a DPOR-lite commutativity checker.
//!
//! [`check_source`] compiles an annotated program through the full
//! COMMSET pipeline, runs the *sequential* program once against the
//! abstract [`crate::model::ModelWorld`] (the oracle), then replays the
//! *transformed* program under a budgeted family of schedules that
//! systematically permute the order of same-CommSet region instances:
//!
//! 1. `canonical` / `reverse` / `round-robin` — the coarse corners;
//! 2. a `delay(w,k)` grid — hold one worker back `k` regions, the
//!    systematic pair-flip that exposes same-instance races;
//! 3. seeded `chaos` schedules up to the budget;
//! 4. under [`CheckConfig::relaxed`], **store-buffered** (`sb[w]:`)
//!    variants of every family, which deliberately delay the flush of
//!    commutative-channel writes by up to `w` scheduling ticks — the
//!    weak-memory half of the campaign.
//!
//! The schedule family is *enumerable*: [`schedule_specs`] produces a
//! deterministic list of [`ScheduleSpec`] descriptors, each of which can
//! be instantiated independently. That is what makes the campaign
//! partitionable — [`crate::pool`] fans contiguous spec ranges across a
//! work-stealing thread pool and merges the outcomes by spec index, so a
//! parallel campaign is bit-identical to a sequential one.
//!
//! Every schedule's final world (channel histories + scalar globals) is
//! compared against the oracle; the merged report names **every**
//! violating schedule, and the first (lowest-index) violation is rendered
//! in full with both interleavings, the suspect region pair, a shrunk
//! locally-minimal schedule, and a `REPLAY:` line. The whole campaign is
//! a pure function of `(source, table, config)` — same seed, same
//! explored schedules, same verdict, regardless of `jobs`.

use crate::exec::{
    render_interleaving, run_controlled, run_sequential_model, Canonical, Chaos, ControlledOutcome,
    Delay, RegionExec, Reverse, RoundRobin, Scheduler,
};
use crate::model::ModelConfig;
use crate::pool;
use crate::report::{CheckFailure, CheckReport, ReplayInfo, Verdict, Violation};
use crate::shrink::shrink_schedule;
use commset_analysis::depanalysis::analyze_commutativity;
use commset_analysis::effects::summarize;
use commset_analysis::hotloop::find_hot_loop;
use commset_analysis::metadata::manage;
use commset_analysis::pdg::Pdg;
use commset_analysis::scc::dag_scc;
use commset_analysis::{region_catalog, RegionInfo};
use commset_ir::{lower_program, IntrinsicTable, Module};
use commset_lang::diag::Diagnostic;
use commset_transform::{doall, dswp, ParallelPlan, SyncMode};
use std::collections::BTreeSet;

/// Campaign knobs. Everything is deterministic: two runs with equal
/// configs explore the same schedules and reach the same verdict — and
/// `jobs` affects wall-clock only, never the report.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Workers in the transformed program.
    pub nthreads: usize,
    /// Total number of schedules to explore (≥ 1; the canonical schedule
    /// always runs first).
    pub budget: usize,
    /// VM step budget per schedule (guards against runaway loops).
    pub step_budget: u64,
    /// Seed for the chaos schedules.
    pub seed: u64,
    /// Checker threads exploring the schedule space (the `--jobs` knob).
    /// Partitioning is fixed per budget, so the merged report is
    /// bit-identical for every value of `jobs`.
    pub jobs: usize,
    /// Explore relaxed-visibility (store-buffered) schedule variants in
    /// addition to the sequentially-consistent families.
    pub relaxed: bool,
    /// Largest store-buffer flush window (in scheduling ticks) the
    /// relaxed families explore; windows 1, 2, 4 … capped here.
    pub max_window: usize,
    /// The abstract world's knobs (loop bound, stream length, commutative
    /// channels).
    pub model: ModelConfig,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            nthreads: 2,
            budget: 24,
            step_budget: 2_000_000,
            seed: 0x5eed_c0de,
            jobs: 1,
            relaxed: false,
            max_window: 4,
            model: ModelConfig::default(),
        }
    }
}

impl CheckConfig {
    /// A config whose model treats `chans` as commutative channels.
    pub fn with_commutative<'a>(chans: impl IntoIterator<Item = &'a str>) -> Self {
        CheckConfig {
            model: ModelConfig::with_commutative(chans),
            ..CheckConfig::default()
        }
    }

    /// The store-buffer windows the relaxed families explore: the powers
    /// of two up to [`CheckConfig::max_window`], never empty.
    pub fn windows(&self) -> Vec<usize> {
        let ws: Vec<usize> = [1usize, 2, 4, 8, 16]
            .into_iter()
            .filter(|w| *w <= self.max_window)
            .collect();
        if ws.is_empty() {
            vec![self.max_window.max(1)]
        } else {
            ws
        }
    }

    /// The budget that runs every systematic (non-chaos) family exactly
    /// once: the SC base block, plus one store-buffered copy per window
    /// when `relaxed` is on. Corpus replay uses this so a small user
    /// budget cannot silently skip the relaxed families.
    pub fn full_family_budget(&self) -> usize {
        let base = 3 + self.nthreads * 3;
        if self.relaxed {
            base * (1 + self.windows().len())
        } else {
            base
        }
    }
}

/// How a schedule picks the next worker (the scheduler half of a spec).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PickerSpec {
    /// Lowest-numbered ready worker.
    Canonical,
    /// Highest-numbered ready worker.
    Reverse,
    /// Cycle through workers, one region each.
    RoundRobin,
    /// Hold `victim` back until `hold` other regions ran.
    Delay {
        /// The held-back worker.
        victim: usize,
        /// Regions others execute first.
        hold: usize,
    },
    /// Seeded random choice.
    Chaos {
        /// The SplitMix64 seed.
        seed: u64,
    },
}

/// One fully-described, independently-runnable schedule: a picker plus an
/// optional store-buffer window. The campaign is a list of these; a spec
/// can be re-instantiated at any time (replay, shrinking, partitioned
/// exploration) and always produces the same run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleSpec {
    /// The worker-picking strategy.
    pub picker: PickerSpec,
    /// `Some(w)`: run with per-worker store buffers flushed after `w`
    /// scheduling ticks (a relaxed-visibility schedule). `None`: SC.
    pub window: Option<usize>,
}

impl ScheduleSpec {
    /// The spec's stable, human-readable name (what `explored` lists and
    /// failure reports use).
    pub fn name(&self) -> String {
        let base = match &self.picker {
            PickerSpec::Canonical => "canonical".to_string(),
            PickerSpec::Reverse => "reverse".to_string(),
            PickerSpec::RoundRobin => "round-robin".to_string(),
            PickerSpec::Delay { victim, hold } => format!("delay(w{victim},{hold})"),
            PickerSpec::Chaos { seed } => format!("chaos({seed:#x})"),
        };
        match self.window {
            Some(w) => format!("sb[{w}]:{base}"),
            None => base,
        }
    }

    /// A fresh scheduler for this spec.
    pub fn instantiate(&self) -> Box<dyn Scheduler> {
        match &self.picker {
            PickerSpec::Canonical => Box::new(Canonical),
            PickerSpec::Reverse => Box::new(Reverse),
            PickerSpec::RoundRobin => Box::new(RoundRobin::new()),
            PickerSpec::Delay { victim, hold } => Box::new(Delay::new(*victim, *hold)),
            PickerSpec::Chaos { seed } => Box::new(Chaos::new(*seed)),
        }
    }
}

/// The deterministic, enumerable schedule family for a config: the SC
/// base block (canonical, reverse, round-robin, the delay grid), then —
/// under [`CheckConfig::relaxed`] — one store-buffered copy of the base
/// block per flush window, then chaos schedules (cycling through SC and
/// every window) up to the budget.
pub fn schedule_specs(cfg: &CheckConfig) -> Vec<ScheduleSpec> {
    let mut base: Vec<PickerSpec> = vec![
        PickerSpec::Canonical,
        PickerSpec::Reverse,
        PickerSpec::RoundRobin,
    ];
    for victim in 0..cfg.nthreads {
        for hold in [1usize, 2, 4] {
            base.push(PickerSpec::Delay { victim, hold });
        }
    }
    let mut specs: Vec<ScheduleSpec> = base
        .iter()
        .map(|p| ScheduleSpec {
            picker: p.clone(),
            window: None,
        })
        .collect();
    let windows = if cfg.relaxed {
        cfg.windows()
    } else {
        Vec::new()
    };
    for w in &windows {
        specs.extend(base.iter().map(|p| ScheduleSpec {
            picker: p.clone(),
            window: Some(*w),
        }));
    }
    let mut k = 0u64;
    while specs.len() < cfg.budget {
        // Cycle the chaos fill through SC and every window so a larger
        // budget deepens both halves of the campaign evenly.
        let cycle = 1 + windows.len();
        let window = match (k as usize) % cycle {
            0 => None,
            i => Some(windows[i - 1]),
        };
        specs.push(ScheduleSpec {
            picker: PickerSpec::Chaos {
                seed: cfg.seed.wrapping_add(k),
            },
            window,
        });
        k += 1;
    }
    specs.truncate(cfg.budget.max(1));
    specs
}

/// The transformed module, its plan, and the scheme label.
fn pick_transform(
    analysis: &PipelineOut,
    table: &IntrinsicTable,
    nthreads: usize,
) -> Result<(Module, ParallelPlan, String), Diagnostic> {
    let no_irrevocable = BTreeSet::new();
    let first_err = match doall::apply_doall(
        &analysis.managed,
        &analysis.hot,
        &analysis.pdg,
        &analysis.summaries,
        &no_irrevocable,
        nthreads,
        SyncMode::Lib,
        0,
    ) {
        Ok(pp) => {
            let module = lower_program(&pp.program, table.clone())?;
            return Ok((module, pp.plan, "DOALL".to_string()));
        }
        Err(e) => e,
    };
    if let Ok(pp) = dswp::apply_ps_dswp(
        &analysis.managed,
        &analysis.hot,
        &analysis.pdg,
        &analysis.dag,
        &analysis.summaries,
        &no_irrevocable,
        nthreads,
        SyncMode::Lib,
        0,
    ) {
        let module = lower_program(&pp.program, table.clone())?;
        return Ok((module, pp.plan, "PS-DSWP".to_string()));
    }
    match dswp::apply_pipeline(
        &analysis.managed,
        &analysis.hot,
        &analysis.pdg,
        &analysis.dag,
        &analysis.summaries,
        &no_irrevocable,
        nthreads,
        SyncMode::Lib,
        0,
    ) {
        Ok(pp) => {
            let module = lower_program(&pp.program, table.clone())?;
            Ok((module, pp.plan, "DSWP".to_string()))
        }
        // Report the DOALL inhibitor: it names the loop-carried dependence
        // and is the most actionable of the three diagnostics.
        Err(_) => Err(first_err),
    }
}

struct PipelineOut {
    managed: commset_analysis::ManagedUnit,
    hot: commset_analysis::HotLoop,
    pdg: Pdg,
    dag: commset_analysis::scc::DagScc,
    summaries: std::collections::HashMap<String, commset_analysis::effects::FuncEffects>,
}

fn run_pipeline(source: &str, table: &IntrinsicTable) -> Result<PipelineOut, Diagnostic> {
    let unit = commset_lang::compile_unit(source)?;
    let managed = manage(unit)?;
    let summaries = summarize(&managed.program, table);
    let hot = find_hot_loop(&managed, &summaries, table, "main")?;
    let mut pdg = Pdg::build(&hot);
    analyze_commutativity(&mut pdg, &managed, &hot);
    let dag = dag_scc(&pdg);
    Ok(PipelineOut {
        managed,
        hot,
        pdg,
        dag,
        summaries,
    })
}

/// Differences between `outcome` and `oracle`: world channel diffs plus
/// scalar-global mismatches.
fn outcome_diffs(oracle: &ControlledOutcome, outcome: &ControlledOutcome) -> Vec<String> {
    let mut diffs = oracle.world.diff(&outcome.world);
    for (name, oracle_v) in &oracle.globals {
        match outcome.globals.iter().find(|(n, _)| n == name) {
            Some((_, v)) if v == oracle_v => {}
            Some((_, v)) => diffs.push(format!(
                "global {name}: oracle {oracle_v}, schedule computed {v}"
            )),
            None => diffs.push(format!("global {name}: missing in transformed program")),
        }
    }
    diffs
}

fn first_divergence(a: &[RegionExec], b: &[RegionExec]) -> Option<(usize, RegionExec, RegionExec)> {
    a.iter()
        .zip(b.iter())
        .position(|(x, y)| x != y)
        .map(|i| (i, a[i].clone(), b[i].clone()))
}

/// One schedule's fate under the campaign.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// Spec index within the campaign.
    pub index: usize,
    /// The schedule's name.
    pub name: String,
    /// The region interleaving the schedule executed (empty if the run
    /// aborted before completing).
    pub log: Vec<RegionExec>,
    /// Channel/global diffs vs. the oracle; empty means the schedule
    /// reproduced the sequential history.
    pub diffs: Vec<String>,
    /// Set if the run aborted (deadlock, budget, dynamic error).
    pub error: Option<String>,
    /// VM steps the schedule spent (0 when the run aborted before
    /// reporting), feeding the checker throughput metrics.
    pub steps: u64,
}

impl ScheduleOutcome {
    /// True if the schedule diverged from the oracle or aborted.
    pub fn violates(&self) -> bool {
        !self.diffs.is_empty() || self.error.is_some()
    }
}

/// A compiled, oracle'd campaign: everything needed to run any subset of
/// its schedules from any thread. Shared read-only across the pool.
pub struct Campaign {
    cfg: CheckConfig,
    module: Module,
    plan: ParallelPlan,
    scheme: String,
    oracle: ControlledOutcome,
    regions: Vec<RegionInfo>,
    specs: Vec<ScheduleSpec>,
}

/// [`prepare_campaign`]'s result: ready to explore, or conservatively
/// skipped (no parallelizing transform applies / oracle failed).
pub enum PreparedCampaign {
    /// The campaign compiled; explore away.
    Ready(Box<Campaign>),
    /// Nothing to check.
    Skipped {
        /// Why (transform inapplicability diagnostic or oracle error).
        reason: String,
        /// The region catalog (still reportable).
        regions: Vec<RegionInfo>,
    },
}

/// Compiles `source`, runs the sequential oracle, picks the transform
/// under test and enumerates the schedule family.
///
/// # Errors
///
/// Returns the front-end / metadata-manager / hot-loop diagnostic if the
/// program does not even compile; transform inapplicability is *not* an
/// error (it yields [`PreparedCampaign::Skipped`]).
pub fn prepare_campaign(
    source: &str,
    table: &IntrinsicTable,
    cfg: &CheckConfig,
) -> Result<PreparedCampaign, Diagnostic> {
    let analysis = run_pipeline(source, table)?;
    let regions: Vec<RegionInfo> = region_catalog(&analysis.managed);

    // The sequential oracle (the untransformed program).
    let seq_module = lower_program(&analysis.managed.program, table.clone())?;
    let oracle = match run_sequential_model(&seq_module, &cfg.model, cfg.step_budget) {
        Ok(o) => o,
        Err(e) => {
            return Ok(PreparedCampaign::Skipped {
                reason: format!("sequential oracle failed: {e}"),
                regions,
            })
        }
    };

    // The transform under test.
    let (module, plan, scheme) = match pick_transform(&analysis, table, cfg.nthreads) {
        Ok(t) => t,
        Err(d) => {
            return Ok(PreparedCampaign::Skipped {
                reason: d.message.clone(),
                regions,
            })
        }
    };

    Ok(PreparedCampaign::Ready(Box::new(Campaign {
        specs: schedule_specs(cfg),
        cfg: cfg.clone(),
        module,
        plan,
        scheme,
        oracle,
        regions,
    })))
}

impl Campaign {
    /// The enumerated schedule family, in exploration order.
    pub fn specs(&self) -> &[ScheduleSpec] {
        &self.specs
    }

    /// The campaign's config.
    pub fn cfg(&self) -> &CheckConfig {
        &self.cfg
    }

    /// The scheme under test (e.g. `DOALL`).
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// Runs one schedule with an *externally supplied* scheduler (the
    /// shrinker's entry point) under the given store-buffer window and
    /// reports its diffs vs. the oracle, or the abort error.
    pub fn run_with_scheduler(
        &self,
        window: Option<usize>,
        sched: &mut dyn Scheduler,
    ) -> Result<(Vec<String>, Vec<RegionExec>), String> {
        self.run_with_scheduler_counted(window, sched)
            .map(|(diffs, log, _)| (diffs, log))
    }

    /// [`Campaign::run_with_scheduler`] plus the VM steps the run spent —
    /// the exploration-throughput numerator the metrics registry reports.
    pub fn run_with_scheduler_counted(
        &self,
        window: Option<usize>,
        sched: &mut dyn Scheduler,
    ) -> Result<(Vec<String>, Vec<RegionExec>, u64), String> {
        let mut model = self.cfg.model.clone();
        model.sb_window = window;
        match run_controlled(
            &self.module,
            &self.plan,
            &model,
            sched,
            self.cfg.step_budget,
        ) {
            Ok(outcome) => Ok((
                outcome_diffs(&self.oracle, &outcome),
                outcome.log,
                outcome.steps,
            )),
            Err(e) => Err(e.to_string()),
        }
    }

    /// Runs the `index`-th spec. Pure: any thread, any order, same result.
    pub fn run_spec(&self, index: usize) -> ScheduleOutcome {
        let spec = &self.specs[index];
        let mut sched = spec.instantiate();
        match self.run_with_scheduler_counted(spec.window, sched.as_mut()) {
            Ok((diffs, log, steps)) => ScheduleOutcome {
                index,
                name: spec.name(),
                log,
                diffs,
                error: None,
                steps,
            },
            Err(e) => ScheduleOutcome {
                index,
                name: spec.name(),
                log: Vec::new(),
                diffs: Vec::new(),
                error: Some(e),
                steps: 0,
            },
        }
    }

    /// Folds a campaign's outcomes into a metrics registry:
    /// `checker.schedules` / `checker.violations` / `checker.steps`
    /// counters and the per-schedule `checker.schedule_steps` step
    /// histogram. Deterministic for a given outcome list, and entirely
    /// separate from [`CheckReport`] rendering (which stays byte-stable).
    pub fn metrics(&self, outcomes: &[ScheduleOutcome]) -> commset_telemetry::MetricsRegistry {
        let mut reg = commset_telemetry::MetricsRegistry::new();
        reg.inc("checker.schedules", outcomes.len() as u64);
        reg.inc(
            "checker.violations",
            outcomes.iter().filter(|o| o.violates()).count() as u64,
        );
        reg.inc("checker.steps", outcomes.iter().map(|o| o.steps).sum());
        for o in outcomes {
            reg.observe("checker.schedule_steps", o.steps);
        }
        reg
    }

    /// Merges per-schedule outcomes (in spec order) into the final
    /// report: every violating schedule is named, the lowest-index
    /// violation is rendered in full (with a shrunk schedule when it
    /// completed), and a `REPLAY:` line pins the reproduction knobs.
    pub fn merge(&self, outcomes: &[ScheduleOutcome]) -> CheckReport {
        let explored: Vec<String> = outcomes.iter().map(|o| o.name.clone()).collect();
        let canonical_log: Vec<RegionExec> = outcomes
            .iter()
            .find(|o| !o.violates())
            .map(|o| o.log.clone())
            .unwrap_or_default();
        let violations: Vec<Violation> = outcomes
            .iter()
            .filter(|o| o.violates())
            .map(|o| Violation {
                schedule: o.name.clone(),
                partition: pool::partition_of(o.index),
            })
            .collect();
        let Some(first) = outcomes.iter().find(|o| o.violates()) else {
            return CheckReport {
                verdict: Verdict::Pass {
                    scheme: self.scheme.clone(),
                    schedules: explored.len(),
                },
                regions: self.regions.clone(),
                explored,
                violations,
                replay: None,
            };
        };
        let replay = ReplayInfo {
            seed: self.cfg.seed,
            budget: self.cfg.budget,
            jobs: self.cfg.jobs,
            threads: self.cfg.nthreads,
            partition: pool::partition_of(first.index),
            schedule: first.name.clone(),
        };
        // Shrink completed divergences (not aborts) to a locally-minimal
        // schedule before rendering.
        let shrunk = if first.error.is_none() {
            shrink_schedule(self, first.index)
        } else {
            None
        };
        let suspect = first_divergence(&canonical_log, &first.log);
        CheckReport {
            verdict: Verdict::Fail(Box::new(CheckFailure {
                scheme: self.scheme.clone(),
                schedule: first.name.clone(),
                partition: pool::partition_of(first.index),
                diffs: first.diffs.clone(),
                canonical: render_interleaving(&canonical_log),
                failing: render_interleaving(&first.log),
                canonical_log,
                failing_log: first.log.clone(),
                suspect,
                shrunk,
                error: first.error.clone(),
            })),
            regions: self.regions.clone(),
            explored,
            violations,
            replay: Some(replay),
        }
    }
}

/// Runs the full checking campaign on `source`: every schedule in the
/// family is explored (fanned across [`CheckConfig::jobs`] threads) and
/// the merged report names every violating schedule.
///
/// # Errors
///
/// Returns the front-end / metadata-manager / hot-loop diagnostic if the
/// program does not even compile; transform inapplicability is *not* an
/// error (it yields [`Verdict::Skipped`]).
pub fn check_source(
    source: &str,
    table: &IntrinsicTable,
    cfg: &CheckConfig,
) -> Result<CheckReport, Diagnostic> {
    check_source_with_metrics(source, table, cfg).map(|(report, _)| report)
}

/// [`check_source`] plus the campaign's exploration-throughput metrics
/// (`checker.schedules`, `checker.steps`, the per-schedule step
/// histogram). The report is byte-identical to [`check_source`]'s; the
/// registry is empty for skipped campaigns.
///
/// # Errors
///
/// As [`check_source`].
pub fn check_source_with_metrics(
    source: &str,
    table: &IntrinsicTable,
    cfg: &CheckConfig,
) -> Result<(CheckReport, commset_telemetry::MetricsRegistry), Diagnostic> {
    let campaign = match prepare_campaign(source, table, cfg)? {
        PreparedCampaign::Ready(c) => c,
        PreparedCampaign::Skipped { reason, regions } => {
            return Ok((
                CheckReport {
                    verdict: Verdict::Skipped { reason },
                    regions,
                    explored: Vec::new(),
                    violations: Vec::new(),
                    replay: None,
                },
                commset_telemetry::MetricsRegistry::new(),
            ))
        }
    };
    let outcomes = pool::run_specs(&campaign);
    let metrics = campaign.metrics(&outcomes);
    Ok((campaign.merge(&outcomes), metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use commset_lang::ast::Type;

    fn table() -> IntrinsicTable {
        let mut t = IntrinsicTable::new();
        t.register("io_read", vec![Type::Int], Type::Int, &["FS"], &["FS"], 10);
        t.register("emit", vec![Type::Int], Type::Void, &[], &["OUT"], 5);
        t.mark_per_instance("FS");
        t
    }

    const SOUND: &str = r#"
        #pragma CommSetDecl(FSET, Group)
        #pragma CommSetPredicate(FSET, (i1), (i2), i1 != i2)
        extern int io_read(int i);
        extern void emit(int d);
        int main() {
            int n = 6;
            for (int i = 0; i < n; i = i + 1) {
                int x = 0;
                #pragma CommSet(SELF, FSET(i))
                { x = io_read(i); }
                #pragma CommSet(SELF, FSET(i))
                { emit(x + i); }
            }
            return 0;
        }
    "#;

    #[test]
    fn sound_program_passes_every_schedule() {
        let cfg = CheckConfig::with_commutative(["OUT"]);
        let report = check_source(SOUND, &table(), &cfg).expect("compiles");
        assert!(report.is_pass(), "{report}");
        assert!(report.explored.len() >= 4, "{:?}", report.explored);
        assert_eq!(report.explored[0], "canonical");
        assert!(report.violations.is_empty());
    }

    #[test]
    fn ordered_output_annotated_self_is_flagged() {
        // Claiming SELF on emit while OUT is order-sensitive: the DOALL
        // reorders emits, the ordered channel sees it.
        let cfg = CheckConfig::default(); // OUT stays ordered
        let report = check_source(SOUND, &table(), &cfg).expect("compiles");
        assert!(report.is_fail(), "{report}");
        let Verdict::Fail(fail) = &report.verdict else {
            unreachable!()
        };
        assert!(
            fail.diffs.iter().any(|d| d.contains("OUT")),
            "{:?}",
            fail.diffs
        );
        // The merged report names every violating schedule, not just the
        // first, and carries a REPLAY line.
        assert!(!report.violations.is_empty());
        assert!(report.violations.len() > 1, "{:?}", report.violations);
        let replay = report.replay.as_ref().expect("replay info on failure");
        assert_eq!(replay.schedule, fail.schedule);
        assert!(report.to_string().contains("REPLAY:"), "{report}");
    }

    /// A pipeline-shaped program: `produce` is a bare world call in its
    /// stage worker (no pragma), `consume` is a SELF region — the shape
    /// where world-call pausing adds scheduling points.
    const PIPE: &str = r#"
        extern int produce(int i);
        extern void consume(int v);
        int main() {
            int n = 6;
            for (int i = 0; i < n; i = i + 1) {
                int v = produce(i);
                #pragma CommSet(SELF)
                { consume(v); }
            }
            return 0;
        }
    "#;

    fn pipe_table() -> IntrinsicTable {
        let mut t = IntrinsicTable::new();
        t.register("produce", vec![Type::Int], Type::Int, &["SRC"], &["SRC"], 8);
        t.register("consume", vec![Type::Int], Type::Void, &[], &["SINK"], 6);
        t
    }

    #[test]
    fn world_call_pauses_keep_sound_programs_passing() {
        let mut cfg = CheckConfig::with_commutative(["OUT"]);
        cfg.model.pause_at_world_calls = true;
        let report = check_source(SOUND, &table(), &cfg).expect("compiles");
        assert!(report.is_pass(), "{report}");
        let mut pipe_cfg = CheckConfig::with_commutative(["SINK"]);
        pipe_cfg.model.pause_at_world_calls = true;
        let report = check_source(PIPE, &pipe_table(), &pipe_cfg).expect("compiles");
        assert!(report.is_pass(), "{report}");
    }

    #[test]
    fn world_call_pauses_still_flag_ordered_output() {
        let mut cfg = CheckConfig::default(); // OUT stays ordered
        cfg.model.pause_at_world_calls = true;
        let report = check_source(SOUND, &table(), &cfg).expect("compiles");
        assert!(report.is_fail(), "{report}");
    }

    /// With pausing on, bare world calls become scheduling points: the
    /// scheduler is consulted strictly more often on a pipeline whose
    /// producer stage calls the world outside any region.
    #[test]
    fn world_call_pauses_expose_more_scheduling_points() {
        struct Counting {
            picks: usize,
        }
        impl Scheduler for Counting {
            fn name(&self) -> String {
                "counting".into()
            }
            fn pick(&mut self, ready: &[usize]) -> usize {
                self.picks += 1;
                ready[0]
            }
        }
        let table = pipe_table();
        let base = CheckConfig::with_commutative(["SINK"]);
        let mut paused_cfg = base.clone();
        paused_cfg.model.pause_at_world_calls = true;
        let prep = |cfg: &CheckConfig| match prepare_campaign(PIPE, &table, cfg).expect("compiles")
        {
            PreparedCampaign::Ready(c) => c,
            PreparedCampaign::Skipped { reason, .. } => panic!("skipped: {reason}"),
        };
        let mut without = Counting { picks: 0 };
        prep(&base)
            .run_with_scheduler(None, &mut without)
            .expect("runs");
        let mut with = Counting { picks: 0 };
        prep(&paused_cfg)
            .run_with_scheduler(None, &mut with)
            .expect("runs");
        assert!(
            with.picks > without.picks,
            "pausing must add scheduling points ({} vs {})",
            with.picks,
            without.picks
        );
    }

    #[test]
    fn campaign_is_deterministic_for_a_seed() {
        let cfg = CheckConfig::default();
        let a = check_source(SOUND, &table(), &cfg).expect("compiles");
        let b = check_source(SOUND, &table(), &cfg).expect("compiles");
        assert_eq!(a.explored, b.explored);
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn parallel_jobs_produce_bit_identical_reports() {
        // Pass and fail campaigns, 1 vs 4 checker threads: the merged
        // report must not depend on jobs at all.
        for cfg_base in [
            CheckConfig::with_commutative(["OUT"]),
            CheckConfig::default(),
        ] {
            let seq = check_source(SOUND, &table(), &cfg_base).expect("compiles");
            let par_cfg = CheckConfig {
                jobs: 4,
                ..cfg_base.clone()
            };
            let par = check_source(SOUND, &table(), &par_cfg).expect("compiles");
            assert_eq!(seq.explored, par.explored);
            // The only allowed textual difference is the REPLAY line's
            // jobs count (it echoes the invocation).
            assert_eq!(
                seq.to_string().replace("--jobs 1", "--jobs N"),
                par.to_string().replace("--jobs 4", "--jobs N"),
            );
        }
    }

    #[test]
    fn relaxed_config_enumerates_store_buffered_families() {
        let mut cfg = CheckConfig::with_commutative(["OUT"]);
        cfg.relaxed = true;
        cfg.budget = cfg.full_family_budget();
        let specs = schedule_specs(&cfg);
        assert_eq!(specs.len(), cfg.budget);
        // SC block first (canonical leads), then every window's copy.
        assert_eq!(specs[0].name(), "canonical");
        for w in cfg.windows() {
            let name = format!("sb[{w}]:canonical");
            assert!(
                specs.iter().any(|s| s.name() == name),
                "missing {name}: {:?}",
                specs.iter().map(ScheduleSpec::name).collect::<Vec<_>>()
            );
        }
        // A relaxed campaign on a program whose annotations are sound
        // even under reordering still passes.
        let report = check_source(SOUND, &table(), &cfg).expect("compiles");
        assert!(report.is_pass(), "{report}");
    }

    #[test]
    fn unannotated_program_is_skipped() {
        let src = r#"
            extern int io_read(int i);
            int main() {
                int n = 6;
                int acc = 0;
                for (int i = 0; i < n; i = i + 1) {
                    acc = acc + io_read(i);
                }
                return 0;
            }
        "#;
        let report = check_source(src, &table(), &CheckConfig::default()).expect("compiles");
        assert!(
            matches!(report.verdict, Verdict::Skipped { .. }),
            "{report}"
        );
    }
}
