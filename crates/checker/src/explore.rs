//! The schedule explorer — a DPOR-lite commutativity checker.
//!
//! [`check_source`] compiles an annotated program through the full
//! COMMSET pipeline, runs the *sequential* program once against the
//! abstract [`crate::model::ModelWorld`] (the oracle), then replays the
//! *transformed* program under a budgeted family of schedules that
//! systematically permute the order of same-CommSet region instances:
//!
//! 1. `canonical` / `reverse` / `round-robin` — the coarse corners;
//! 2. a `delay(w,k)` grid — hold one worker back `k` regions, the
//!    systematic pair-flip that exposes same-instance races;
//! 3. seeded `chaos` schedules up to the budget.
//!
//! Every schedule's final world (channel histories + scalar globals) is
//! compared against the oracle; the first mismatch yields a
//! [`Verdict::Fail`] with both interleavings and the suspect region pair.
//! The whole campaign is a pure function of `(source, table, config)` —
//! same seed, same explored schedules, same verdict.

use crate::exec::{
    render_interleaving, run_controlled, run_sequential_model, Canonical, Chaos, ControlledOutcome,
    Delay, RegionExec, Reverse, RoundRobin, Scheduler,
};
use crate::model::ModelConfig;
use crate::report::{CheckFailure, CheckReport, Verdict};
use commset_analysis::depanalysis::analyze_commutativity;
use commset_analysis::effects::summarize;
use commset_analysis::hotloop::find_hot_loop;
use commset_analysis::metadata::manage;
use commset_analysis::pdg::Pdg;
use commset_analysis::scc::dag_scc;
use commset_analysis::{region_catalog, RegionInfo};
use commset_ir::{lower_program, IntrinsicTable, Module};
use commset_lang::diag::Diagnostic;
use commset_transform::{doall, dswp, ParallelPlan, SyncMode};
use std::collections::BTreeSet;

/// Campaign knobs. Everything is deterministic: two runs with equal
/// configs explore the same schedules and reach the same verdict.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Workers in the transformed program.
    pub nthreads: usize,
    /// Total number of schedules to explore (≥ 1; the canonical schedule
    /// always runs first).
    pub budget: usize,
    /// VM step budget per schedule (guards against runaway loops).
    pub step_budget: u64,
    /// Seed for the chaos schedules.
    pub seed: u64,
    /// The abstract world's knobs (loop bound, stream length, commutative
    /// channels).
    pub model: ModelConfig,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            nthreads: 2,
            budget: 24,
            step_budget: 2_000_000,
            seed: 0x5eed_c0de,
            model: ModelConfig::default(),
        }
    }
}

impl CheckConfig {
    /// A config whose model treats `chans` as commutative channels.
    pub fn with_commutative<'a>(chans: impl IntoIterator<Item = &'a str>) -> Self {
        CheckConfig {
            model: ModelConfig::with_commutative(chans),
            ..CheckConfig::default()
        }
    }
}

/// The deterministic schedule family for a config.
fn schedule_family(cfg: &CheckConfig) -> Vec<Box<dyn Scheduler>> {
    let mut fam: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Canonical),
        Box::new(Reverse),
        Box::new(RoundRobin::new()),
    ];
    for victim in 0..cfg.nthreads {
        for hold in [1usize, 2, 4] {
            fam.push(Box::new(Delay::new(victim, hold)));
        }
    }
    let mut k = 0u64;
    while fam.len() < cfg.budget {
        fam.push(Box::new(Chaos::new(cfg.seed.wrapping_add(k))));
        k += 1;
    }
    fam.truncate(cfg.budget.max(1));
    fam
}

/// The transformed module, its plan, and the scheme label.
fn pick_transform(
    analysis: &PipelineOut,
    table: &IntrinsicTable,
    nthreads: usize,
) -> Result<(Module, ParallelPlan, String), Diagnostic> {
    let no_irrevocable = BTreeSet::new();
    let first_err = match doall::apply_doall(
        &analysis.managed,
        &analysis.hot,
        &analysis.pdg,
        &analysis.summaries,
        &no_irrevocable,
        nthreads,
        SyncMode::Lib,
        0,
    ) {
        Ok(pp) => {
            let module = lower_program(&pp.program, table.clone())?;
            return Ok((module, pp.plan, "DOALL".to_string()));
        }
        Err(e) => e,
    };
    if let Ok(pp) = dswp::apply_ps_dswp(
        &analysis.managed,
        &analysis.hot,
        &analysis.pdg,
        &analysis.dag,
        &analysis.summaries,
        &no_irrevocable,
        nthreads,
        SyncMode::Lib,
        0,
    ) {
        let module = lower_program(&pp.program, table.clone())?;
        return Ok((module, pp.plan, "PS-DSWP".to_string()));
    }
    match dswp::apply_pipeline(
        &analysis.managed,
        &analysis.hot,
        &analysis.pdg,
        &analysis.dag,
        &analysis.summaries,
        &no_irrevocable,
        nthreads,
        SyncMode::Lib,
        0,
    ) {
        Ok(pp) => {
            let module = lower_program(&pp.program, table.clone())?;
            Ok((module, pp.plan, "DSWP".to_string()))
        }
        // Report the DOALL inhibitor: it names the loop-carried dependence
        // and is the most actionable of the three diagnostics.
        Err(_) => Err(first_err),
    }
}

struct PipelineOut {
    managed: commset_analysis::ManagedUnit,
    hot: commset_analysis::HotLoop,
    pdg: Pdg,
    dag: commset_analysis::scc::DagScc,
    summaries: std::collections::HashMap<String, commset_analysis::effects::FuncEffects>,
}

fn run_pipeline(source: &str, table: &IntrinsicTable) -> Result<PipelineOut, Diagnostic> {
    let unit = commset_lang::compile_unit(source)?;
    let managed = manage(unit)?;
    let summaries = summarize(&managed.program, table);
    let hot = find_hot_loop(&managed, &summaries, table, "main")?;
    let mut pdg = Pdg::build(&hot);
    analyze_commutativity(&mut pdg, &managed, &hot);
    let dag = dag_scc(&pdg);
    Ok(PipelineOut {
        managed,
        hot,
        pdg,
        dag,
        summaries,
    })
}

/// Differences between `outcome` and `oracle`: world channel diffs plus
/// scalar-global mismatches.
fn outcome_diffs(oracle: &ControlledOutcome, outcome: &ControlledOutcome) -> Vec<String> {
    let mut diffs = oracle.world.diff(&outcome.world);
    for (name, oracle_v) in &oracle.globals {
        match outcome.globals.iter().find(|(n, _)| n == name) {
            Some((_, v)) if v == oracle_v => {}
            Some((_, v)) => diffs.push(format!(
                "global {name}: oracle {oracle_v}, schedule computed {v}"
            )),
            None => diffs.push(format!("global {name}: missing in transformed program")),
        }
    }
    diffs
}

fn first_divergence(a: &[RegionExec], b: &[RegionExec]) -> Option<(usize, RegionExec, RegionExec)> {
    a.iter()
        .zip(b.iter())
        .position(|(x, y)| x != y)
        .map(|i| (i, a[i].clone(), b[i].clone()))
}

/// Runs the full checking campaign on `source`.
///
/// # Errors
///
/// Returns the front-end / metadata-manager / hot-loop diagnostic if the
/// program does not even compile; transform inapplicability is *not* an
/// error (it yields [`Verdict::Skipped`]).
pub fn check_source(
    source: &str,
    table: &IntrinsicTable,
    cfg: &CheckConfig,
) -> Result<CheckReport, Diagnostic> {
    let analysis = run_pipeline(source, table)?;
    let regions: Vec<RegionInfo> = region_catalog(&analysis.managed);

    // The sequential oracle (the untransformed program).
    let seq_module = lower_program(&analysis.managed.program, table.clone())?;
    let oracle = match run_sequential_model(&seq_module, &cfg.model, cfg.step_budget) {
        Ok(o) => o,
        Err(e) => {
            return Ok(CheckReport {
                verdict: Verdict::Skipped {
                    reason: format!("sequential oracle failed: {e}"),
                },
                regions,
                explored: Vec::new(),
            })
        }
    };

    // The transform under test.
    let (module, plan, scheme) = match pick_transform(&analysis, table, cfg.nthreads) {
        Ok(t) => t,
        Err(d) => {
            return Ok(CheckReport {
                verdict: Verdict::Skipped {
                    reason: d.message.clone(),
                },
                regions,
                explored: Vec::new(),
            })
        }
    };

    let mut explored: Vec<String> = Vec::new();
    let mut canonical_log: Vec<RegionExec> = Vec::new();
    for mut sched in schedule_family(cfg) {
        let name = sched.name();
        explored.push(name.clone());
        let outcome = run_controlled(&module, &plan, &cfg.model, sched.as_mut(), cfg.step_budget);
        match outcome {
            Err(e) => {
                return Ok(CheckReport {
                    verdict: Verdict::Fail(Box::new(CheckFailure {
                        scheme,
                        schedule: name,
                        diffs: Vec::new(),
                        canonical: render_interleaving(&canonical_log),
                        failing: String::new(),
                        canonical_log: canonical_log.clone(),
                        failing_log: Vec::new(),
                        suspect: None,
                        error: Some(e.to_string()),
                    })),
                    regions,
                    explored,
                })
            }
            Ok(outcome) => {
                let diffs = outcome_diffs(&oracle, &outcome);
                if !diffs.is_empty() {
                    let suspect = first_divergence(&canonical_log, &outcome.log);
                    return Ok(CheckReport {
                        verdict: Verdict::Fail(Box::new(CheckFailure {
                            scheme,
                            schedule: name,
                            diffs,
                            canonical: render_interleaving(&canonical_log),
                            failing: render_interleaving(&outcome.log),
                            canonical_log: canonical_log.clone(),
                            failing_log: outcome.log.clone(),
                            suspect,
                            error: None,
                        })),
                        regions,
                        explored,
                    });
                }
                if canonical_log.is_empty() {
                    canonical_log = outcome.log;
                }
            }
        }
    }

    Ok(CheckReport {
        verdict: Verdict::Pass {
            scheme,
            schedules: explored.len(),
        },
        regions,
        explored,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use commset_lang::ast::Type;

    fn table() -> IntrinsicTable {
        let mut t = IntrinsicTable::new();
        t.register("io_read", vec![Type::Int], Type::Int, &["FS"], &["FS"], 10);
        t.register("emit", vec![Type::Int], Type::Void, &[], &["OUT"], 5);
        t.mark_per_instance("FS");
        t
    }

    const SOUND: &str = r#"
        #pragma CommSetDecl(FSET, Group)
        #pragma CommSetPredicate(FSET, (i1), (i2), i1 != i2)
        extern int io_read(int i);
        extern void emit(int d);
        int main() {
            int n = 6;
            for (int i = 0; i < n; i = i + 1) {
                int x = 0;
                #pragma CommSet(SELF, FSET(i))
                { x = io_read(i); }
                #pragma CommSet(SELF, FSET(i))
                { emit(x + i); }
            }
            return 0;
        }
    "#;

    #[test]
    fn sound_program_passes_every_schedule() {
        let cfg = CheckConfig::with_commutative(["OUT"]);
        let report = check_source(SOUND, &table(), &cfg).expect("compiles");
        assert!(report.is_pass(), "{report}");
        assert!(report.explored.len() >= 4, "{:?}", report.explored);
        assert_eq!(report.explored[0], "canonical");
    }

    #[test]
    fn ordered_output_annotated_self_is_flagged() {
        // Claiming SELF on emit while OUT is order-sensitive: the DOALL
        // reorders emits, the ordered channel sees it.
        let cfg = CheckConfig::default(); // OUT stays ordered
        let report = check_source(SOUND, &table(), &cfg).expect("compiles");
        assert!(report.is_fail(), "{report}");
        let Verdict::Fail(fail) = &report.verdict else {
            unreachable!()
        };
        assert!(
            fail.diffs.iter().any(|d| d.contains("OUT")),
            "{:?}",
            fail.diffs
        );
    }

    /// A pipeline-shaped program: `produce` is a bare world call in its
    /// stage worker (no pragma), `consume` is a SELF region — the shape
    /// where world-call pausing adds scheduling points.
    const PIPE: &str = r#"
        extern int produce(int i);
        extern void consume(int v);
        int main() {
            int n = 6;
            for (int i = 0; i < n; i = i + 1) {
                int v = produce(i);
                #pragma CommSet(SELF)
                { consume(v); }
            }
            return 0;
        }
    "#;

    fn pipe_table() -> IntrinsicTable {
        let mut t = IntrinsicTable::new();
        t.register("produce", vec![Type::Int], Type::Int, &["SRC"], &["SRC"], 8);
        t.register("consume", vec![Type::Int], Type::Void, &[], &["SINK"], 6);
        t
    }

    #[test]
    fn world_call_pauses_keep_sound_programs_passing() {
        let mut cfg = CheckConfig::with_commutative(["OUT"]);
        cfg.model.pause_at_world_calls = true;
        let report = check_source(SOUND, &table(), &cfg).expect("compiles");
        assert!(report.is_pass(), "{report}");
        let mut pipe_cfg = CheckConfig::with_commutative(["SINK"]);
        pipe_cfg.model.pause_at_world_calls = true;
        let report = check_source(PIPE, &pipe_table(), &pipe_cfg).expect("compiles");
        assert!(report.is_pass(), "{report}");
    }

    #[test]
    fn world_call_pauses_still_flag_ordered_output() {
        let mut cfg = CheckConfig::default(); // OUT stays ordered
        cfg.model.pause_at_world_calls = true;
        let report = check_source(SOUND, &table(), &cfg).expect("compiles");
        assert!(report.is_fail(), "{report}");
    }

    /// With pausing on, bare world calls become scheduling points: the
    /// scheduler is consulted strictly more often on a pipeline whose
    /// producer stage calls the world outside any region.
    #[test]
    fn world_call_pauses_expose_more_scheduling_points() {
        struct Counting {
            picks: usize,
        }
        impl Scheduler for Counting {
            fn name(&self) -> String {
                "counting".into()
            }
            fn pick(&mut self, ready: &[usize]) -> usize {
                self.picks += 1;
                ready[0]
            }
        }
        let table = pipe_table();
        let analysis = run_pipeline(PIPE, &table).expect("compiles");
        let (module, plan, _) = pick_transform(&analysis, &table, 2).expect("transforms");
        let base = ModelConfig::with_commutative(["SINK"]);
        let mut paused = base.clone();
        paused.pause_at_world_calls = true;
        let mut without = Counting { picks: 0 };
        run_controlled(&module, &plan, &base, &mut without, 2_000_000).expect("runs");
        let mut with = Counting { picks: 0 };
        run_controlled(&module, &plan, &paused, &mut with, 2_000_000).expect("runs");
        assert!(
            with.picks > without.picks,
            "pausing must add scheduling points ({} vs {})",
            with.picks,
            without.picks
        );
    }

    #[test]
    fn campaign_is_deterministic_for_a_seed() {
        let cfg = CheckConfig::default();
        let a = check_source(SOUND, &table(), &cfg).expect("compiles");
        let b = check_source(SOUND, &table(), &cfg).expect("compiles");
        assert_eq!(a.explored, b.explored);
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn unannotated_program_is_skipped() {
        let src = r#"
            extern int io_read(int i);
            int main() {
                int n = 6;
                int acc = 0;
                for (int i = 0; i < n; i = i + 1) {
                    acc = acc + io_read(i);
                }
                return 0;
            }
        "#;
        let report = check_source(src, &table(), &CheckConfig::default()).expect("compiles");
        assert!(
            matches!(report.verdict, Verdict::Skipped { .. }),
            "{report}"
        );
    }
}
