//! The annotation-soundness fuzzer.
//!
//! A regression oracle for CommSetDepAnalysis: take a program whose
//! annotations the checker accepts, *weaken* them one mutation at a time,
//! and assert the checker flags every weakened variant. Three mutation
//! operators mirror the paper's annotation semantics:
//!
//! * **drop-predicate** — delete a `CommSetPredicate` line: a predicated
//!   Group set becomes unconditionally commutative, so region instances
//!   the predicate used to order (e.g. same-key pairs) may now be
//!   reordered. *Weakening* — the checker must catch it.
//! * **widen-self** — insert `SELF` into a `CommSet(SET(..))` pragma that
//!   lacks it: the member additionally commutes with itself, unlocking
//!   DOALL on programs whose output order mattered. *Weakening*.
//! * **strip-nosync** — delete a `CommSetNoSync` line: the runtime adds
//!   synchronization it previously elided. Strictly *conservative* — the
//!   checker must **not** flag it (a false positive here means the
//!   checker conflates sync strategy with commutativity).

//!
//! Mutants are independent, so the campaign fans them out across the same
//! deterministic pool ([`crate::pool`]) the schedule explorer uses:
//! `cfg.jobs` checker threads each claim whole mutants (the inner
//! schedule campaigns run single-threaded), and outcomes are merged in
//! mutation order — a `--jobs 8` fuzz report is byte-identical to
//! `--jobs 1`. An unsound fuzz verdict prints a `REPLAY:` line naming the
//! seed and the offending mutant's index.

use crate::explore::{check_source, CheckConfig};
use crate::pool;
use crate::report::{ReplayInfo, Verdict};
use commset_ir::IntrinsicTable;
use commset_lang::diag::Diagnostic;

/// One pragma mutation, identified by operator and source line (0-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Delete a `#pragma CommSetPredicate(SET, ...)` line.
    DropPredicate {
        /// The predicated set's name.
        set: String,
        /// 0-based source line of the pragma.
        line: usize,
    },
    /// Insert `SELF, ` into a `#pragma CommSet(SET(..))` lacking `SELF`.
    WidenSelf {
        /// 0-based source line of the pragma.
        line: usize,
    },
    /// Delete a `#pragma CommSetNoSync(SET)` line.
    StripNoSync {
        /// The set's name.
        set: String,
        /// 0-based source line of the pragma.
        line: usize,
    },
}

impl Mutation {
    /// True if the mutation *weakens* the annotations (claims more
    /// commutativity) — the checker is expected to flag these. A
    /// non-weakening mutation must stay unflagged.
    pub fn weakens(&self) -> bool {
        !matches!(self, Mutation::StripNoSync { .. })
    }

    /// Applies the mutation to `source`.
    pub fn apply(&self, source: &str) -> String {
        let lines: Vec<&str> = source.lines().collect();
        let mut out: Vec<String> = Vec::with_capacity(lines.len());
        for (i, l) in lines.iter().enumerate() {
            match self {
                Mutation::DropPredicate { line, .. } | Mutation::StripNoSync { line, .. }
                    if i == *line => {}
                Mutation::WidenSelf { line } if i == *line => {
                    out.push(l.replacen("CommSet(", "CommSet(SELF, ", 1));
                }
                _ => out.push((*l).to_string()),
            }
        }
        out.join("\n")
    }
}

impl std::fmt::Display for Mutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mutation::DropPredicate { set, line } => {
                write!(f, "drop-predicate({set}) at line {}", line + 1)
            }
            Mutation::WidenSelf { line } => write!(f, "widen-self at line {}", line + 1),
            Mutation::StripNoSync { set, line } => {
                write!(f, "strip-nosync({set}) at line {}", line + 1)
            }
        }
    }
}

/// Extracts `NAME` from `#pragma CommSetXxx(NAME, ...)` / `(NAME)`.
fn pragma_set_name(line: &str) -> Option<String> {
    let open = line.find('(')?;
    let rest = &line[open + 1..];
    let end = rest.find([',', ')'])?;
    let name = rest[..end].trim();
    (!name.is_empty()).then(|| name.to_string())
}

/// Enumerates every applicable mutation of `source`, in line order.
pub fn mutations(source: &str) -> Vec<Mutation> {
    let mut out = Vec::new();
    for (i, l) in source.lines().enumerate() {
        let t = l.trim_start();
        if t.starts_with("#pragma CommSetPredicate(") {
            if let Some(set) = pragma_set_name(t) {
                out.push(Mutation::DropPredicate { set, line: i });
            }
        } else if t.starts_with("#pragma CommSetNoSync(") {
            if let Some(set) = pragma_set_name(t) {
                out.push(Mutation::StripNoSync { set, line: i });
            }
        } else if t.starts_with("#pragma CommSet(") && !t.contains("SELF") {
            out.push(Mutation::WidenSelf { line: i });
        }
    }
    out
}

/// One mutant's fate under the checker.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// The mutation applied.
    pub mutation: Mutation,
    /// True if the checker flagged the mutant (`Verdict::Fail`).
    pub flagged: bool,
    /// True if the mutant no longer compiled (front-end diagnostic) —
    /// counted as *caught* for weakening mutations: the toolchain
    /// rejected the unsound annotation statically.
    pub rejected: bool,
    /// One-line human summary (verdict head or diagnostic).
    pub summary: String,
}

impl FuzzOutcome {
    /// True if a weakening mutant was caught (dynamically flagged or
    /// statically rejected).
    pub fn caught(&self) -> bool {
        self.flagged || self.rejected
    }
}

/// The full fuzzing campaign result.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The unmutated program was *flagged* — the annotations are already
    /// unsound, so fuzzing them is meaningless.
    pub baseline_flagged: bool,
    /// One-line summary of the baseline verdict.
    pub baseline_summary: String,
    /// One outcome per mutation, in line order.
    pub outcomes: Vec<FuzzOutcome>,
    /// Reproduction knobs; present exactly when the campaign is unsound.
    /// `partition` is the 0-based index of the first offending mutant
    /// (or of the baseline check, when the baseline itself is flagged).
    pub replay: Option<ReplayInfo>,
}

impl FuzzReport {
    /// The checker is *sound on this program*: the baseline is clean
    /// (`Pass`, or a conservative `Skipped`), at least one weakening
    /// mutation existed, every weakening mutant was caught, and no
    /// conservative mutant was flagged.
    ///
    /// Note this is a *per-fixture* criterion: a weakening mutation whose
    /// unsoundness is never dynamically exercised (e.g. dropping a
    /// predicate over keys that never collide) will not be caught by any
    /// dynamic checker — pick fuzz fixtures whose mutants misbehave.
    pub fn sound(&self) -> bool {
        let weakening: Vec<_> = self
            .outcomes
            .iter()
            .filter(|o| o.mutation.weakens())
            .collect();
        !self.baseline_flagged
            && !weakening.is_empty()
            && weakening.iter().all(|o| o.caught())
            && self
                .outcomes
                .iter()
                .filter(|o| !o.mutation.weakens())
                .all(|o| !o.flagged)
    }
}

impl std::fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "baseline: {} — {}",
            if self.baseline_flagged {
                "FLAGGED"
            } else {
                "clean"
            },
            self.baseline_summary
        )?;
        for o in &self.outcomes {
            let fate = if o.rejected {
                "rejected"
            } else if o.flagged {
                "flagged"
            } else {
                "passed"
            };
            let want = if o.mutation.weakens() {
                "expect caught"
            } else {
                "expect clean"
            };
            writeln!(f, "  {}: {fate} ({want}) — {}", o.mutation, o.summary)?;
        }
        writeln!(
            f,
            "fuzz verdict: {}",
            if self.sound() { "SOUND" } else { "UNSOUND" }
        )?;
        if let Some(replay) = &self.replay {
            writeln!(f, "{replay}")?;
        }
        Ok(())
    }
}

fn verdict_summary(report: &crate::report::CheckReport) -> String {
    match &report.verdict {
        Verdict::Pass { scheme, schedules } => format!("pass ({scheme}, {schedules} schedules)"),
        Verdict::Fail(fail) => format!("fail under `{}` ({})", fail.schedule, fail.scheme),
        Verdict::Skipped { reason } => format!("skipped: {reason}"),
    }
}

/// True if this outcome violates its expectation (a weakening mutant
/// escaped, or a conservative mutant was flagged).
fn offends(o: &FuzzOutcome) -> bool {
    if o.mutation.weakens() {
        !o.caught()
    } else {
        o.flagged
    }
}

/// Runs the fuzzing campaign: checks `source` unmutated, then every
/// mutant, under the same `cfg`. Mutants fan out across `cfg.jobs`
/// checker threads (each mutant's inner schedule campaign runs
/// single-threaded); the report is identical for every `jobs` value.
///
/// # Errors
///
/// Returns the diagnostic if the *baseline* program does not compile
/// (mutant compile failures are recorded, not propagated).
pub fn fuzz_annotations(
    source: &str,
    table: &IntrinsicTable,
    cfg: &CheckConfig,
) -> Result<FuzzReport, Diagnostic> {
    let baseline = check_source(source, table, cfg)?;
    let baseline_flagged = baseline.is_fail();
    let baseline_summary = verdict_summary(&baseline);
    // One pool slot per mutant; the inner campaigns stay sequential so
    // the pool's parallelism is spent where the budget is (whole
    // check_source runs), not oversubscribed.
    let inner_cfg = CheckConfig {
        jobs: 1,
        ..cfg.clone()
    };
    let ms = mutations(source);
    let outcomes: Vec<FuzzOutcome> = pool::run_indexed(cfg.jobs, ms.len(), |i| {
        let m = ms[i].clone();
        let mutated = m.apply(source);
        match check_source(&mutated, table, &inner_cfg) {
            Ok(report) => FuzzOutcome {
                flagged: report.is_fail(),
                rejected: false,
                summary: verdict_summary(&report),
                mutation: m,
            },
            Err(d) => FuzzOutcome {
                flagged: false,
                rejected: true,
                summary: format!("rejected: {}", d.message),
                mutation: m,
            },
        }
    });
    let mut report = FuzzReport {
        baseline_flagged,
        baseline_summary,
        outcomes,
        replay: None,
    };
    if !report.sound() {
        let (partition, schedule) = if baseline_flagged {
            (0, "baseline".to_string())
        } else {
            report
                .outcomes
                .iter()
                .position(offends)
                .map(|i| (i, report.outcomes[i].mutation.to_string()))
                .unwrap_or((0, "no weakening mutations apply".to_string()))
        };
        report.replay = Some(ReplayInfo {
            seed: cfg.seed,
            budget: cfg.budget,
            jobs: cfg.jobs,
            threads: cfg.nthreads,
            partition,
            schedule,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "\
#pragma CommSetDecl(FSET, Group)
#pragma CommSetPredicate(FSET, (i1), (i2), i1 != i2)
#pragma CommSetNoSync(FSET)
extern int io_read(int i);
int main() {
    int n = 4;
    for (int i = 0; i < n; i = i + 1) {
        int x = 0;
        #pragma CommSet(FSET(i))
        { x = io_read(i); }
    }
    return 0;
}
";

    #[test]
    fn mutation_enumeration_finds_all_three_operators() {
        let ms = mutations(SRC);
        assert_eq!(ms.len(), 3, "{ms:?}");
        assert!(matches!(&ms[0], Mutation::DropPredicate { set, line: 1 } if set == "FSET"));
        assert!(matches!(&ms[1], Mutation::StripNoSync { set, line: 2 } if set == "FSET"));
        assert!(matches!(&ms[2], Mutation::WidenSelf { line: 8 }));
        assert!(ms[0].weakens() && ms[2].weakens() && !ms[1].weakens());
    }

    #[test]
    fn mutations_apply_textually() {
        let ms = mutations(SRC);
        let dropped = ms[0].apply(SRC);
        assert!(!dropped.contains("CommSetPredicate"), "{dropped}");
        let stripped = ms[1].apply(SRC);
        assert!(!stripped.contains("CommSetNoSync"), "{stripped}");
        let widened = ms[2].apply(SRC);
        assert!(widened.contains("CommSet(SELF, FSET(i))"), "{widened}");
        // Idempotent on unrelated lines.
        assert_eq!(SRC.lines().count() - 1, dropped.lines().count());
    }
}
