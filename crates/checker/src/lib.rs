//! # commset-checker
//!
//! The dynamic commutativity checker (the testing-oracle side of the
//! COMMSET reproduction): given an annotated program, it answers *"do the
//! annotations claim more commutativity than the program's observable
//! semantics allow?"* by replaying the transformed program under
//! systematically permuted region schedules and comparing every outcome
//! against the sequential oracle.
//!
//! * [`model`] — the deterministic abstract world: ordered, commutative
//!   and per-instance effect channels with multiset/sequence comparison.
//! * [`exec`] — the controlled executor: workers pause at commutative
//!   region entries; an explicit [`exec::Scheduler`] picks the next
//!   region; regions run atomically.
//! * [`explore`] — the DPOR-lite campaign driver: canonical / reverse /
//!   round-robin / delay-grid / seeded-chaos schedules up to a budget,
//!   first divergence reported with both interleavings.
//! * [`report`] — verdict types and their rendering.
//! * [`fuzz`] — the annotation-soundness fuzzer: mutates the pragmas
//!   (drop a predicate, widen a set with `SELF`, strip `NoSync`) and
//!   asserts the checker flags the weakened variants.
//!
//! Everything is deterministic: a `(source, table, config)` triple always
//! explores the same schedules and reaches the same verdict, so checker
//! failures reproduce exactly.

pub mod exec;
pub mod explore;
pub mod fuzz;
pub mod model;
pub mod report;

pub use exec::{
    render_interleaving, run_controlled, run_sequential_model, Canonical, Chaos, CheckError,
    ControlledOutcome, Delay, RegionExec, Reverse, RoundRobin, Scheduler,
};
pub use explore::{check_source, CheckConfig};
pub use fuzz::{fuzz_annotations, FuzzOutcome, FuzzReport, Mutation};
pub use model::{ModelConfig, ModelWorld};
pub use report::{CheckFailure, CheckReport, Verdict};
