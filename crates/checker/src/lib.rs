//! # commset-checker
//!
//! The dynamic commutativity checker (the testing-oracle side of the
//! COMMSET reproduction): given an annotated program, it answers *"do the
//! annotations claim more commutativity than the program's observable
//! semantics allow?"* by replaying the transformed program under
//! systematically permuted region schedules and comparing every outcome
//! against the sequential oracle.
//!
//! * [`model`] — the deterministic abstract world: ordered, commutative
//!   and per-instance effect channels with multiset/sequence comparison,
//!   plus per-worker store buffers for relaxed-visibility campaigns.
//! * [`exec`] — the controlled executor: workers pause at commutative
//!   region entries; an explicit [`exec::Scheduler`] picks the next
//!   region; regions run atomically. Includes the [`exec::Recording`] /
//!   [`exec::Replay`] pair the shrinker is built on.
//! * [`explore`] — the DPOR-lite campaign driver: canonical / reverse /
//!   round-robin / delay-grid / seeded-chaos schedules (and their
//!   store-buffered `sb[w]:` variants) enumerated as independent
//!   [`explore::ScheduleSpec`]s up to a budget; the merged report names
//!   every violating schedule.
//! * [`pool`] — the deterministic work-stealing pool that fans the spec
//!   list across `--jobs` OS threads with a jobs-invariant partition plan.
//! * [`shrink`] — counterexample shrinking: greedily canonicalizes a
//!   violating schedule's decision trace to a locally-minimal one.
//! * [`report`] — verdict types and their rendering (including the
//!   `REPLAY:` reproduction line).
//! * [`fuzz`] — the annotation-soundness fuzzer: mutates the pragmas
//!   (drop a predicate, widen a set with `SELF`, strip `NoSync`) and
//!   asserts the checker flags the weakened variants; mutants fan out
//!   across the same pool.
//!
//! Everything is deterministic: a `(source, table, config)` triple always
//! explores the same schedules and reaches the same verdict — regardless
//! of `jobs` — so checker failures reproduce exactly.

pub mod exec;
pub mod explore;
pub mod fuzz;
pub mod model;
pub mod pool;
pub mod report;
pub mod shrink;

pub use exec::{
    render_interleaving, run_controlled, run_sequential_model, Canonical, Chaos, CheckError,
    ControlledOutcome, Delay, Recording, RegionExec, Replay, Reverse, RoundRobin, Scheduler,
};
pub use explore::{
    check_source, prepare_campaign, schedule_specs, Campaign, CheckConfig, PickerSpec,
    PreparedCampaign, ScheduleOutcome, ScheduleSpec,
};
pub use fuzz::{fuzz_annotations, FuzzOutcome, FuzzReport, Mutation};
pub use model::{ModelConfig, ModelWorld};
pub use report::{CheckFailure, CheckReport, ReplayInfo, Verdict, Violation};
pub use shrink::{shrink_schedule, ShrunkSchedule};
