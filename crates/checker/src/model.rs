//! The checker's abstract world model.
//!
//! The dynamic checker replays a program under many schedules and compares
//! the *observable effect history* against the sequential oracle. For that
//! it needs a world whose intrinsic semantics are (a) deterministic, (b)
//! cheap, and (c) *order-sensitive exactly where the paper's semantics say
//! order matters*:
//!
//! * an **ordered** shared channel (the default — e.g. `CONSOLE` for a
//!   deterministic-output program) compares its write log as a sequence;
//! * a **commutative** channel (declared via the effects sidecar's
//!   `commutative` directive, or [`ModelConfig::commutative`]) compares
//!   its write log as a multiset — the paper's "any order of digests is a
//!   correct output" contract;
//! * a **per-instance** channel (the intrinsic table's `per_instance`
//!   marking) keeps one ordered log per instance key — operations on
//!   *different* instances commute, operations on the *same* instance do
//!   not.
//!
//! Return values are pure functions of `(intrinsic, args)` — plus a
//! bounded per-instance *stream countdown* for read-loop intrinsics, so
//! `while (more)` loops terminate identically under every schedule unless
//! two loop bodies were (unsoundly) allowed to share an instance — plus
//! an *observer* rule: an int-returning intrinsic that reads a
//! commutative channel (and has no stream) returns the number of writes
//! to that channel **visible to the calling worker**, the hook through
//! which relaxed visibility becomes observable.
//!
//! # Relaxed visibility (store buffering)
//!
//! With [`ModelConfig::sb_window`] set, each *section worker* gets a
//! store buffer: its writes to **commutative** channels are held privately
//! (read-own-writes) and drain to the shared log only once they age past
//! the window, measured in scheduling ticks — the model-world analogue of
//! TSO store buffers, in the spirit of the rely-guarantee weak-memory
//! treatment (wmm-rg). Ordered and per-instance channels are never
//! buffered (they are order-sensitive by contract, so the runtime must
//! fence them), and the main thread (worker 0) — hence also the
//! sequential oracle — always writes through. All buffers drain at
//! section end, so a relaxed run differs from an SC run *only* in what
//! observer reads saw mid-flight, never in the final write multisets.

use commset_ir::{EffectSig, IntrinsicTable};
use commset_lang::ast::Type;
use commset_runtime::Value;
use std::collections::{BTreeMap, BTreeSet};

/// Splittable 64-bit mixer (same finalizer as `SplitMix64`).
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn hash_call(name: &str, args: &[Value]) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for b in name.bytes() {
        h = mix64(h ^ u64::from(b));
    }
    for a in args {
        let bits = match a {
            Value::Int(i) => *i as u64,
            Value::Float(f) => f.to_bits(),
        };
        h = mix64(h ^ bits);
    }
    h
}

/// Tuning knobs of the model world.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Value returned by *size queries* (argument-less, effect-free,
    /// int-returning intrinsics such as `file_count()`): the checker's
    /// loop-bound. Small by design — schedule exploration is exponential
    /// in instances, not in data.
    pub size: i64,
    /// Per-instance stream length: int-returning intrinsics that *write*
    /// a per-instance channel return `1` this many times per instance key,
    /// then `0` — the model of `fread`-style "more data?" loops.
    pub stream_len: i64,
    /// Channels compared as multisets instead of sequences.
    pub commutative: BTreeSet<String>,
    /// Delta channels (sidecar `merge` rows): section workers' writes are
    /// *privatized* — parked in the worker's buffer on **every** parallel
    /// schedule, SC included, regardless of [`ModelConfig::sb_window`] —
    /// and drain only at the section barrier ([`ModelWorld::flush_all`]).
    /// This is the model of per-worker delta buffers: siblings never see
    /// a delta write mid-section, so a program whose correctness needs
    /// mid-section visibility (an order-sensitive merge mis-declared as
    /// commutative) diverges from the oracle on every schedule. Delta
    /// channels should also be in `commutative` (the coalesce order is a
    /// multiset contract).
    pub delta: BTreeSet<String>,
    /// Make *bare* world-intrinsic calls (outside commutative regions)
    /// visible scheduling events in the controlled executor. This models
    /// the sharded world's shard-acquisition points: with it on, the
    /// scheduler can hold one worker *at* a world call while others run —
    /// the schedule-space analogue of the torture suite's delay-inside-a
    /// -shard-hold fault plan. Off by default (region-only scheduling,
    /// the paper's granularity).
    pub pause_at_world_calls: bool,
    /// Store-buffer flush window for *this run*, in scheduling ticks:
    /// `Some(w)` buffers section workers' commutative-channel writes
    /// privately until they are `w` ticks old (the explorer sets this per
    /// relaxed schedule); `None` is sequential consistency. Worker 0 (the
    /// main thread, and therefore the sequential oracle) never buffers.
    pub sb_window: Option<usize>,
    /// Interpretation engine driving the checker's VMs (both the
    /// controlled schedules and the sequential oracle). Engines are
    /// report-invariant: identical visible events, identical final
    /// worlds, identical error strings.
    pub engine: commset_interp::Engine,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            size: 6,
            stream_len: 3,
            commutative: BTreeSet::new(),
            delta: BTreeSet::new(),
            pause_at_world_calls: false,
            sb_window: None,
            engine: commset_interp::Engine::Auto,
        }
    }
}

impl ModelConfig {
    /// A config with the given commutative channel names.
    pub fn with_commutative<'a>(chans: impl IntoIterator<Item = &'a str>) -> Self {
        ModelConfig {
            commutative: chans.into_iter().map(str::to_string).collect(),
            ..ModelConfig::default()
        }
    }
}

/// One recorded effect: the hash of `(intrinsic, args, stream state)`.
type Record = u64;

/// A commutative-channel write parked in a worker's store buffer.
#[derive(Debug, Clone)]
struct Pending {
    chan: String,
    rec: Record,
    /// Scheduling tick at which the write was issued.
    born: u64,
    /// Privatized delta write: never ages out, drains only at
    /// [`ModelWorld::flush_all`] (the section barrier).
    delta: bool,
}

/// The deterministic abstract world.
#[derive(Debug, Clone, Default)]
pub struct ModelWorld {
    cfg: ModelConfig,
    /// Shared ordered channels: append-only write logs.
    ordered: BTreeMap<String, Vec<Record>>,
    /// Commutative channels: write logs compared as multisets.
    commutative: BTreeMap<String, Vec<Record>>,
    /// Per-instance channels: one ordered log per instance key.
    per_instance: BTreeMap<String, BTreeMap<i64, Vec<Record>>>,
    /// Stream countdowns, keyed by (channel, instance key).
    streams: BTreeMap<(String, i64), i64>,
    /// The worker whose code is currently executing (0 = main thread).
    current: usize,
    /// Scheduling tick — advanced by the controlled executor at every
    /// scheduled event; store-buffer ages are measured in these.
    tick: u64,
    /// Per-worker store buffers (FIFO), populated only under
    /// [`ModelConfig::sb_window`] for section workers.
    pending: BTreeMap<usize, Vec<Pending>>,
}

impl ModelWorld {
    /// A fresh world under `cfg`.
    pub fn new(cfg: ModelConfig) -> Self {
        ModelWorld {
            cfg,
            ..Default::default()
        }
    }

    /// Sets the worker whose code the executor is about to run
    /// (0 = the main thread; section worker `i` is `i + 1`).
    pub fn set_worker(&mut self, worker: usize) {
        self.current = worker;
    }

    /// Advances the scheduling clock one tick and drains every buffered
    /// write that has aged past the store-buffer window. Workers drain in
    /// index order, each FIFO — deterministic for a given schedule.
    pub fn tick_advance(&mut self) {
        self.tick += 1;
        if let Some(w) = self.cfg.sb_window {
            let now = self.tick;
            for buf in self.pending.values_mut() {
                // Delta writes never age out (they drain only at the
                // barrier); aged store-buffered writes behind them still
                // drain in FIFO order.
                let mut i = 0;
                while i < buf.len() {
                    if !buf[i].delta && now - buf[i].born >= w as u64 {
                        let p = buf.remove(i);
                        self.commutative.entry(p.chan).or_default().push(p.rec);
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    /// Drains every store buffer to the shared log (section end / final
    /// barrier): after this, the write multisets are exactly what an SC
    /// run of the same schedule would have produced.
    pub fn flush_all(&mut self) {
        for (_, buf) in std::mem::take(&mut self.pending) {
            for p in buf {
                self.commutative.entry(p.chan).or_default().push(p.rec);
            }
        }
    }

    /// Writes to commutative channels visible to the current worker:
    /// everything in the shared log plus the worker's own buffer
    /// (read-own-writes; other workers' buffers are invisible).
    fn visible_commutative(&self, chan: &str) -> usize {
        let shared = self.commutative.get(chan).map_or(0, Vec::len);
        let own = self
            .pending
            .get(&self.current)
            .map_or(0, |buf| buf.iter().filter(|p| p.chan == chan).count());
        shared + own
    }

    /// True when this write should park in the current worker's store
    /// buffer instead of the shared log.
    fn buffers_writes(&self) -> bool {
        self.cfg.sb_window.is_some() && self.current != 0
    }

    /// Executes one intrinsic call: records its writes into the channel
    /// logs and returns its modeled value.
    ///
    /// Unknown intrinsics behave as pure hash functions (no channels).
    pub fn call(&mut self, table: &IntrinsicTable, name: &str, args: &[Value]) -> Value {
        let Some((_, sig)) = table.lookup(name) else {
            return Value::Int((hash_call(name, args) % 1009) as i64);
        };
        let sig = sig.clone();
        let key = args.first().map(|v| v.as_int()).unwrap_or(0);
        // Stream countdown: int-returning writer of a per-instance channel.
        let stream_chan = (sig.ret == Type::Int && !args.is_empty())
            .then(|| {
                sig.writes
                    .iter()
                    .find(|c| table.is_per_instance(**c))
                    .map(|c| table.channels.name(*c).to_string())
            })
            .flatten();
        let stream_state = stream_chan.as_ref().map(|chan| {
            let remaining = self
                .streams
                .entry((chan.clone(), key))
                .or_insert(self.cfg.stream_len);
            let state = *remaining;
            if *remaining > 0 {
                *remaining -= 1;
            }
            state
        });
        // Record the write: per-instance logs fold in the stream state so
        // same-instance interleavings are visible in the history.
        let rec = mix64(hash_call(name, args) ^ (stream_state.unwrap_or(0) as u64));
        for c in &sig.writes {
            let chan = table.channels.name(*c).to_string();
            if table.is_per_instance(*c) {
                self.per_instance
                    .entry(chan)
                    .or_default()
                    .entry(key)
                    .or_default()
                    .push(rec);
            } else if self.cfg.commutative.contains(&chan) {
                // Delta channels privatize on every schedule; plain
                // commutative channels park only under a store-buffer
                // window. Worker 0 (main thread / oracle) writes through.
                let privatize = self.current != 0 && self.cfg.delta.contains(&chan);
                if privatize || self.buffers_writes() {
                    self.pending.entry(self.current).or_default().push(Pending {
                        chan,
                        rec,
                        born: self.tick,
                        delta: privatize,
                    });
                } else {
                    self.commutative.entry(chan).or_default().push(rec);
                }
            } else {
                self.ordered.entry(chan).or_default().push(rec);
            }
        }
        self.model_return(table, name, args, &sig, stream_state)
    }

    fn model_return(
        &mut self,
        table: &IntrinsicTable,
        name: &str,
        args: &[Value],
        sig: &EffectSig,
        stream_state: Option<i64>,
    ) -> Value {
        match sig.ret {
            Type::Void => Value::Int(0),
            Type::Float => Value::Float((hash_call(name, args) % 1000) as f64),
            _ if table.is_fresh_handle(name) => {
                // A deterministic fresh handle per (intrinsic, args).
                Value::Int((hash_call(name, args) & 0x3fff_ffff) as i64 | 1)
            }
            Type::Int if stream_state.is_some() => {
                // "More data?" loop: 1 while the per-instance stream has
                // elements left, then 0.
                Value::Int(i64::from(stream_state.unwrap_or(0) > 0))
            }
            Type::Int
                if sig
                    .reads
                    .iter()
                    .any(|c| self.cfg.commutative.contains(table.channels.name(*c))) =>
            {
                // Observer: reads a commutative channel — return the
                // number of writes *visible to this worker* on the first
                // such channel. Under SC this is the shared count; under
                // store buffering, other workers' parked writes are
                // invisible, so staleness flows into the return value.
                let chan = sig
                    .reads
                    .iter()
                    .map(|c| table.channels.name(*c))
                    .find(|c| self.cfg.commutative.contains(*c))
                    .expect("guard found a commutative read channel");
                Value::Int(self.visible_commutative(chan) as i64)
            }
            Type::Int if args.is_empty() && sig.writes.is_empty() => {
                // Size query: the model's loop bound.
                Value::Int(self.cfg.size)
            }
            _ => Value::Int((hash_call(name, args) % 1009) as i64),
        }
    }

    /// Differences between this world and `other`, rendered as one line
    /// per divergent channel; empty means observationally equal.
    pub fn diff(&self, other: &ModelWorld) -> Vec<String> {
        let mut out = Vec::new();
        diff_ordered(&self.ordered, &other.ordered, &mut out);
        // Commutative channels: multiset compare.
        for name in keys_union(&self.commutative, &other.commutative) {
            let mut a = self.commutative.get(&name).cloned().unwrap_or_default();
            let mut b = other.commutative.get(&name).cloned().unwrap_or_default();
            a.sort_unstable();
            b.sort_unstable();
            if a != b {
                out.push(format!(
                    "channel {name}: write multisets differ ({} vs {} records)",
                    a.len(),
                    b.len()
                ));
            }
        }
        // Per-instance channels: ordered compare per key.
        for name in keys_union(&self.per_instance, &other.per_instance) {
            let empty = BTreeMap::new();
            let a = self.per_instance.get(&name).unwrap_or(&empty);
            let b = other.per_instance.get(&name).unwrap_or(&empty);
            for key in a.keys().chain(b.keys()).collect::<BTreeSet<_>>() {
                let la = a.get(key).cloned().unwrap_or_default();
                let lb = b.get(key).cloned().unwrap_or_default();
                if la != lb {
                    out.push(format!(
                        "channel {name}[{key}]: per-instance histories differ \
                         ({} vs {} records{})",
                        la.len(),
                        lb.len(),
                        first_divergence(&la, &lb)
                    ));
                }
            }
        }
        out
    }
}

fn keys_union<V>(a: &BTreeMap<String, V>, b: &BTreeMap<String, V>) -> Vec<String> {
    a.keys()
        .chain(b.keys())
        .cloned()
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect()
}

fn diff_ordered(
    a: &BTreeMap<String, Vec<Record>>,
    b: &BTreeMap<String, Vec<Record>>,
    out: &mut Vec<String>,
) {
    for name in keys_union(a, b) {
        let la = a.get(&name).cloned().unwrap_or_default();
        let lb = b.get(&name).cloned().unwrap_or_default();
        if la != lb {
            let mut sa = la.clone();
            let mut sb = lb.clone();
            sa.sort_unstable();
            sb.sort_unstable();
            let kind = if sa == sb {
                "same writes, different order"
            } else {
                "different writes"
            };
            out.push(format!(
                "channel {name}: ordered histories differ ({kind}{})",
                first_divergence(&la, &lb)
            ));
        }
    }
}

fn first_divergence(a: &[Record], b: &[Record]) -> String {
    match a.iter().zip(b.iter()).position(|(x, y)| x != y) {
        Some(i) => format!(", first divergence at record #{i}"),
        None => format!(", prefix of length {} agrees", a.len().min(b.len())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> IntrinsicTable {
        let mut t = IntrinsicTable::new();
        t.register("file_count", vec![], Type::Int, &[], &[], 1);
        t.register("fs_open", vec![Type::Int], Type::Handle, &[], &["FS"], 1);
        t.mark_fresh_handle("fs_open");
        t.register(
            "fs_read",
            vec![Type::Handle],
            Type::Int,
            &["FS"],
            &["FS"],
            1,
        );
        t.register("print", vec![Type::Int], Type::Void, &[], &["CONSOLE"], 1);
        t.mark_per_instance("FS");
        t
    }

    #[test]
    fn size_queries_and_fresh_handles_are_deterministic() {
        let t = table();
        let mut w = ModelWorld::new(ModelConfig::default());
        assert_eq!(w.call(&t, "file_count", &[]), Value::Int(6));
        let h1 = w.call(&t, "fs_open", &[Value::Int(0)]);
        let h2 = w.call(&t, "fs_open", &[Value::Int(1)]);
        assert_ne!(h1, h2, "distinct args yield distinct handles");
        let mut w2 = ModelWorld::new(ModelConfig::default());
        assert_eq!(w2.call(&t, "fs_open", &[Value::Int(0)]), h1);
    }

    #[test]
    fn streams_count_down_per_instance() {
        let t = table();
        let mut w = ModelWorld::new(ModelConfig::default());
        let h = Value::Int(42);
        for _ in 0..3 {
            assert_eq!(w.call(&t, "fs_read", &[h]), Value::Int(1));
        }
        assert_eq!(w.call(&t, "fs_read", &[h]), Value::Int(0));
        // A different instance has its own stream.
        assert_eq!(w.call(&t, "fs_read", &[Value::Int(7)]), Value::Int(1));
    }

    #[test]
    fn ordered_channel_detects_reordering_but_commutative_does_not() {
        let t = table();
        let run = |order: &[i64], commutative: bool| {
            let cfg = if commutative {
                ModelConfig::with_commutative(["CONSOLE"])
            } else {
                ModelConfig::default()
            };
            let mut w = ModelWorld::new(cfg);
            for &d in order {
                w.call(&t, "print", &[Value::Int(d)]);
            }
            w
        };
        let fwd = run(&[1, 2, 3], false);
        let rev = run(&[3, 2, 1], false);
        let d = fwd.diff(&rev);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].contains("same writes, different order"), "{d:?}");
        let fwd_c = run(&[1, 2, 3], true);
        let rev_c = run(&[3, 2, 1], true);
        assert!(fwd_c.diff(&rev_c).is_empty());
    }

    fn sb_table() -> IntrinsicTable {
        let mut t = IntrinsicTable::new();
        t.register("pub_a", vec![], Type::Void, &[], &["A"], 1);
        t.register("probe_a", vec![], Type::Int, &["A"], &[], 1);
        t
    }

    #[test]
    fn observer_reads_count_visible_commutative_writes() {
        let t = sb_table();
        let mut w = ModelWorld::new(ModelConfig::with_commutative(["A"]));
        assert_eq!(w.call(&t, "probe_a", &[]), Value::Int(0));
        w.call(&t, "pub_a", &[]);
        w.call(&t, "pub_a", &[]);
        assert_eq!(w.call(&t, "probe_a", &[]), Value::Int(2));
    }

    #[test]
    fn store_buffer_hides_other_workers_writes_within_the_window() {
        let t = sb_table();
        let mut cfg = ModelConfig::with_commutative(["A"]);
        cfg.sb_window = Some(2);
        let mut w = ModelWorld::new(cfg);
        // Worker 1 publishes; the write parks in its buffer.
        w.set_worker(1);
        w.call(&t, "pub_a", &[]);
        // Read-own-writes: worker 1 sees its parked write...
        assert_eq!(w.call(&t, "probe_a", &[]), Value::Int(1));
        // ...but worker 2 does not.
        w.set_worker(2);
        assert_eq!(w.call(&t, "probe_a", &[]), Value::Int(0));
        // One tick: still younger than the window.
        w.tick_advance();
        assert_eq!(w.call(&t, "probe_a", &[]), Value::Int(0));
        // Second tick: aged out, drained to the shared log.
        w.tick_advance();
        assert_eq!(w.call(&t, "probe_a", &[]), Value::Int(1));
    }

    #[test]
    fn main_thread_and_flush_all_write_through() {
        let t = sb_table();
        let mut cfg = ModelConfig::with_commutative(["A"]);
        cfg.sb_window = Some(8);
        let mut w = ModelWorld::new(cfg.clone());
        // Worker 0 (main) never buffers, even under a window.
        w.call(&t, "pub_a", &[]);
        w.set_worker(1);
        assert_eq!(w.call(&t, "probe_a", &[]), Value::Int(1));
        // A buffered write drains at the final barrier, so the ending
        // multiset matches an SC run of the same schedule.
        w.call(&t, "pub_a", &[]);
        let mut sc = ModelWorld::new(ModelConfig::with_commutative(["A"]));
        sc.call(&t, "pub_a", &[]);
        sc.call(&t, "pub_a", &[]);
        assert!(!w.diff(&sc).is_empty(), "parked write not yet shared");
        w.flush_all();
        assert!(w.diff(&sc).is_empty(), "{:?}", w.diff(&sc));
    }

    #[test]
    fn delta_channels_privatize_on_every_schedule() {
        let t = sb_table();
        let mut cfg = ModelConfig::with_commutative(["A"]);
        cfg.delta.insert("A".into());
        // No sb_window: this is an SC schedule — deltas privatize anyway.
        let mut w = ModelWorld::new(cfg.clone());
        w.set_worker(1);
        w.call(&t, "pub_a", &[]);
        assert_eq!(w.call(&t, "probe_a", &[]), Value::Int(1), "read-own-writes");
        w.set_worker(2);
        assert_eq!(w.call(&t, "probe_a", &[]), Value::Int(0), "siblings blind");
        // Scheduling ticks never drain a delta write...
        for _ in 0..16 {
            w.tick_advance();
        }
        assert_eq!(w.call(&t, "probe_a", &[]), Value::Int(0));
        // ...only the section barrier does.
        w.flush_all();
        assert_eq!(w.call(&t, "probe_a", &[]), Value::Int(1));
        // Worker 0 (main thread / oracle) writes through even on a delta
        // channel.
        let mut m = ModelWorld::new(cfg);
        m.call(&t, "pub_a", &[]);
        m.set_worker(1);
        assert_eq!(m.call(&t, "probe_a", &[]), Value::Int(1));
    }

    #[test]
    fn delta_writes_survive_a_store_buffer_drain_behind_them() {
        let t = sb_table();
        let mut cfg = ModelConfig::with_commutative(["A"]);
        cfg.delta.insert("A".into());
        cfg.sb_window = Some(1);
        let mut w = ModelWorld::new(cfg);
        w.set_worker(1);
        // A delta write parks first; it must not block (or be swept out
        // by) the aged store-buffer drain of later non-delta writes.
        w.call(&t, "pub_a", &[]);
        w.tick_advance();
        w.tick_advance();
        w.set_worker(2);
        assert_eq!(
            w.call(&t, "probe_a", &[]),
            Value::Int(0),
            "delta write stays private across ticks"
        );
        w.flush_all();
        assert_eq!(w.call(&t, "probe_a", &[]), Value::Int(1));
    }

    #[test]
    fn per_instance_histories_are_keyed() {
        let t = table();
        let mut a = ModelWorld::new(ModelConfig::default());
        let mut b = ModelWorld::new(ModelConfig::default());
        // Interleaving reads of *different* instances commutes...
        a.call(&t, "fs_read", &[Value::Int(1)]);
        a.call(&t, "fs_read", &[Value::Int(2)]);
        b.call(&t, "fs_read", &[Value::Int(2)]);
        b.call(&t, "fs_read", &[Value::Int(1)]);
        assert!(a.diff(&b).is_empty(), "{:?}", a.diff(&b));
        // ...but an extra read of the *same* instance shows up.
        a.call(&t, "fs_read", &[Value::Int(1)]);
        let d = a.diff(&b);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].contains("FS[1]"), "{d:?}");
    }
}
