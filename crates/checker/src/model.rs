//! The checker's abstract world model.
//!
//! The dynamic checker replays a program under many schedules and compares
//! the *observable effect history* against the sequential oracle. For that
//! it needs a world whose intrinsic semantics are (a) deterministic, (b)
//! cheap, and (c) *order-sensitive exactly where the paper's semantics say
//! order matters*:
//!
//! * an **ordered** shared channel (the default — e.g. `CONSOLE` for a
//!   deterministic-output program) compares its write log as a sequence;
//! * a **commutative** channel (declared via the effects sidecar's
//!   `commutative` directive, or [`ModelConfig::commutative`]) compares
//!   its write log as a multiset — the paper's "any order of digests is a
//!   correct output" contract;
//! * a **per-instance** channel (the intrinsic table's `per_instance`
//!   marking) keeps one ordered log per instance key — operations on
//!   *different* instances commute, operations on the *same* instance do
//!   not.
//!
//! Return values are pure functions of `(intrinsic, args)` — plus a
//! bounded per-instance *stream countdown* for read-loop intrinsics, so
//! `while (more)` loops terminate identically under every schedule unless
//! two loop bodies were (unsoundly) allowed to share an instance.

use commset_ir::{EffectSig, IntrinsicTable};
use commset_lang::ast::Type;
use commset_runtime::Value;
use std::collections::{BTreeMap, BTreeSet};

/// Splittable 64-bit mixer (same finalizer as `SplitMix64`).
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn hash_call(name: &str, args: &[Value]) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for b in name.bytes() {
        h = mix64(h ^ u64::from(b));
    }
    for a in args {
        let bits = match a {
            Value::Int(i) => *i as u64,
            Value::Float(f) => f.to_bits(),
        };
        h = mix64(h ^ bits);
    }
    h
}

/// Tuning knobs of the model world.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Value returned by *size queries* (argument-less, effect-free,
    /// int-returning intrinsics such as `file_count()`): the checker's
    /// loop-bound. Small by design — schedule exploration is exponential
    /// in instances, not in data.
    pub size: i64,
    /// Per-instance stream length: int-returning intrinsics that *write*
    /// a per-instance channel return `1` this many times per instance key,
    /// then `0` — the model of `fread`-style "more data?" loops.
    pub stream_len: i64,
    /// Channels compared as multisets instead of sequences.
    pub commutative: BTreeSet<String>,
    /// Make *bare* world-intrinsic calls (outside commutative regions)
    /// visible scheduling events in the controlled executor. This models
    /// the sharded world's shard-acquisition points: with it on, the
    /// scheduler can hold one worker *at* a world call while others run —
    /// the schedule-space analogue of the torture suite's delay-inside-a
    /// -shard-hold fault plan. Off by default (region-only scheduling,
    /// the paper's granularity).
    pub pause_at_world_calls: bool,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            size: 6,
            stream_len: 3,
            commutative: BTreeSet::new(),
            pause_at_world_calls: false,
        }
    }
}

impl ModelConfig {
    /// A config with the given commutative channel names.
    pub fn with_commutative<'a>(chans: impl IntoIterator<Item = &'a str>) -> Self {
        ModelConfig {
            commutative: chans.into_iter().map(str::to_string).collect(),
            ..ModelConfig::default()
        }
    }
}

/// One recorded effect: the hash of `(intrinsic, args, stream state)`.
type Record = u64;

/// The deterministic abstract world.
#[derive(Debug, Clone, Default)]
pub struct ModelWorld {
    cfg: ModelConfig,
    /// Shared ordered channels: append-only write logs.
    ordered: BTreeMap<String, Vec<Record>>,
    /// Commutative channels: write logs compared as multisets.
    commutative: BTreeMap<String, Vec<Record>>,
    /// Per-instance channels: one ordered log per instance key.
    per_instance: BTreeMap<String, BTreeMap<i64, Vec<Record>>>,
    /// Stream countdowns, keyed by (channel, instance key).
    streams: BTreeMap<(String, i64), i64>,
}

impl ModelWorld {
    /// A fresh world under `cfg`.
    pub fn new(cfg: ModelConfig) -> Self {
        ModelWorld {
            cfg,
            ..Default::default()
        }
    }

    /// Executes one intrinsic call: records its writes into the channel
    /// logs and returns its modeled value.
    ///
    /// Unknown intrinsics behave as pure hash functions (no channels).
    pub fn call(&mut self, table: &IntrinsicTable, name: &str, args: &[Value]) -> Value {
        let Some((_, sig)) = table.lookup(name) else {
            return Value::Int((hash_call(name, args) % 1009) as i64);
        };
        let sig = sig.clone();
        let key = args.first().map(|v| v.as_int()).unwrap_or(0);
        // Stream countdown: int-returning writer of a per-instance channel.
        let stream_chan = (sig.ret == Type::Int && !args.is_empty())
            .then(|| {
                sig.writes
                    .iter()
                    .find(|c| table.is_per_instance(**c))
                    .map(|c| table.channels.name(*c).to_string())
            })
            .flatten();
        let stream_state = stream_chan.as_ref().map(|chan| {
            let remaining = self
                .streams
                .entry((chan.clone(), key))
                .or_insert(self.cfg.stream_len);
            let state = *remaining;
            if *remaining > 0 {
                *remaining -= 1;
            }
            state
        });
        // Record the write: per-instance logs fold in the stream state so
        // same-instance interleavings are visible in the history.
        let rec = mix64(hash_call(name, args) ^ (stream_state.unwrap_or(0) as u64));
        for c in &sig.writes {
            let chan = table.channels.name(*c).to_string();
            if table.is_per_instance(*c) {
                self.per_instance
                    .entry(chan)
                    .or_default()
                    .entry(key)
                    .or_default()
                    .push(rec);
            } else if self.cfg.commutative.contains(&chan) {
                self.commutative.entry(chan).or_default().push(rec);
            } else {
                self.ordered.entry(chan).or_default().push(rec);
            }
        }
        self.model_return(table, name, args, &sig, stream_state)
    }

    fn model_return(
        &mut self,
        table: &IntrinsicTable,
        name: &str,
        args: &[Value],
        sig: &EffectSig,
        stream_state: Option<i64>,
    ) -> Value {
        match sig.ret {
            Type::Void => Value::Int(0),
            Type::Float => Value::Float((hash_call(name, args) % 1000) as f64),
            _ if table.is_fresh_handle(name) => {
                // A deterministic fresh handle per (intrinsic, args).
                Value::Int((hash_call(name, args) & 0x3fff_ffff) as i64 | 1)
            }
            Type::Int if args.is_empty() && sig.writes.is_empty() => {
                // Size query: the model's loop bound.
                Value::Int(self.cfg.size)
            }
            Type::Int if stream_state.is_some() => {
                // "More data?" loop: 1 while the per-instance stream has
                // elements left, then 0.
                Value::Int(i64::from(stream_state.unwrap_or(0) > 0))
            }
            _ => Value::Int((hash_call(name, args) % 1009) as i64),
        }
    }

    /// Differences between this world and `other`, rendered as one line
    /// per divergent channel; empty means observationally equal.
    pub fn diff(&self, other: &ModelWorld) -> Vec<String> {
        let mut out = Vec::new();
        diff_ordered(&self.ordered, &other.ordered, &mut out);
        // Commutative channels: multiset compare.
        for name in keys_union(&self.commutative, &other.commutative) {
            let mut a = self.commutative.get(&name).cloned().unwrap_or_default();
            let mut b = other.commutative.get(&name).cloned().unwrap_or_default();
            a.sort_unstable();
            b.sort_unstable();
            if a != b {
                out.push(format!(
                    "channel {name}: write multisets differ ({} vs {} records)",
                    a.len(),
                    b.len()
                ));
            }
        }
        // Per-instance channels: ordered compare per key.
        for name in keys_union(&self.per_instance, &other.per_instance) {
            let empty = BTreeMap::new();
            let a = self.per_instance.get(&name).unwrap_or(&empty);
            let b = other.per_instance.get(&name).unwrap_or(&empty);
            for key in a.keys().chain(b.keys()).collect::<BTreeSet<_>>() {
                let la = a.get(key).cloned().unwrap_or_default();
                let lb = b.get(key).cloned().unwrap_or_default();
                if la != lb {
                    out.push(format!(
                        "channel {name}[{key}]: per-instance histories differ \
                         ({} vs {} records{})",
                        la.len(),
                        lb.len(),
                        first_divergence(&la, &lb)
                    ));
                }
            }
        }
        out
    }
}

fn keys_union<V>(a: &BTreeMap<String, V>, b: &BTreeMap<String, V>) -> Vec<String> {
    a.keys()
        .chain(b.keys())
        .cloned()
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect()
}

fn diff_ordered(
    a: &BTreeMap<String, Vec<Record>>,
    b: &BTreeMap<String, Vec<Record>>,
    out: &mut Vec<String>,
) {
    for name in keys_union(a, b) {
        let la = a.get(&name).cloned().unwrap_or_default();
        let lb = b.get(&name).cloned().unwrap_or_default();
        if la != lb {
            let mut sa = la.clone();
            let mut sb = lb.clone();
            sa.sort_unstable();
            sb.sort_unstable();
            let kind = if sa == sb {
                "same writes, different order"
            } else {
                "different writes"
            };
            out.push(format!(
                "channel {name}: ordered histories differ ({kind}{})",
                first_divergence(&la, &lb)
            ));
        }
    }
}

fn first_divergence(a: &[Record], b: &[Record]) -> String {
    match a.iter().zip(b.iter()).position(|(x, y)| x != y) {
        Some(i) => format!(", first divergence at record #{i}"),
        None => format!(", prefix of length {} agrees", a.len().min(b.len())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> IntrinsicTable {
        let mut t = IntrinsicTable::new();
        t.register("file_count", vec![], Type::Int, &[], &[], 1);
        t.register("fs_open", vec![Type::Int], Type::Handle, &[], &["FS"], 1);
        t.mark_fresh_handle("fs_open");
        t.register(
            "fs_read",
            vec![Type::Handle],
            Type::Int,
            &["FS"],
            &["FS"],
            1,
        );
        t.register("print", vec![Type::Int], Type::Void, &[], &["CONSOLE"], 1);
        t.mark_per_instance("FS");
        t
    }

    #[test]
    fn size_queries_and_fresh_handles_are_deterministic() {
        let t = table();
        let mut w = ModelWorld::new(ModelConfig::default());
        assert_eq!(w.call(&t, "file_count", &[]), Value::Int(6));
        let h1 = w.call(&t, "fs_open", &[Value::Int(0)]);
        let h2 = w.call(&t, "fs_open", &[Value::Int(1)]);
        assert_ne!(h1, h2, "distinct args yield distinct handles");
        let mut w2 = ModelWorld::new(ModelConfig::default());
        assert_eq!(w2.call(&t, "fs_open", &[Value::Int(0)]), h1);
    }

    #[test]
    fn streams_count_down_per_instance() {
        let t = table();
        let mut w = ModelWorld::new(ModelConfig::default());
        let h = Value::Int(42);
        for _ in 0..3 {
            assert_eq!(w.call(&t, "fs_read", &[h]), Value::Int(1));
        }
        assert_eq!(w.call(&t, "fs_read", &[h]), Value::Int(0));
        // A different instance has its own stream.
        assert_eq!(w.call(&t, "fs_read", &[Value::Int(7)]), Value::Int(1));
    }

    #[test]
    fn ordered_channel_detects_reordering_but_commutative_does_not() {
        let t = table();
        let run = |order: &[i64], commutative: bool| {
            let cfg = if commutative {
                ModelConfig::with_commutative(["CONSOLE"])
            } else {
                ModelConfig::default()
            };
            let mut w = ModelWorld::new(cfg);
            for &d in order {
                w.call(&t, "print", &[Value::Int(d)]);
            }
            w
        };
        let fwd = run(&[1, 2, 3], false);
        let rev = run(&[3, 2, 1], false);
        let d = fwd.diff(&rev);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].contains("same writes, different order"), "{d:?}");
        let fwd_c = run(&[1, 2, 3], true);
        let rev_c = run(&[3, 2, 1], true);
        assert!(fwd_c.diff(&rev_c).is_empty());
    }

    #[test]
    fn per_instance_histories_are_keyed() {
        let t = table();
        let mut a = ModelWorld::new(ModelConfig::default());
        let mut b = ModelWorld::new(ModelConfig::default());
        // Interleaving reads of *different* instances commutes...
        a.call(&t, "fs_read", &[Value::Int(1)]);
        a.call(&t, "fs_read", &[Value::Int(2)]);
        b.call(&t, "fs_read", &[Value::Int(2)]);
        b.call(&t, "fs_read", &[Value::Int(1)]);
        assert!(a.diff(&b).is_empty(), "{:?}", a.diff(&b));
        // ...but an extra read of the *same* instance shows up.
        a.call(&t, "fs_read", &[Value::Int(1)]);
        let d = a.diff(&b);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].contains("FS[1]"), "{d:?}");
    }
}
