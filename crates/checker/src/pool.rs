//! A deterministic work-stealing pool for schedule exploration.
//!
//! The schedule family is partitioned into fixed-size chunks of
//! [`PARTITION_CHUNK`] consecutive spec indices. The partition plan is a
//! pure function of the campaign size — it never depends on the number of
//! worker threads — so the partition index attached to every outcome (and
//! printed on `REPLAY:` lines) is stable across `--jobs` values.
//!
//! Workers "steal" by claiming the next unclaimed partition from a shared
//! atomic counter: a worker that finishes early immediately takes more
//! work, so a straggler partition cannot idle the rest of the pool.
//! Results are written into per-index slots and merged in spec order,
//! which is what makes a `--jobs 8` report byte-identical to `--jobs 1`.

use crate::explore::{Campaign, ScheduleOutcome};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Specs per partition. Small enough that stealing balances uneven
/// schedules, large enough to amortize claim traffic.
pub const PARTITION_CHUNK: usize = 8;

/// The partition that owns spec `index`.
pub fn partition_of(index: usize) -> usize {
    index / PARTITION_CHUNK
}

/// The partition plan for a campaign of `total` specs: contiguous
/// half-open ranges, every spec covered exactly once.
pub fn partition_plan(total: usize) -> Vec<Range<usize>> {
    (0..total.div_ceil(PARTITION_CHUNK))
        .map(|p| p * PARTITION_CHUNK..((p + 1) * PARTITION_CHUNK).min(total))
        .collect()
}

/// Runs `f(0..n)` across `jobs` OS threads and returns the results in
/// index order. `jobs <= 1` (or a single item) runs inline with no thread
/// overhead. `f` must be pure in its index for the pool to be
/// deterministic — which every campaign closure is, because the model
/// world is.
pub fn run_indexed<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                *slots[i].lock().expect("pool slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("pool slot poisoned")
                .expect("every index claimed exactly once")
        })
        .collect()
}

/// Explores every schedule in the campaign across
/// [`crate::explore::CheckConfig::jobs`] threads, returning outcomes in
/// spec order regardless of which worker ran what.
pub fn run_specs(campaign: &Campaign) -> Vec<ScheduleOutcome> {
    let total = campaign.specs().len();
    let plan = partition_plan(total);
    let per_partition = run_indexed(campaign.cfg().jobs, plan.len(), |p| {
        plan[p]
            .clone()
            .map(|i| campaign.run_spec(i))
            .collect::<Vec<_>>()
    });
    per_partition.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_plan_covers_every_index_once() {
        for total in [0usize, 1, 7, 8, 9, 24, 240] {
            let plan = partition_plan(total);
            let flat: Vec<usize> = plan.iter().cloned().flatten().collect();
            assert_eq!(flat, (0..total).collect::<Vec<_>>(), "total={total}");
            for r in &plan {
                assert!(r.len() <= PARTITION_CHUNK);
                assert!(!r.is_empty());
            }
        }
    }

    #[test]
    fn partition_of_matches_the_plan() {
        let plan = partition_plan(100);
        for (p, range) in plan.iter().enumerate() {
            for i in range.clone() {
                assert_eq!(partition_of(i), p);
            }
        }
    }

    #[test]
    fn run_indexed_is_order_preserving_for_any_job_count() {
        let f = |i: usize| i * i + 1;
        let expect: Vec<usize> = (0..53).map(f).collect();
        for jobs in [1usize, 2, 4, 8, 64] {
            assert_eq!(run_indexed(jobs, 53, f), expect, "jobs={jobs}");
        }
    }

    #[test]
    fn run_indexed_handles_empty_and_tiny_inputs() {
        assert_eq!(run_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(4, 1, |i| i + 7), vec![7]);
    }
}
