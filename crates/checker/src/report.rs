//! Checker verdicts and their rendering.
//!
//! The explorer condenses a whole schedule campaign into a
//! [`CheckReport`]: the verdict, the commutative-region catalog the
//! analysis exported, the (deterministic) list of explored schedules, and
//! — when anything diverged — the full list of violating schedules with
//! their partition indices. A failure pinpoints the first schedule whose
//! observable history diverged from the sequential oracle and
//! pretty-prints both interleavings, the first divergent region pair —
//! the paper's "which two members did not commute" feedback — a
//! locally-minimal shrunk schedule, and one `REPLAY:` line that names the
//! exact knobs (`--seed`, `--budget`, `--jobs`, `--threads`) that
//! reproduce the violation byte-for-byte.

use crate::exec::RegionExec;
use crate::shrink::ShrunkSchedule;
use commset_analysis::RegionInfo;
use commset_telemetry::ChromeTraceBuilder;

/// Why a schedule's outcome differed from the oracle.
#[derive(Debug, Clone)]
pub struct CheckFailure {
    /// The parallelization scheme under test (e.g. `DOALL`).
    pub scheme: String,
    /// The offending schedule's name (e.g. `delay(w1,2)`).
    pub schedule: String,
    /// The partition (fixed-size chunk of the schedule family) the
    /// offending schedule belongs to — stable across `--jobs` values.
    pub partition: usize,
    /// Channel-by-channel (and global-by-global) differences vs. the
    /// sequential oracle; empty iff `error` is set.
    pub diffs: Vec<String>,
    /// The canonical schedule's region interleaving, rendered.
    pub canonical: String,
    /// The failing schedule's region interleaving, rendered.
    pub failing: String,
    /// The canonical interleaving's raw region log (position order).
    pub canonical_log: Vec<RegionExec>,
    /// The failing interleaving's raw region log (position order).
    pub failing_log: Vec<RegionExec>,
    /// The first position where the two interleavings diverge, with the
    /// region instances on each side — the non-commuting suspect pair.
    pub suspect: Option<(usize, RegionExec, RegionExec)>,
    /// A locally-minimal schedule that still reproduces the divergence
    /// (absent for aborting schedules or when shrinking could not
    /// reproduce the failure).
    pub shrunk: Option<ShrunkSchedule>,
    /// Set if the schedule aborted (deadlock, budget, dynamic error)
    /// rather than completing with a different history.
    pub error: Option<String>,
}

impl CheckFailure {
    /// Exports the two interleavings as one Chrome trace-event JSON
    /// document (loadable in `chrome://tracing` or
    /// <https://ui.perfetto.dev>): process 0 is the canonical schedule,
    /// process 1 the failing one, each worker a thread, and each region
    /// instance a unit-duration slice at its position index — so the two
    /// timelines line up and the divergence is visible at a glance.
    pub fn chrome_trace_json(&self) -> String {
        let mut b = ChromeTraceBuilder::new();
        let failing = format!("failing schedule `{}`", self.schedule);
        let sides = [
            (0u64, "canonical schedule", &self.canonical_log),
            (1u64, failing.as_str(), &self.failing_log),
        ];
        for (pid, name, log) in &sides {
            b.meta_process_name(*pid, name);
            let workers: std::collections::BTreeSet<usize> = log.iter().map(|r| r.worker).collect();
            for w in workers {
                b.meta_thread_name(*pid, w as u64, &format!("worker {w}"));
            }
        }
        for (pid, _, log) in &sides {
            for (pos, r) in log.iter().enumerate() {
                let args = r
                    .args
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                b.complete(
                    *pid,
                    r.worker as u64,
                    &format!("{}({args})", r.func),
                    "region",
                    pos as f64,
                    1.0,
                );
            }
        }
        b.finish()
    }
}

/// The explorer's overall verdict.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Every explored schedule reproduced the sequential history.
    Pass {
        /// The scheme that was explored.
        scheme: String,
        /// How many schedules were run.
        schedules: usize,
    },
    /// Some schedule diverged (or crashed).
    Fail(Box<CheckFailure>),
    /// No parallelizing transform applies — nothing to check.
    Skipped {
        /// The transform's applicability diagnostic.
        reason: String,
    },
}

/// One violating schedule in the merged report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The schedule's name.
    pub schedule: String,
    /// The partition that owned it.
    pub partition: usize,
}

/// The exact knobs that reproduce a failing campaign byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayInfo {
    /// The chaos seed.
    pub seed: u64,
    /// The schedule budget.
    pub budget: usize,
    /// Checker threads the campaign ran with (cosmetic: any value
    /// reproduces the same report).
    pub jobs: usize,
    /// Workers in the transformed program.
    pub threads: usize,
    /// Partition of the primary violation.
    pub partition: usize,
    /// Name of the primary violating schedule.
    pub schedule: String,
}

impl std::fmt::Display for ReplayInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "REPLAY: --seed {:#x} --budget {} --threads {} --jobs {} (partition {}, schedule `{}`)",
            self.seed, self.budget, self.threads, self.jobs, self.partition, self.schedule
        )
    }
}

/// The full campaign result.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// The verdict.
    pub verdict: Verdict,
    /// The commutative-region catalog (one row per set membership).
    pub regions: Vec<RegionInfo>,
    /// Names of the schedules explored, in execution order.
    pub explored: Vec<String>,
    /// Every violating schedule (empty on pass/skip) — the merged view
    /// across all partitions, in spec order.
    pub violations: Vec<Violation>,
    /// Reproduction knobs; present exactly when the campaign failed.
    pub replay: Option<ReplayInfo>,
}

impl CheckReport {
    /// True if the verdict is [`Verdict::Pass`].
    pub fn is_pass(&self) -> bool {
        matches!(self.verdict, Verdict::Pass { .. })
    }

    /// True if the verdict is [`Verdict::Fail`].
    pub fn is_fail(&self) -> bool {
        matches!(self.verdict, Verdict::Fail(_))
    }

    /// The set a region function belongs to, per the catalog.
    fn set_of(&self, func: &str) -> Option<&RegionInfo> {
        self.regions.iter().find(|r| r.func == func)
    }
}

impl std::fmt::Display for CheckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.verdict {
            Verdict::Pass { scheme, schedules } => {
                writeln!(
                    f,
                    "PASS: {schedules} schedules of the {scheme} transform \
                     reproduce the sequential history"
                )?;
            }
            Verdict::Skipped { reason } => {
                writeln!(f, "SKIPPED: no parallelizing transform applies")?;
                writeln!(f, "  {reason}")?;
            }
            Verdict::Fail(fail) => {
                writeln!(
                    f,
                    "FAIL: schedule `{}` of the {} transform diverges from \
                     the sequential oracle",
                    fail.schedule, fail.scheme
                )?;
                if let Some(err) = &fail.error {
                    writeln!(f, "  schedule aborted: {err}")?;
                }
                for d in &fail.diffs {
                    writeln!(f, "  {d}")?;
                }
                if let Some((pos, a, b)) = &fail.suspect {
                    writeln!(f, "suspect pair (first divergence, position #{pos}):")?;
                    for (side, r) in [("canonical", a), ("failing  ", b)] {
                        match self.set_of(&r.func) {
                            Some(info) => writeln!(
                                f,
                                "  {side}: {r}   [set {} at line {}]",
                                info.set_name, info.origin_line
                            )?,
                            None => writeln!(f, "  {side}: {r}")?,
                        }
                    }
                }
                if !fail.canonical.is_empty() {
                    writeln!(f, "canonical interleaving:")?;
                    f.write_str(&fail.canonical)?;
                }
                if !fail.failing.is_empty() {
                    writeln!(f, "failing interleaving ({}):", fail.schedule)?;
                    f.write_str(&fail.failing)?;
                }
                if let Some(s) = &fail.shrunk {
                    writeln!(
                        f,
                        "shrunk: {} of {} scheduling decisions pinned \
                         (locally minimal, from `{}`):",
                        s.pinned, s.total, s.from
                    )?;
                    f.write_str(&s.interleaving)?;
                }
                if !self.violations.is_empty() {
                    writeln!(
                        f,
                        "violating schedules ({} of {}):",
                        self.violations.len(),
                        self.explored.len()
                    )?;
                    for v in &self.violations {
                        writeln!(f, "  {} (partition {})", v.schedule, v.partition)?;
                    }
                }
            }
        }
        if !self.regions.is_empty() {
            writeln!(f, "regions under test:")?;
            for r in &self.regions {
                writeln!(
                    f,
                    "  {} in {} ({}{}{}) line {}",
                    r.func,
                    r.set_name,
                    r.kind,
                    if r.predicated { ", predicated" } else { "" },
                    if r.nosync { ", nosync" } else { "" },
                    r.origin_line
                )?;
            }
        }
        writeln!(f, "explored: {}", self.explored.join(", "))?;
        if let Some(replay) = &self.replay {
            writeln!(f, "{replay}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commset_runtime::Value;

    fn region(worker: usize, func: &str, arg: i64) -> RegionExec {
        RegionExec {
            worker,
            func: func.to_string(),
            args: vec![Value::Int(arg)],
        }
    }

    #[test]
    fn fail_report_renders_suspect_pair_and_interleavings() {
        let report = CheckReport {
            verdict: Verdict::Fail(Box::new(CheckFailure {
                scheme: "DOALL".into(),
                schedule: "reverse".into(),
                partition: 0,
                diffs: vec!["channel CONSOLE: ordered histories differ".into()],
                canonical: "  [w0] __commset_region_0(0)\n".into(),
                failing: "  [w1] __commset_region_0(1)\n".into(),
                canonical_log: vec![region(0, "__commset_region_0", 0)],
                failing_log: vec![region(1, "__commset_region_0", 1)],
                suspect: Some((
                    0,
                    region(0, "__commset_region_0", 0),
                    region(1, "__commset_region_0", 1),
                )),
                shrunk: Some(ShrunkSchedule {
                    from: "reverse".into(),
                    total: 5,
                    pinned: 1,
                    interleaving: "  [w1] __commset_region_0(1)\n".into(),
                    log: vec![region(1, "__commset_region_0", 1)],
                }),
                error: None,
            })),
            regions: vec![RegionInfo {
                func: "__commset_region_0".into(),
                set_name: "FSET".into(),
                kind: "Group",
                predicated: true,
                predicate_func: Some("__pred_FSET".into()),
                arg_params: vec![0],
                nosync: false,
                origin_line: 7,
            }],
            explored: vec!["canonical".into(), "reverse".into()],
            violations: vec![Violation {
                schedule: "reverse".into(),
                partition: 0,
            }],
            replay: Some(ReplayInfo {
                seed: 0x5eed_c0de,
                budget: 24,
                jobs: 1,
                threads: 2,
                partition: 0,
                schedule: "reverse".into(),
            }),
        };
        assert!(report.is_fail());
        let text = report.to_string();
        assert!(text.contains("FAIL"), "{text}");
        assert!(text.contains("suspect pair"), "{text}");
        assert!(text.contains("set FSET at line 7"), "{text}");
        assert!(text.contains("canonical interleaving"), "{text}");
        assert!(
            text.contains("shrunk: 1 of 5 scheduling decisions"),
            "{text}"
        );
        assert!(text.contains("violating schedules (1 of 2):"), "{text}");
        assert!(text.contains("explored: canonical, reverse"), "{text}");
        assert!(
            text.contains("REPLAY: --seed 0x5eedc0de --budget 24 --threads 2 --jobs 1"),
            "{text}"
        );
    }

    #[test]
    fn failure_exports_both_interleavings_as_chrome_trace() {
        let fail = CheckFailure {
            scheme: "DOALL".into(),
            schedule: "reverse".into(),
            partition: 0,
            diffs: vec![],
            canonical: String::new(),
            failing: String::new(),
            canonical_log: vec![
                region(0, "__commset_region_0", 0),
                region(1, "__commset_region_0", 1),
            ],
            failing_log: vec![
                region(1, "__commset_region_0", 1),
                region(0, "__commset_region_0", 0),
            ],
            suspect: None,
            shrunk: None,
            error: None,
        };
        let doc = fail.chrome_trace_json();
        assert!(doc.starts_with("{\"traceEvents\": ["), "{doc}");
        assert!(doc.contains("\"canonical schedule\""), "{doc}");
        assert!(doc.contains("failing schedule `reverse`"), "{doc}");
        // Two sides x two regions = four complete events, plus metadata.
        let slices = doc.lines().filter(|l| l.contains("\"ph\": \"X\"")).count();
        assert_eq!(slices, 4, "{doc}");
        assert!(doc.contains("\"pid\": 1"), "{doc}");
        assert!(doc.contains("__commset_region_0(1)"), "{doc}");
    }

    #[test]
    fn pass_and_skip_render_one_line_verdicts() {
        let pass = CheckReport {
            verdict: Verdict::Pass {
                scheme: "PS-DSWP".into(),
                schedules: 24,
            },
            regions: vec![],
            explored: vec!["canonical".into()],
            violations: vec![],
            replay: None,
        };
        assert!(pass.is_pass());
        assert!(pass.to_string().starts_with("PASS: 24 schedules"));
        assert!(!pass.to_string().contains("REPLAY:"));
        let skip = CheckReport {
            verdict: Verdict::Skipped {
                reason: "DOALL illegal".into(),
            },
            regions: vec![],
            explored: vec![],
            violations: vec![],
            replay: None,
        };
        assert!(!skip.is_pass() && !skip.is_fail());
        assert!(skip.to_string().contains("SKIPPED"));
    }
}
