//! Counterexample shrinking: minimize a violating schedule before
//! rendering it.
//!
//! A delay-grid or chaos schedule that exposes a violation usually
//! contains many scheduling decisions that are irrelevant to the bug.
//! The shrinker re-runs the failing spec under a [`Recording`] scheduler
//! to capture its decision trace, then greedily canonicalizes one
//! decision at a time (replacing it with "pick the lowest-numbered ready
//! worker") and keeps each flip that still reproduces the divergence.
//! The loop runs to a fixed point, so the result is *locally minimal*:
//! re-canonicalizing any single remaining pinned decision makes the
//! violation disappear.
//!
//! Everything here is deterministic — the model world and the [`Replay`]
//! scheduler are — so shrinking the same failure twice yields the same
//! minimal schedule, which is what makes the shrunk diagnostic goldenable.

use crate::exec::{render_interleaving, Recording, RegionExec, Replay};
use crate::explore::Campaign;

/// A locally-minimal reproduction of a schedule violation.
#[derive(Debug, Clone, PartialEq)]
pub struct ShrunkSchedule {
    /// The schedule the shrinker started from.
    pub from: String,
    /// Total scheduling decisions in the recorded trace.
    pub total: usize,
    /// Decisions still pinned to the original (non-canonical) choice;
    /// the rest were canonicalized away.
    pub pinned: usize,
    /// The minimal schedule's region interleaving, rendered.
    pub interleaving: String,
    /// The minimal schedule's region log.
    pub log: Vec<RegionExec>,
}

/// Runs the decision list and reports the divergence it still produces,
/// if any. Aborting runs do not count as reproductions: we shrink a
/// *divergence*, and trading it for a deadlock changes the bug.
fn still_diverges(
    campaign: &Campaign,
    window: Option<usize>,
    decisions: &[Option<usize>],
) -> Option<Vec<RegionExec>> {
    let mut replay = Replay::new(decisions.to_vec());
    match campaign.run_with_scheduler(window, &mut replay) {
        Ok((diffs, log)) if !diffs.is_empty() => Some(log),
        _ => None,
    }
}

/// Shrinks the violating spec at `index` to a locally-minimal schedule.
/// Returns `None` if the failure does not reproduce under recording
/// (which would indicate nondeterminism and deserves the raw report).
pub fn shrink_schedule(campaign: &Campaign, index: usize) -> Option<ShrunkSchedule> {
    let spec = &campaign.specs()[index];
    let mut base = spec.instantiate();
    let mut recording = Recording::new(base.as_mut());
    let reproduced = match campaign.run_with_scheduler(spec.window, &mut recording) {
        Ok((diffs, _)) => !diffs.is_empty(),
        Err(_) => false,
    };
    let trace = recording.trace;
    if !reproduced {
        return None;
    }

    let mut decisions: Vec<Option<usize>> = trace.into_iter().map(Some).collect();
    let mut log = still_diverges(campaign, spec.window, &decisions)?;

    // Greedy canonicalization to a fixed point. Each pass tries to drop
    // every remaining pinned decision once; a successful drop can unlock
    // earlier ones, hence the outer loop.
    loop {
        let mut changed = false;
        for i in 0..decisions.len() {
            if decisions[i].is_none() {
                continue;
            }
            let saved = decisions[i].take();
            match still_diverges(campaign, spec.window, &decisions) {
                Some(new_log) => {
                    log = new_log;
                    changed = true;
                }
                None => decisions[i] = saved,
            }
        }
        if !changed {
            break;
        }
    }

    Some(ShrunkSchedule {
        from: spec.name(),
        total: decisions.len(),
        pinned: decisions.iter().filter(|d| d.is_some()).count(),
        interleaving: render_interleaving(&log),
        log,
    })
}
