//! Checker self-tests: the negative fixtures must be flagged, the
//! positive fixtures must pass (or conservatively skip), and the whole
//! campaign must be deterministic per seed. These run as part of plain
//! `cargo test`, so any regression in CommSetDepAnalysis or the
//! transforms that silently legalizes an unsound schedule fails CI.

use commset_checker::{
    check_source, fuzz_annotations, prepare_campaign, CheckConfig, ModelConfig, PreparedCampaign,
    Recording, Verdict,
};
use commset_ir::IntrinsicTable;
use commset_lang::ast::Type;
use std::collections::BTreeSet;

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// The md5sum world: per-file data streams, a file table, a console.
fn md5_table() -> IntrinsicTable {
    let mut t = IntrinsicTable::new();
    t.register("file_count", vec![], Type::Int, &[], &[], 5);
    t.register(
        "fs_open",
        vec![Type::Int],
        Type::Handle,
        &[],
        &["FS_TABLE"],
        40,
    );
    t.mark_fresh_handle("fs_open");
    t.register(
        "fs_read_block",
        vec![Type::Handle],
        Type::Int,
        &["FS_TABLE"],
        &["FS_DATA"],
        60,
    );
    t.register(
        "md5_chunk",
        vec![Type::Handle],
        Type::Void,
        &["FS_DATA"],
        &["FS_DATA"],
        20,
    );
    t.register(
        "fs_digest",
        vec![Type::Handle],
        Type::Int,
        &["FS_DATA"],
        &[],
        30,
    );
    t.register(
        "fs_close",
        vec![Type::Handle],
        Type::Void,
        &[],
        &["FS_TABLE", "FS_DATA"],
        25,
    );
    t.register(
        "print_digest",
        vec![Type::Int],
        Type::Void,
        &[],
        &["CONSOLE"],
        15,
    );
    t.mark_per_instance("FS_DATA");
    t
}

/// The eclat world: per-key item streams plus an order-insensitive sink.
fn eclat_table() -> IntrinsicTable {
    let mut t = IntrinsicTable::new();
    t.register("item_count", vec![], Type::Int, &[], &[], 5);
    t.register("bump", vec![Type::Int], Type::Int, &[], &["ITEMS"], 50);
    t.register("bump2", vec![Type::Int], Type::Int, &[], &["ITEMS"], 50);
    t.register("sink", vec![Type::Int], Type::Void, &[], &["OUT"], 10);
    t.mark_per_instance("ITEMS");
    t
}

fn eclat_cfg() -> CheckConfig {
    CheckConfig {
        model: ModelConfig {
            stream_len: 1,
            commutative: ["OUT"]
                .iter()
                .map(|s| s.to_string())
                .collect::<BTreeSet<_>>(),
            ..ModelConfig::default()
        },
        ..CheckConfig::default()
    }
}

// ---------------------------------------------------------------- positive

#[test]
fn md5sum_ok_passes_out_of_order_contract() {
    let cfg = CheckConfig::with_commutative(["FS_TABLE", "CONSOLE"]);
    let report = check_source(&fixture("md5sum_ok.cmm"), &md5_table(), &cfg).expect("compiles");
    assert!(report.is_pass(), "{report}");
    assert!(
        report.regions.iter().any(|r| r.set_name == "FSET"),
        "{report}"
    );
}

#[test]
fn md5sum_det_passes_deterministic_contract() {
    // CONSOLE stays ordered; the honest annotation (no SELF on print)
    // forces a pipeline that preserves output order.
    let cfg = CheckConfig::with_commutative(["FS_TABLE"]);
    let report = check_source(&fixture("md5sum_det.cmm"), &md5_table(), &cfg).expect("compiles");
    assert!(!report.is_fail(), "{report}");
}

#[test]
fn accumulate_ok_passes() {
    let mut t = IntrinsicTable::new();
    t.register("item_count", vec![], Type::Int, &[], &[], 5);
    t.register("add_acc", vec![Type::Int], Type::Void, &[], &["ACC"], 10);
    let cfg = CheckConfig::with_commutative(["ACC"]);
    let report = check_source(&fixture("accumulate_ok.cmm"), &t, &cfg).expect("compiles");
    assert!(report.is_pass(), "{report}");
}

#[test]
fn eclat_pred_is_conservatively_clean() {
    let report =
        check_source(&fixture("eclat_pred.cmm"), &eclat_table(), &eclat_cfg()).expect("compiles");
    assert!(!report.is_fail(), "{report}");
}

// ---------------------------------------------------------------- negative

#[test]
fn md5sum_selfprint_is_flagged_on_ordered_console() {
    // Same source as md5sum_ok; the contract says CONSOLE is ordered.
    let cfg = CheckConfig::with_commutative(["FS_TABLE"]);
    let report =
        check_source(&fixture("md5sum_selfprint.cmm"), &md5_table(), &cfg).expect("compiles");
    assert!(report.is_fail(), "{report}");
    let Verdict::Fail(fail) = &report.verdict else {
        unreachable!()
    };
    assert!(
        fail.diffs.iter().any(|d| d.contains("CONSOLE")),
        "{:?}",
        fail.diffs
    );
    assert!(!fail.failing.is_empty(), "failing interleaving rendered");
}

#[test]
fn eclat_overwide_is_flagged_on_same_key_flip() {
    let report = check_source(&fixture("eclat_overwide.cmm"), &eclat_table(), &eclat_cfg())
        .expect("compiles");
    assert!(report.is_fail(), "{report}");
    let Verdict::Fail(fail) = &report.verdict else {
        unreachable!()
    };
    assert!(
        fail.diffs.iter().any(|d| d.contains("OUT")),
        "the divergence shows in the sink tags: {:?}",
        fail.diffs
    );
}

// ------------------------------------------------------------- determinism

#[test]
fn verdicts_are_deterministic_per_seed() {
    let cfg = eclat_cfg();
    let a = check_source(&fixture("eclat_overwide.cmm"), &eclat_table(), &cfg).expect("compiles");
    let b = check_source(&fixture("eclat_overwide.cmm"), &eclat_table(), &cfg).expect("compiles");
    assert_eq!(a.explored, b.explored);
    assert_eq!(a.to_string(), b.to_string());
    // A different seed may explore different chaos schedules but must
    // still reach a Fail verdict for the unsound fixture.
    let other = CheckConfig {
        seed: 0xdead_beef,
        ..eclat_cfg()
    };
    let c = check_source(&fixture("eclat_overwide.cmm"), &eclat_table(), &other).expect("compiles");
    assert!(c.is_fail(), "{c}");
}

// ----------------------------------------------------------- scale-out

/// The diversity guard: every systematic schedule family must drive the
/// canary fixture through a *distinct* decision trace. A duplicate here
/// means a family degenerated into another one and the campaign's
/// nominal coverage silently shrank.
#[test]
fn schedule_families_produce_distinct_traces_on_the_canary() {
    // The md5sum fixture with world-call pausing maximizes scheduling
    // points, separating even close delay variants.
    let mut cfg = CheckConfig::with_commutative(["FS_TABLE", "CONSOLE"]);
    cfg.model.pause_at_world_calls = true;
    cfg.budget = 9; // the full SC base block for nthreads=2, no chaos
    let campaign = match prepare_campaign(&fixture("md5sum_ok.cmm"), &md5_table(), &cfg)
        .expect("canary compiles")
    {
        PreparedCampaign::Ready(c) => c,
        PreparedCampaign::Skipped { reason, .. } => panic!("canary skipped: {reason}"),
    };
    let mut seen: std::collections::BTreeMap<Vec<usize>, String> =
        std::collections::BTreeMap::new();
    for spec in campaign.specs() {
        let mut sched = spec.instantiate();
        let mut rec = Recording::new(sched.as_mut());
        campaign
            .run_with_scheduler(spec.window, &mut rec)
            .expect("canary schedule runs");
        if let Some(prev) = seen.insert(rec.trace.clone(), spec.name()) {
            panic!(
                "families `{prev}` and `{}` produced the same decision \
                 trace {:?} — duplicate exploration",
                spec.name(),
                seen.keys().next()
            );
        }
    }
    assert_eq!(seen.len(), 9, "all nine SC families ran");
}

/// The merged report must be bit-identical whichever way the schedule
/// space is partitioned across checker threads — on a *failing* fixture,
/// where merge order could plausibly leak (violation list, primary pick,
/// shrunk schedule).
#[test]
fn parallel_jobs_merge_identically_on_a_failing_fixture() {
    let seq = check_source(&fixture("eclat_overwide.cmm"), &eclat_table(), &eclat_cfg())
        .expect("compiles");
    assert!(seq.is_fail());
    for jobs in [2usize, 4, 8] {
        let cfg = CheckConfig {
            jobs,
            ..eclat_cfg()
        };
        let par =
            check_source(&fixture("eclat_overwide.cmm"), &eclat_table(), &cfg).expect("compiles");
        assert_eq!(
            seq.to_string().replace("--jobs 1", "--jobs N"),
            par.to_string()
                .replace(&format!("--jobs {jobs}"), "--jobs N"),
            "jobs={jobs} diverged from sequential"
        );
    }
}

/// Feeding the `REPLAY:` knobs back into the checker reproduces the
/// violation byte-for-byte — the one-line contract the fix satellite
/// pins. The replay metadata is used directly (it is what the printed
/// line is rendered from), including a different `--jobs`.
#[test]
fn replay_line_reproduces_the_violation_byte_for_byte() {
    let first = check_source(&fixture("eclat_overwide.cmm"), &eclat_table(), &eclat_cfg())
        .expect("compiles");
    let replay = first
        .replay
        .clone()
        .expect("failing report has REPLAY info");
    assert!(
        first.to_string().contains(&format!(
            "REPLAY: --seed {:#x} --budget {} --threads {} --jobs {}",
            replay.seed, replay.budget, replay.threads, replay.jobs
        )),
        "{first}"
    );
    let cfg = CheckConfig {
        seed: replay.seed,
        budget: replay.budget,
        nthreads: replay.threads,
        jobs: 4, // a different worker count must not change anything
        ..eclat_cfg()
    };
    let second =
        check_source(&fixture("eclat_overwide.cmm"), &eclat_table(), &cfg).expect("compiles");
    assert_eq!(
        first.to_string().replace("--jobs 1", "--jobs N"),
        second.to_string().replace("--jobs 4", "--jobs N"),
    );
    let Verdict::Fail(a) = &first.verdict else {
        unreachable!()
    };
    let Verdict::Fail(b) = &second.verdict else {
        panic!("replay did not reproduce the failure: {second}")
    };
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.partition, b.partition);
    assert_eq!(a.diffs, b.diffs);
}

/// The shrinker's output on a known-unsound fixture is pinned as a
/// golden file: the minimal schedule is deterministic, so any change to
/// shrinking (or to the schedule family ordering upstream of it) shows
/// up as a readable diff. Regenerate with
/// `SHRINK_GOLDEN_REGEN=1 cargo test -p commset-checker`.
#[test]
fn shrunk_counterexample_matches_golden() {
    let report = check_source(&fixture("eclat_overwide.cmm"), &eclat_table(), &eclat_cfg())
        .expect("compiles");
    let Verdict::Fail(fail) = &report.verdict else {
        panic!("{report}")
    };
    let shrunk = fail.shrunk.as_ref().expect("completed divergence shrinks");
    assert!(
        shrunk.pinned <= shrunk.total,
        "pinned decisions are a subset of the trace"
    );
    let rendered = format!(
        "from: {}\npinned: {} of {}\n{}",
        shrunk.from, shrunk.pinned, shrunk.total, shrunk.interleaving
    );
    let golden_path = format!(
        "{}/fixtures/eclat_overwide.shrunk.expected",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var_os("SHRINK_GOLDEN_REGEN").is_some() {
        std::fs::write(&golden_path, &rendered).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!("read {golden_path}: {e} (regenerate with SHRINK_GOLDEN_REGEN=1)")
    });
    assert_eq!(rendered, expected, "shrunk counterexample drifted");
}

// ------------------------------------------------------------------- fuzz

#[test]
fn fuzz_eclat_pred_catches_drop_predicate_and_keeps_nosync_clean() {
    let report = fuzz_annotations(&fixture("eclat_pred.cmm"), &eclat_table(), &eclat_cfg())
        .expect("baseline compiles");
    assert!(report.sound(), "{report}");
    // Dropping the predicate leaves `ISET(k)` memberships on an
    // unpredicated set — sema rejects that statically, which counts as
    // caught (the toolchain refused the weakened annotation).
    assert!(
        report
            .outcomes
            .iter()
            .any(|o| o.mutation.weakens() && o.caught()),
        "drop-predicate caught: {report}"
    );
}

#[test]
fn fuzz_md5sum_det_catches_widen_self() {
    let cfg = CheckConfig::with_commutative(["FS_TABLE"]);
    let report = fuzz_annotations(&fixture("md5sum_det.cmm"), &md5_table(), &cfg)
        .expect("baseline compiles");
    assert!(!report.baseline_flagged, "{report}");
    let widened = report
        .outcomes
        .iter()
        .find(|o| matches!(o.mutation, commset_checker::Mutation::WidenSelf { .. }))
        .expect("the print pragma lacks SELF, so a widen-self mutant exists");
    assert!(widened.caught(), "{report}");
}
