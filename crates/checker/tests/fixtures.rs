//! Checker self-tests: the negative fixtures must be flagged, the
//! positive fixtures must pass (or conservatively skip), and the whole
//! campaign must be deterministic per seed. These run as part of plain
//! `cargo test`, so any regression in CommSetDepAnalysis or the
//! transforms that silently legalizes an unsound schedule fails CI.

use commset_checker::{check_source, fuzz_annotations, CheckConfig, ModelConfig, Verdict};
use commset_ir::IntrinsicTable;
use commset_lang::ast::Type;
use std::collections::BTreeSet;

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// The md5sum world: per-file data streams, a file table, a console.
fn md5_table() -> IntrinsicTable {
    let mut t = IntrinsicTable::new();
    t.register("file_count", vec![], Type::Int, &[], &[], 5);
    t.register(
        "fs_open",
        vec![Type::Int],
        Type::Handle,
        &[],
        &["FS_TABLE"],
        40,
    );
    t.mark_fresh_handle("fs_open");
    t.register(
        "fs_read_block",
        vec![Type::Handle],
        Type::Int,
        &["FS_TABLE"],
        &["FS_DATA"],
        60,
    );
    t.register(
        "md5_chunk",
        vec![Type::Handle],
        Type::Void,
        &["FS_DATA"],
        &["FS_DATA"],
        20,
    );
    t.register(
        "fs_digest",
        vec![Type::Handle],
        Type::Int,
        &["FS_DATA"],
        &[],
        30,
    );
    t.register(
        "fs_close",
        vec![Type::Handle],
        Type::Void,
        &[],
        &["FS_TABLE", "FS_DATA"],
        25,
    );
    t.register(
        "print_digest",
        vec![Type::Int],
        Type::Void,
        &[],
        &["CONSOLE"],
        15,
    );
    t.mark_per_instance("FS_DATA");
    t
}

/// The eclat world: per-key item streams plus an order-insensitive sink.
fn eclat_table() -> IntrinsicTable {
    let mut t = IntrinsicTable::new();
    t.register("item_count", vec![], Type::Int, &[], &[], 5);
    t.register("bump", vec![Type::Int], Type::Int, &[], &["ITEMS"], 50);
    t.register("bump2", vec![Type::Int], Type::Int, &[], &["ITEMS"], 50);
    t.register("sink", vec![Type::Int], Type::Void, &[], &["OUT"], 10);
    t.mark_per_instance("ITEMS");
    t
}

fn eclat_cfg() -> CheckConfig {
    CheckConfig {
        model: ModelConfig {
            stream_len: 1,
            commutative: ["OUT"]
                .iter()
                .map(|s| s.to_string())
                .collect::<BTreeSet<_>>(),
            ..ModelConfig::default()
        },
        ..CheckConfig::default()
    }
}

// ---------------------------------------------------------------- positive

#[test]
fn md5sum_ok_passes_out_of_order_contract() {
    let cfg = CheckConfig::with_commutative(["FS_TABLE", "CONSOLE"]);
    let report = check_source(&fixture("md5sum_ok.cmm"), &md5_table(), &cfg).expect("compiles");
    assert!(report.is_pass(), "{report}");
    assert!(
        report.regions.iter().any(|r| r.set_name == "FSET"),
        "{report}"
    );
}

#[test]
fn md5sum_det_passes_deterministic_contract() {
    // CONSOLE stays ordered; the honest annotation (no SELF on print)
    // forces a pipeline that preserves output order.
    let cfg = CheckConfig::with_commutative(["FS_TABLE"]);
    let report = check_source(&fixture("md5sum_det.cmm"), &md5_table(), &cfg).expect("compiles");
    assert!(!report.is_fail(), "{report}");
}

#[test]
fn accumulate_ok_passes() {
    let mut t = IntrinsicTable::new();
    t.register("item_count", vec![], Type::Int, &[], &[], 5);
    t.register("add_acc", vec![Type::Int], Type::Void, &[], &["ACC"], 10);
    let cfg = CheckConfig::with_commutative(["ACC"]);
    let report = check_source(&fixture("accumulate_ok.cmm"), &t, &cfg).expect("compiles");
    assert!(report.is_pass(), "{report}");
}

#[test]
fn eclat_pred_is_conservatively_clean() {
    let report =
        check_source(&fixture("eclat_pred.cmm"), &eclat_table(), &eclat_cfg()).expect("compiles");
    assert!(!report.is_fail(), "{report}");
}

// ---------------------------------------------------------------- negative

#[test]
fn md5sum_selfprint_is_flagged_on_ordered_console() {
    // Same source as md5sum_ok; the contract says CONSOLE is ordered.
    let cfg = CheckConfig::with_commutative(["FS_TABLE"]);
    let report =
        check_source(&fixture("md5sum_selfprint.cmm"), &md5_table(), &cfg).expect("compiles");
    assert!(report.is_fail(), "{report}");
    let Verdict::Fail(fail) = &report.verdict else {
        unreachable!()
    };
    assert!(
        fail.diffs.iter().any(|d| d.contains("CONSOLE")),
        "{:?}",
        fail.diffs
    );
    assert!(!fail.failing.is_empty(), "failing interleaving rendered");
}

#[test]
fn eclat_overwide_is_flagged_on_same_key_flip() {
    let report = check_source(&fixture("eclat_overwide.cmm"), &eclat_table(), &eclat_cfg())
        .expect("compiles");
    assert!(report.is_fail(), "{report}");
    let Verdict::Fail(fail) = &report.verdict else {
        unreachable!()
    };
    assert!(
        fail.diffs.iter().any(|d| d.contains("OUT")),
        "the divergence shows in the sink tags: {:?}",
        fail.diffs
    );
}

// ------------------------------------------------------------- determinism

#[test]
fn verdicts_are_deterministic_per_seed() {
    let cfg = eclat_cfg();
    let a = check_source(&fixture("eclat_overwide.cmm"), &eclat_table(), &cfg).expect("compiles");
    let b = check_source(&fixture("eclat_overwide.cmm"), &eclat_table(), &cfg).expect("compiles");
    assert_eq!(a.explored, b.explored);
    assert_eq!(a.to_string(), b.to_string());
    // A different seed may explore different chaos schedules but must
    // still reach a Fail verdict for the unsound fixture.
    let other = CheckConfig {
        seed: 0xdead_beef,
        ..eclat_cfg()
    };
    let c = check_source(&fixture("eclat_overwide.cmm"), &eclat_table(), &other).expect("compiles");
    assert!(c.is_fail(), "{c}");
}

// ------------------------------------------------------------------- fuzz

#[test]
fn fuzz_eclat_pred_catches_drop_predicate_and_keeps_nosync_clean() {
    let report = fuzz_annotations(&fixture("eclat_pred.cmm"), &eclat_table(), &eclat_cfg())
        .expect("baseline compiles");
    assert!(report.sound(), "{report}");
    // Dropping the predicate leaves `ISET(k)` memberships on an
    // unpredicated set — sema rejects that statically, which counts as
    // caught (the toolchain refused the weakened annotation).
    assert!(
        report
            .outcomes
            .iter()
            .any(|o| o.mutation.weakens() && o.caught()),
        "drop-predicate caught: {report}"
    );
}

#[test]
fn fuzz_md5sum_det_catches_widen_self() {
    let cfg = CheckConfig::with_commutative(["FS_TABLE"]);
    let report = fuzz_annotations(&fixture("md5sum_det.cmm"), &md5_table(), &cfg)
        .expect("baseline compiles");
    assert!(!report.baseline_flagged, "{report}");
    let widened = report
        .outcomes
        .iter()
        .find(|o| matches!(o.mutation, commset_checker::Mutation::WidenSelf { .. }))
        .expect("the print pragma lacks SELF, so a widen-self mutant exists");
    assert!(widened.caught(), "{report}");
}
