//! `commsetc` — the COMMSET compiler as a command-line tool.
//!
//! Analyzes an annotated Cmm source file, explains what inhibits
//! parallelization, ranks the applicable schedules, and emits the
//! transformed (parallelized) source:
//!
//! ```text
//! commsetc analyze  prog.cmm [--effects prog.effects] [--pdg] [--threads N]
//! commsetc schedules prog.cmm [--effects prog.effects] [--threads N]
//! commsetc emit     prog.cmm --scheme doall [--sync spin] [--threads N]
//!                            [--effects prog.effects]
//! commsetc compile  prog.cmm [--dump-bytecode] [--scheme doall]
//!                            [--sync spin] [--threads N]
//!                            [--effects prog.effects]
//! commsetc check    prog.cmm [--effects prog.effects] [--threads N]
//!                            [--budget N] [--seed N] [--jobs N] [--fuzz]
//!                            [--engine auto|tree-walk|bytecode]
//!                            [--trace-out fail.json] [--corpus DIR]
//!                            [--capture-corpus]
//! commsetc profile  prog.cmm --scheme dswp [--sync spin] [--threads N]
//!                            [--effects prog.effects] [--real]
//!                            [--trace-out run.json] [--metrics]
//!                            [--journal-out run.jsonl] [--top N]
//! commsetc report   prog.cmm --scheme dswp [--sync spin] [--threads N]
//!                            [--effects prog.effects] [--real] [--top N]
//!                            [--journal-out run.jsonl]
//! commsetc report   --journal run.jsonl [--top N]
//! ```
//!
//! `compile` lowers the program to the interpreter's flat register
//! bytecode (the compiled execution backend) and prints a per-function
//! summary: op count, fused superinstructions, inline-cached intrinsic
//! call sites. `--dump-bytecode` prints the full disassembled listing
//! instead — block labels, registers, retire weights. With `--scheme`
//! the *transformed* (parallelized) module is compiled; the default is
//! the sequential module.
//!
//! `check` runs the dynamic commutativity checker: it replays the
//! transformed program under a budget of systematically permuted region
//! schedules and compares every outcome against the sequential oracle;
//! `--jobs N` fans the schedule space across N checker threads over a
//! fixed partition plan (the merged report is bit-identical for every N);
//! `--fuzz` additionally mutates the annotations (drop a predicate, widen
//! a set with `SELF`, strip `NoSync`) and asserts the weakened variants
//! are caught, with mutants fanned across the same pool. The sidecar's
//! `commutative CHANS`, `model size= stream=` and `relaxed [window=N]`
//! directives configure the checker's abstract world (the latter opting
//! into store-buffered schedule variants). `--engine` selects the VM
//! driving the model world (tree-walk or the compiled bytecode backend);
//! engines are report-invariant, so CI diffs the two reports to prove it.
//! Exit status: 0 if the verdict
//! is clean, 1 otherwise. With `--trace-out`, a failing check additionally
//! writes the canonical and failing interleavings as one Chrome
//! trace-event JSON file.
//!
//! Before checking the input, `check` replays the regression corpus: every
//! `.cmm`/`.effects` pair under `--corpus DIR` (default `fixtures/corpus`,
//! silently skipped when absent) must still be flagged unsound; a corpus
//! entry going green is itself a failure. `--capture-corpus` auto-captures
//! a newly found violation — the input source plus its sidecar — into the
//! corpus directory under a content-hashed name, growing the corpus with
//! every new bug the explorer finds.
//!
//! `profile` executes one run of the chosen schedule against a synthetic
//! deterministic world (the checker's model semantics, costs from the
//! sidecar) with telemetry on, and prints the unified run profile: stage
//! balance, lock contention by rank, queue traffic and runtime counters.
//! The default backend is the discrete-event simulator (bit-deterministic
//! profiles); `--real` uses OS threads and monotonic clocks instead.
//! `--trace-out FILE` also writes the span timeline as Chrome trace-event
//! JSON, loadable in `chrome://tracing` or <https://ui.perfetto.dev>.
//! `--metrics` additionally prints the hotspot registry (hot blocks,
//! opcode mix, contended locks/channels, queue occupancy, counters);
//! `--journal-out FILE` attaches the causal event journal and saves it
//! as JSONL.
//!
//! `report` is the hotspot view: it runs the profile with the metrics
//! registry and event journal always on and renders the causal run
//! summary plus the top-`--top` hotspot tables. With `--journal FILE` it
//! skips execution and renders a previously saved JSONL journal instead
//! (the terminal `metrics` event embeds the registry, so saved journals
//! are self-contained).
//!
//! Intrinsic *types* come from the source's `extern` declarations. Their
//! *effects* come from an optional sidecar file (`--effects`), one line
//! per extern:
//!
//! ```text
//! # name  [reads=A,B]  [writes=C,D]  [cost=N]  [fresh]  [per_instance]
//! fs_open    writes=FS cost=50 fresh
//! fs_read    reads=FS writes=FS cost=120
//! md5_chunk  cost=700
//! irrevocable FS,CONSOLE
//! per_instance FS
//! ```
//!
//! `fresh` marks a handle-returning allocator (each call yields a
//! distinct instance); `per_instance CHAN` partitions a channel by
//! handle; `irrevocable CHANS` rejects the TM sync mode for members
//! touching those channels. Externs absent from the sidecar default to
//! pure compute with cost 100.

use commset::merge_law::validate_custom_merges;
use commset::profile::run_profile_with;
use commset::replay::{replay_bundle, run_profile_supervised, SyntheticSource};
use commset::report::parse_journal;
use commset::spec::{build_table, parse_effects};
use commset::{Compiler, Scheme, SyncMode};
use commset_checker::{check_source, fuzz_annotations};
use commset_interp::{Engine, ExecConfig, FailureBundle, RecoveryPolicy};
use commset_lang::printer::print_program;
use commset_telemetry::{chrome_trace_json, Journal};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: commsetc <analyze|schedules|emit|compile|check|profile|report> <file.cmm> \
         [--effects <file>] [--pdg] [--threads N] \
         [--scheme doall|dswp|ps-dswp] [--sync spin|mutex|tm|lib] \
         [--hot-func NAME] [--dump-bytecode] \
         [--engine auto|tree-walk|bytecode] \
         [--budget N] [--seed N] [--jobs N] [--fuzz] \
         [--corpus DIR] [--capture-corpus] \
         [--trace-out <file.json>] [--real] \
         [--metrics] [--journal-out <file.jsonl>] [--top N] \
         [--recover] [--deadline-ms N] [--max-retries N] [--repro-dir DIR]\n\
         \u{20}      commsetc report --journal <run.jsonl> [--top N]\n\
         \u{20}      commsetc replay <bundle.repro.json>"
    );
    ExitCode::from(2)
}

#[derive(Debug)]
struct Args {
    command: String,
    file: String,
    effects: Option<String>,
    pdg: bool,
    threads: usize,
    scheme: Option<Scheme>,
    sync: SyncMode,
    hot_func: Option<String>,
    dump_bytecode: bool,
    engine: Engine,
    budget: Option<usize>,
    seed: Option<u64>,
    jobs: usize,
    corpus: Option<String>,
    capture_corpus: bool,
    fuzz: bool,
    trace_out: Option<String>,
    real: bool,
    metrics: bool,
    journal: Option<String>,
    journal_out: Option<String>,
    top: usize,
    recover: bool,
    deadline_ms: Option<u64>,
    max_retries: Option<u32>,
    repro_dir: Option<String>,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    argv.next(); // program name
    let command = argv.next().ok_or("missing command")?;
    if !matches!(
        command.as_str(),
        "analyze" | "schedules" | "emit" | "compile" | "check" | "profile" | "report" | "replay"
    ) {
        return Err(format!("unknown command `{command}`"));
    }
    // `report --journal run.jsonl` has no source positional; a leading
    // flag is pushed back into the flag loop instead of being eaten as
    // the input file.
    let mut pending_flag: Option<String> = None;
    let file = match argv.next() {
        Some(tok) if tok.starts_with("--") => {
            pending_flag = Some(tok);
            String::new()
        }
        Some(tok) => tok,
        None => String::new(),
    };
    let mut args = Args {
        command,
        file,
        effects: None,
        pdg: false,
        threads: 8,
        scheme: None,
        sync: SyncMode::Spin,
        hot_func: None,
        dump_bytecode: false,
        engine: Engine::Auto,
        budget: None,
        seed: None,
        jobs: 1,
        corpus: None,
        capture_corpus: false,
        fuzz: false,
        trace_out: None,
        real: false,
        metrics: false,
        journal: None,
        journal_out: None,
        top: 10,
        recover: false,
        deadline_ms: None,
        max_retries: None,
        repro_dir: None,
    };
    while let Some(flag) = pending_flag.take().or_else(|| argv.next()) {
        let mut value = || argv.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--effects" => args.effects = Some(value()?),
            "--pdg" => args.pdg = true,
            "--threads" => {
                args.threads = value()?
                    .parse()
                    .map_err(|_| "--threads needs a number".to_string())?
            }
            "--scheme" => {
                args.scheme = Some(match value()?.as_str() {
                    "doall" => Scheme::Doall,
                    "dswp" => Scheme::Dswp,
                    "ps-dswp" | "psdswp" => Scheme::PsDswp,
                    other => return Err(format!("unknown scheme `{other}`")),
                })
            }
            "--sync" => {
                args.sync = match value()?.as_str() {
                    "spin" => SyncMode::Spin,
                    "mutex" => SyncMode::Mutex,
                    "tm" => SyncMode::Tm,
                    "lib" => SyncMode::Lib,
                    other => return Err(format!("unknown sync mode `{other}`")),
                }
            }
            "--hot-func" => args.hot_func = Some(value()?),
            "--dump-bytecode" => args.dump_bytecode = true,
            "--engine" => {
                args.engine = match value()?.as_str() {
                    "auto" => Engine::Auto,
                    "tree-walk" | "tree" => Engine::TreeWalk,
                    "bytecode" => Engine::Bytecode,
                    other => return Err(format!("unknown engine `{other}`")),
                }
            }
            "--budget" => {
                let b: usize = value()?
                    .parse()
                    .map_err(|_| "--budget needs a number".to_string())?;
                if b == 0 {
                    return Err("--budget must be at least 1 (0 explores no schedules)".into());
                }
                args.budget = Some(b);
            }
            "--seed" => {
                // Accept both decimal and the `0x…` hex form the REPLAY:
                // line prints, so a failure's replay knobs paste verbatim.
                let v = value()?;
                let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => v.parse(),
                };
                args.seed = Some(parsed.map_err(|_| "--seed needs a number".to_string())?);
            }
            "--jobs" => {
                let j: usize = value()?
                    .parse()
                    .map_err(|_| "--jobs needs a number".to_string())?;
                if j == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                args.jobs = j;
            }
            "--corpus" => args.corpus = Some(value()?),
            "--capture-corpus" => args.capture_corpus = true,
            "--fuzz" => args.fuzz = true,
            "--trace-out" => args.trace_out = Some(value()?),
            "--real" => args.real = true,
            "--metrics" => args.metrics = true,
            "--journal" => args.journal = Some(value()?),
            "--journal-out" => args.journal_out = Some(value()?),
            "--top" => {
                let t: usize = value()?
                    .parse()
                    .map_err(|_| "--top needs a number".to_string())?;
                if t == 0 {
                    return Err("--top must be at least 1".into());
                }
                args.top = t;
            }
            "--recover" => args.recover = true,
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    value()?
                        .parse()
                        .map_err(|_| "--deadline-ms needs a number".to_string())?,
                )
            }
            "--max-retries" => {
                args.max_retries = Some(
                    value()?
                        .parse()
                        .map_err(|_| "--max-retries needs a number".to_string())?,
                )
            }
            "--repro-dir" => args.repro_dir = Some(value()?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.file.is_empty() && !(args.command == "report" && args.journal.is_some()) {
        return Err("missing input file".to_string());
    }
    if args.command == "report" && args.journal.is_none() && args.scheme.is_none() {
        return Err("report needs --scheme doall|dswp|ps-dswp (or --journal FILE)".to_string());
    }
    Ok(args)
}

/// Replays every `.cmm`/`.effects` pair in the corpus directory (sorted
/// by name): each committed entry is a known-unsound fixture and must
/// still be flagged by the checker, with its own sidecar supplying the
/// model knobs and the full-family budget guaranteeing the relaxed
/// (`sb[w]:`) schedules are not truncated away. Returns the entry count;
/// an entry that goes green — or stops compiling — is a regression.
fn replay_corpus(dir: &std::path::Path, jobs: usize) -> Result<usize, String> {
    let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "cmm"))
        .collect();
    entries.sort();
    let mut regressions: Vec<String> = Vec::new();
    for path in &entries {
        let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("?");
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let fx = path.with_extension("effects");
        let effects_text = if fx.is_file() {
            std::fs::read_to_string(&fx).map_err(|e| format!("{}: {e}", fx.display()))?
        } else {
            String::new()
        };
        let spec = parse_effects(&effects_text)?;
        let table = build_table(&source, &spec)?;
        let mut cfg = spec.checker_config();
        cfg.budget = cfg.full_family_budget();
        cfg.jobs = jobs;
        match check_source(&source, &table, &cfg) {
            Ok(report) if report.is_fail() => println!(
                "corpus: {name} still flagged ({} of {} schedules violate)",
                report.violations.len(),
                report.explored.len()
            ),
            Ok(report) => regressions.push(format!(
                "{name}: no longer flagged ({})",
                match &report.verdict {
                    commset_checker::Verdict::Pass { schedules, .. } =>
                        format!("passed all {schedules} schedules"),
                    commset_checker::Verdict::Skipped { reason } => format!("skipped: {reason}"),
                    commset_checker::Verdict::Fail(_) => unreachable!("is_fail was false"),
                }
            )),
            Err(d) => regressions.push(format!("{name}: stopped compiling: {}", d.message)),
        }
    }
    if regressions.is_empty() {
        Ok(entries.len())
    } else {
        Err(format!(
            "corpus regression — known-unsound fixtures went quiet:\n  {}",
            regressions.join("\n  ")
        ))
    }
}

/// Captures a newly found violation into the corpus: writes the input
/// source and its sidecar under a content-hashed name (FNV-1a over both),
/// so re-capturing the same bug is idempotent.
fn capture_into_corpus(
    dir: &std::path::Path,
    input: &str,
    source: &str,
    effects_text: &str,
) -> Result<std::path::PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in source.bytes().chain(effects_text.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let stem = std::path::Path::new(input)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("input");
    let base = dir.join(format!("cap_{stem}_{h:016x}"));
    let cmm = base.with_extension("cmm");
    std::fs::write(&cmm, source).map_err(|e| format!("{}: {e}", cmm.display()))?;
    let fx = base.with_extension("effects");
    std::fs::write(&fx, effects_text).map_err(|e| format!("{}: {e}", fx.display()))?;
    Ok(cmm)
}

fn run(args: &Args) -> Result<(), String> {
    // `report --journal`: render a saved journal, no compilation at all.
    if args.command == "report" {
        if let Some(path) = &args.journal {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let report = parse_journal(&text).map_err(|e| format!("{path}: {e}"))?;
            print!("{}", report.render_text(args.top));
            return Ok(());
        }
    }
    let source = std::fs::read_to_string(&args.file).map_err(|e| format!("{}: {e}", args.file))?;
    let effects_text = match &args.effects {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
        None => String::new(),
    };
    let spec = parse_effects(&effects_text)?;
    let table = build_table(&source, &spec)?;
    let irrevocable: Vec<&str> = spec.irrevocable.iter().map(String::as_str).collect();
    let mut compiler = Compiler::new(table).with_irrevocable(&irrevocable);
    if let Some(f) = &args.hot_func {
        compiler = compiler.with_hot_func(f);
    }
    let analysis = compiler.analyze(&source).map_err(|d| d.to_string())?;

    match args.command.as_str() {
        "analyze" => {
            println!("file:              {}", args.file);
            println!("sloc:              {}", analysis.sloc);
            println!("annotation lines:  {}", analysis.annotation_lines);
            println!("relaxed PDG edges: {}", analysis.relaxed_edges);
            println!("countable loop:    {}", analysis.hot.shape.is_countable());
            println!("DOALL legal:       {}", analysis.doall_legal());
            let schemes = compiler.applicable_schemes(&analysis, args.threads);
            let names: Vec<String> = schemes.iter().map(|s| s.to_string()).collect();
            println!("applicable:        [{}]", names.join(", "));
            let inhibitors = analysis.explain_inhibitors();
            if inhibitors.is_empty() {
                println!("inhibitors:        none");
            } else {
                println!("inhibitors:");
                for line in inhibitors {
                    println!("  {line}");
                }
            }
            if args.pdg {
                println!("\n{}", analysis.pdg_dump());
            }
            Ok(())
        }
        "schedules" => {
            let ranked = compiler.compile_all(&analysis, args.threads);
            if ranked.is_empty() {
                return Err("no schedule applies; run `analyze` for why".to_string());
            }
            println!(
                "{:<22} {:>12} {:>8} {:>7} {:>7}",
                "schedule", "est. cost", "workers", "queues", "locks"
            );
            for (scheme, sync, _, plan) in &ranked {
                println!(
                    "{:<22} {:>12.0} {:>8} {:>7} {:>7}",
                    format!("{scheme} + {sync}"),
                    plan.estimated_cost,
                    plan.workers.len(),
                    plan.queues.len(),
                    plan.locks.len()
                );
            }
            Ok(())
        }
        "check" => {
            // Regression corpus first: committed known-unsound fixtures
            // must still be red before the input is even looked at.
            let corpus_dir = args
                .corpus
                .clone()
                .unwrap_or_else(|| "fixtures/corpus".to_string());
            let corpus_path = std::path::Path::new(&corpus_dir).to_path_buf();
            if corpus_path.is_dir() {
                let n = replay_corpus(&corpus_path, args.jobs)?;
                println!("corpus: {n} entries replayed, all still flagged");
            } else if args.corpus.is_some() {
                return Err(format!("{corpus_dir}: corpus directory not found"));
            }
            // Custom merge operators must obey the merge laws
            // (commutativity, associativity, identity 0) before any
            // delta-privatized schedule is trusted.
            validate_custom_merges(&source, &spec, &compiler.intrinsics)
                .map_err(|d| d.to_string())?;
            let mut cfg = spec.checker_config();
            cfg.nthreads = args.threads;
            cfg.jobs = args.jobs;
            cfg.model.engine = args.engine;
            if let Some(b) = args.budget {
                cfg.budget = b;
            }
            if let Some(s) = args.seed {
                cfg.seed = s;
            }
            if args.fuzz {
                let report = fuzz_annotations(&source, &compiler.intrinsics, &cfg)
                    .map_err(|d| d.to_string())?;
                print!("{report}");
                if report.sound() {
                    Ok(())
                } else {
                    Err("annotation fuzzing found a weakness the checker missed".to_string())
                }
            } else {
                let report =
                    check_source(&source, &compiler.intrinsics, &cfg).map_err(|d| d.to_string())?;
                print!("{report}");
                if let commset_checker::Verdict::Fail(fail) = &report.verdict {
                    // A failing check exports both interleavings as a
                    // Chrome trace so the divergence can be eyeballed.
                    if let Some(path) = &args.trace_out {
                        std::fs::write(path, fail.chrome_trace_json())
                            .map_err(|e| format!("{path}: {e}"))?;
                        eprintln!("wrote schedule trace to {path}");
                    }
                    // A newly found violation grows the corpus.
                    if args.capture_corpus {
                        let dest =
                            capture_into_corpus(&corpus_path, &args.file, &source, &effects_text)?;
                        eprintln!("captured corpus entry {}", dest.display());
                    }
                }
                if report.is_fail() {
                    Err("commutativity check failed".to_string())
                } else {
                    Ok(())
                }
            }
        }
        "report" => {
            let scheme = args
                .scheme
                .ok_or("report needs --scheme doall|dswp|ps-dswp (or --journal FILE)")?;
            // Deterministic causal run id: same program + knobs, same id.
            let journal = Journal::new(Journal::derive_run_id(&[
                &args.file,
                &scheme.to_string(),
                &args.sync.to_string(),
                &args.threads.to_string(),
                if args.real { "threads" } else { "sim" },
            ]));
            let cfg = ExecConfig {
                telemetry: true,
                metrics: true,
                journal: Some(journal.clone()),
                ..ExecConfig::default()
            };
            let out = run_profile_with(
                &compiler,
                &analysis,
                &spec,
                scheme,
                args.threads,
                args.sync,
                args.real,
                &cfg,
            )?;
            // Render through the journal loader: the live view and a
            // saved `--journal` view of the same run are identical.
            let jsonl = journal.to_jsonl();
            let report = parse_journal(&jsonl)?;
            print!("{}", report.render_text(args.top));
            if let Some(t) = out.sim_time {
                println!("total simulated time: {t} ticks");
            }
            if let Some(path) = &args.journal_out {
                std::fs::write(path, &jsonl).map_err(|e| format!("{path}: {e}"))?;
                eprintln!("wrote event journal to {path}");
            }
            Ok(())
        }
        "profile" => {
            let scheme = args
                .scheme
                .ok_or("profile needs --scheme doall|dswp|ps-dswp")?;
            let journal = (args.metrics || args.journal_out.is_some()).then(|| {
                Journal::new(Journal::derive_run_id(&[
                    &args.file,
                    &scheme.to_string(),
                    &args.sync.to_string(),
                    &args.threads.to_string(),
                    if args.real { "threads" } else { "sim" },
                ]))
            });
            if args.recover {
                // Supervised profile: deadlines, transient retries, the
                // degradation ladder, and failure-bundle capture.
                let src =
                    SyntheticSource::new(&args.file, &source, &effects_text, scheme, args.sync)?;
                let cfg = ExecConfig {
                    telemetry: true,
                    metrics: args.metrics,
                    journal: journal.clone(),
                    ..ExecConfig::default()
                };
                let mut policy = RecoveryPolicy {
                    deadline_ms: args.deadline_ms,
                    bundle_dir: Some(
                        args.repro_dir
                            .clone()
                            .unwrap_or_else(|| "target/repro".to_string())
                            .into(),
                    ),
                    ..RecoveryPolicy::default()
                };
                if let Some(r) = args.max_retries {
                    policy.max_retries = r;
                }
                match run_profile_supervised(&src, args.real, args.threads, &cfg, &policy) {
                    Ok(out) => {
                        match &out.telemetry {
                            Some(report) => {
                                print!("{}", report.render_text());
                                if let Some(path) = &args.trace_out {
                                    std::fs::write(path, chrome_trace_json(report))
                                        .map_err(|e| format!("{path}: {e}"))?;
                                    eprintln!("wrote Chrome trace to {path}");
                                }
                            }
                            None => {
                                println!("(no telemetry: run completed on the sequential fallback)")
                            }
                        }
                        if args.metrics {
                            // The supervised outcome carries no registry;
                            // the journal's terminal metrics event does.
                            let from_journal = journal
                                .as_ref()
                                .and_then(|j| parse_journal(&j.to_jsonl()).ok())
                                .and_then(|r| r.metrics);
                            match from_journal {
                                Some(reg) => print!("{}", reg.render_text(args.top)),
                                None => println!("metrics:\n  (no metrics recorded)"),
                            }
                        }
                        if let (Some(path), Some(j)) = (&args.journal_out, &journal) {
                            std::fs::write(path, j.to_jsonl())
                                .map_err(|e| format!("{path}: {e}"))?;
                            eprintln!("wrote event journal to {path}");
                        }
                        if out.recovery.is_clean() {
                            println!(
                                "recovery: clean ({} attempt, no retries, no degradation)",
                                out.recovery.attempts
                            );
                        } else {
                            print!("{}", out.recovery.render_text());
                        }
                        Ok(())
                    }
                    Err(fail) => {
                        print!("{}", fail.recovery.render_text());
                        // The journal of a terminally failed run is the
                        // most interesting one; save it when asked.
                        if let (Some(path), Some(j)) = (&args.journal_out, &journal) {
                            if std::fs::write(path, j.to_jsonl()).is_ok() {
                                eprintln!("wrote event journal to {path}");
                            }
                        }
                        Err(format!("supervised run failed terminally: {}", fail.error))
                    }
                }
            } else {
                let cfg = ExecConfig {
                    telemetry: true,
                    metrics: args.metrics,
                    journal: journal.clone(),
                    ..ExecConfig::default()
                };
                let out = run_profile_with(
                    &compiler,
                    &analysis,
                    &spec,
                    scheme,
                    args.threads,
                    args.sync,
                    args.real,
                    &cfg,
                )?;
                print!("{}", out.report.render_text());
                if let Some(reg) = &out.metrics {
                    print!("{}", reg.render_text(args.top));
                }
                if let Some(t) = out.sim_time {
                    println!("total simulated time: {t} ticks");
                }
                if let Some(path) = &args.trace_out {
                    std::fs::write(path, chrome_trace_json(&out.report))
                        .map_err(|e| format!("{path}: {e}"))?;
                    eprintln!(
                        "wrote Chrome trace to {path} \
                         (load in chrome://tracing or ui.perfetto.dev)"
                    );
                }
                if let (Some(path), Some(j)) = (&args.journal_out, &journal) {
                    std::fs::write(path, j.to_jsonl()).map_err(|e| format!("{path}: {e}"))?;
                    eprintln!("wrote event journal to {path}");
                }
                Ok(())
            }
        }
        "compile" => {
            let module = match args.scheme {
                Some(scheme) => {
                    compiler
                        .compile(&analysis, scheme, args.threads, args.sync)
                        .map_err(|d| d.to_string())?
                        .0
                }
                None => compiler
                    .compile_sequential(&analysis)
                    .map_err(|d| d.to_string())?,
            };
            let bc = commset_interp::BcModule::compile(&module);
            let mut out = String::new();
            if args.dump_bytecode {
                out.push_str(&commset_interp::print_bc_module(&module, &bc));
            } else {
                for bf in &bc.funcs {
                    let fused = bf.weights.iter().filter(|w| **w > 1).count();
                    out.push_str(&format!(
                        "{:<28} {:>5} ops {:>4} fused {:>3} call sites\n",
                        bf.name,
                        bf.ops.len(),
                        fused,
                        bf.sites.len()
                    ));
                }
            }
            // One write, errors ignored: `commsetc compile | head` must
            // not panic on the closed pipe.
            use std::io::Write;
            let _ = std::io::stdout().write_all(out.as_bytes());
            Ok(())
        }
        "emit" => {
            let scheme = args
                .scheme
                .ok_or("emit needs --scheme doall|dswp|ps-dswp")?;
            let pp = compiler
                .compile_to_ast(&analysis, scheme, args.threads, args.sync)
                .map_err(|d| d.to_string())?;
            let mut out = format!(
                "// {} x{} ({}), estimated cost {:.0}\n",
                scheme, args.threads, args.sync, pp.plan.estimated_cost
            );
            for (i, d) in pp.plan.stage_desc.iter().enumerate() {
                out.push_str(&format!("// stage {i}: {d}\n"));
            }
            for q in &pp.plan.queues {
                out.push_str(&format!(
                    "// queue {}: {} (capacity {})\n",
                    q.id, q.what, q.capacity
                ));
            }
            for l in &pp.plan.locks {
                out.push_str(&format!("// lock {}: set {}\n", l.id, l.set));
            }
            out.push_str(&print_program(&pp.program));
            // One write, errors ignored: `commsetc emit | head` must not
            // panic on the closed pipe.
            use std::io::Write;
            let _ = std::io::stdout().write_all(out.as_bytes());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Replays a failure bundle; returns whether the recorded failure
/// reproduced. A missing or corrupt bundle is a *usage* error (`Err`),
/// handled in `main` with exit status 2.
fn run_replay(args: &Args) -> Result<bool, String> {
    let bundle = FailureBundle::load(std::path::Path::new(&args.file))?;
    let out = replay_bundle(&bundle)?;
    println!("bundle:   {}", args.file);
    println!("program:  {}", bundle.program_path);
    println!("rung:     {}", out.rung);
    println!("expected: {}", out.expected);
    match &out.observed {
        Some(e) => println!("observed: {e}"),
        None => println!("observed: (run succeeded)"),
    }
    println!(
        "verdict:  {}",
        if out.reproduced {
            "REPRODUCED"
        } else {
            "NOT REPRODUCED"
        }
    );
    Ok(out.reproduced)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    if args.command == "replay" {
        // Bundle problems (missing file, corrupt JSON, unknown knobs) are
        // usage errors: exit 2 with the usage message, never a panic.
        return match run_replay(&args) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        };
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Result<Args, String> {
        parse_args(std::iter::once("commsetc".to_string()).chain(v.iter().map(|s| s.to_string())))
    }

    #[test]
    fn defaults_and_flags_parse() {
        let a = args(&["analyze", "f.cmm"]).unwrap();
        assert_eq!(a.command, "analyze");
        assert_eq!(a.file, "f.cmm");
        assert_eq!(a.threads, 8);
        assert!(!a.pdg);
        assert_eq!(a.sync, SyncMode::Spin);
        assert!(a.scheme.is_none());

        let a = args(&[
            "emit",
            "p.cmm",
            "--scheme",
            "ps-dswp",
            "--threads",
            "4",
            "--sync",
            "lib",
            "--effects",
            "p.fx",
            "--pdg",
            "--hot-func",
            "work",
        ])
        .unwrap();
        assert_eq!(a.scheme, Some(Scheme::PsDswp));
        assert_eq!(a.threads, 4);
        assert_eq!(a.sync, SyncMode::Lib);
        assert_eq!(a.effects.as_deref(), Some("p.fx"));
        assert!(a.pdg);
        assert_eq!(a.hot_func.as_deref(), Some("work"));

        let a = args(&[
            "check",
            "p.cmm",
            "--threads",
            "2",
            "--budget",
            "12",
            "--seed",
            "7",
            "--fuzz",
        ])
        .unwrap();
        assert_eq!(a.command, "check");
        assert_eq!(a.threads, 2);
        assert_eq!(a.budget, Some(12));
        assert_eq!(a.seed, Some(7));
        assert!(a.fuzz);
        assert_eq!(a.jobs, 1, "jobs defaults to 1");
        assert!(a.corpus.is_none() && !a.capture_corpus);

        let a = args(&[
            "check",
            "p.cmm",
            "--jobs",
            "8",
            "--corpus",
            "my/corpus",
            "--capture-corpus",
        ])
        .unwrap();
        assert_eq!(a.jobs, 8);
        assert_eq!(a.corpus.as_deref(), Some("my/corpus"));
        assert!(a.capture_corpus);

        let a = args(&["compile", "p.cmm", "--dump-bytecode"]).unwrap();
        assert_eq!(a.command, "compile");
        assert!(a.dump_bytecode);
        let a = args(&["compile", "p.cmm", "--scheme", "doall"]).unwrap();
        assert!(!a.dump_bytecode, "dump is opt-in");
        assert_eq!(a.scheme, Some(Scheme::Doall));

        let a = args(&["check", "p.cmm"]).unwrap();
        assert_eq!(a.engine, Engine::Auto, "engine defaults to auto");
        let a = args(&["check", "p.cmm", "--engine", "tree-walk"]).unwrap();
        assert_eq!(a.engine, Engine::TreeWalk);
        let a = args(&["check", "p.cmm", "--engine", "bytecode"]).unwrap();
        assert_eq!(a.engine, Engine::Bytecode);
        assert!(args(&["check", "p.cmm", "--engine", "jit"]).is_err());

        // The REPLAY: line prints the seed in hex; it must paste back.
        let a = args(&["check", "p.cmm", "--seed", "0x5eedc0de"]).unwrap();
        assert_eq!(a.seed, Some(0x5eed_c0de));

        let a = args(&[
            "profile",
            "p.cmm",
            "--scheme",
            "dswp",
            "--threads",
            "4",
            "--trace-out",
            "run.json",
            "--real",
        ])
        .unwrap();
        assert_eq!(a.command, "profile");
        assert_eq!(a.scheme, Some(Scheme::Dswp));
        assert_eq!(a.trace_out.as_deref(), Some("run.json"));
        assert!(a.real);
        // Defaults: DES backend, no trace export, observability opt-in.
        let a = args(&["profile", "p.cmm", "--scheme", "doall"]).unwrap();
        assert!(!a.real);
        assert!(a.trace_out.is_none());
        assert!(!a.metrics && a.journal.is_none() && a.journal_out.is_none());
        assert_eq!(a.top, 10, "hotspot tables default to 10 rows");

        let a = args(&[
            "profile",
            "p.cmm",
            "--scheme",
            "doall",
            "--metrics",
            "--journal-out",
            "run.jsonl",
            "--top",
            "3",
        ])
        .unwrap();
        assert!(a.metrics);
        assert_eq!(a.journal_out.as_deref(), Some("run.jsonl"));
        assert_eq!(a.top, 3);
    }

    #[test]
    fn report_parses_live_and_saved_journal_forms() {
        // Live: a source positional plus the usual schedule knobs.
        let a = args(&["report", "p.cmm", "--scheme", "dswp", "--top", "5"]).unwrap();
        assert_eq!(a.command, "report");
        assert_eq!(a.file, "p.cmm");
        assert_eq!(a.scheme, Some(Scheme::Dswp));
        assert_eq!(a.top, 5);
        // Saved: `--journal FILE` with no source positional at all.
        let a = args(&["report", "--journal", "run.jsonl"]).unwrap();
        assert_eq!(a.journal.as_deref(), Some("run.jsonl"));
        assert!(a.file.is_empty());
        // Without --journal, report still needs an input file.
        let err = args(&["report", "--top", "4"]).unwrap_err();
        assert!(err.contains("missing input file"), "{err}");
        // A live report with no schedule knob is a usage error (exit 2),
        // caught at parse time rather than deep inside run().
        let err = args(&["report", "p.cmm"]).unwrap_err();
        assert!(err.contains("report needs --scheme"), "{err}");
        // And so does every other command.
        let err = args(&["profile", "--scheme", "doall"]).unwrap_err();
        assert!(err.contains("missing input file"), "{err}");
    }

    #[test]
    fn malformed_invocations_are_rejected() {
        assert!(args(&[]).is_err(), "missing command");
        assert!(args(&["analyze"]).is_err(), "missing file");
        assert!(args(&["emit", "f.cmm", "--scheme", "magic"]).is_err());
        assert!(args(&["emit", "f.cmm", "--sync", "rcu"]).is_err());
        assert!(args(&["emit", "f.cmm", "--threads", "many"]).is_err());
        assert!(
            args(&["emit", "f.cmm", "--threads"]).is_err(),
            "value missing"
        );
        assert!(args(&["analyze", "f.cmm", "--frobnicate"]).is_err());
        assert!(args(&["check", "f.cmm", "--budget", "lots"]).is_err());
        assert!(args(&["check", "f.cmm", "--seed", "entropy"]).is_err());
        assert!(
            args(&["profile", "f.cmm", "--trace-out"]).is_err(),
            "value missing"
        );
        // Unknown commands are rejected before any file is touched.
        let err = args(&["bogus", "f.cmm"]).unwrap_err();
        assert!(err.contains("unknown command"), "{err}");
        // A zero schedule budget explores nothing: rejected at parse time
        // so the CLI exits 2 with the usage message instead of running a
        // vacuous check (or worse, panicking downstream).
        let err = args(&["check", "f.cmm", "--budget", "0"]).unwrap_err();
        assert!(err.contains("--budget"), "{err}");
        // Zero checker threads would explore nothing in parallel mode.
        let err = args(&["check", "f.cmm", "--jobs", "0"]).unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
        // Zero hotspot rows would render empty tables.
        let err = args(&["report", "f.cmm", "--top", "0"]).unwrap_err();
        assert!(err.contains("--top"), "{err}");
        assert!(args(&["report", "f.cmm", "--top", "many"]).is_err());
        assert!(args(&["report", "--journal"]).is_err(), "value missing");
        assert!(args(&["check", "f.cmm", "--jobs", "many"]).is_err());
        assert!(
            args(&["check", "f.cmm", "--corpus"]).is_err(),
            "value missing"
        );
        assert!(args(&["profile", "f.cmm", "--deadline-ms", "soon"]).is_err());
        assert!(args(&["profile", "f.cmm", "--max-retries", "lots"]).is_err());
        assert!(
            args(&["profile", "f.cmm", "--repro-dir"]).is_err(),
            "value missing"
        );
    }

    #[test]
    fn recovery_flags_parse() {
        let a = args(&[
            "profile",
            "p.cmm",
            "--scheme",
            "doall",
            "--recover",
            "--deadline-ms",
            "250",
            "--max-retries",
            "5",
            "--repro-dir",
            "out/repro",
        ])
        .unwrap();
        assert!(a.recover);
        assert_eq!(a.deadline_ms, Some(250));
        assert_eq!(a.max_retries, Some(5));
        assert_eq!(a.repro_dir.as_deref(), Some("out/repro"));
        // Recovery is opt-in.
        let a = args(&["profile", "p.cmm", "--scheme", "doall"]).unwrap();
        assert!(!a.recover);
        assert!(a.deadline_ms.is_none());
    }

    #[test]
    fn replay_with_missing_or_corrupt_bundle_is_a_usage_error() {
        let a = args(&["replay", "/nonexistent/x.repro.json"]).unwrap();
        let err = run_replay(&a).unwrap_err();
        assert!(err.contains("cannot read bundle"), "{err}");

        let dir = std::env::temp_dir().join("commsetc_replay_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.repro.json");
        std::fs::write(&bad, "{ this is not json").unwrap();
        let a = args(&["replay", bad.to_str().unwrap()]).unwrap();
        let err = run_replay(&a).unwrap_err();
        assert!(err.contains("corrupt bundle"), "{err}");
    }

    #[test]
    fn profile_without_scheme_is_a_run_error() {
        let dir = std::env::temp_dir().join("commsetc_profile_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("p.cmm");
        std::fs::write(
            &file,
            "int main() {\n    int n = 4;\n    int s = 0;\n    \
             for (int i = 0; i < n; i = i + 1) { s = s + i; }\n    \
             return s;\n}\n",
        )
        .unwrap();
        let a = args(&["profile", file.to_str().unwrap()]).unwrap();
        let err = run(&a).unwrap_err();
        assert!(err.contains("--scheme"), "{err}");
    }

    #[test]
    fn missing_input_file_is_a_run_error() {
        let a = args(&["analyze", "/nonexistent/x.cmm"]).unwrap();
        let err = run(&a).unwrap_err();
        assert!(err.contains("x.cmm"), "{err}");
    }
}
