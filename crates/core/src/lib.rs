//! # commset
//!
//! The COMMSET compiler, end to end — a Rust reproduction of
//! *"Commutative Set: A Language Extension for Implicit Parallel
//! Programming"* (Prabhu, Ghosh, Zhang, Johnson, August — PLDI 2011).
//!
//! This facade crate wires the whole pipeline together behind the
//! [`Compiler`] driver (paper Figure 5):
//!
//! 1. front end: parse + type check + COMMSET pragma resolution
//!    (`commset-lang`),
//! 2. metadata manager: named-block inlining, commutative-region
//!    outlining, well-formedness (`commset-analysis`),
//! 3. PDG construction and Algorithm 1 — `uco`/`ico` annotation of memory
//!    dependences under symbolically proven predicates,
//! 4. parallelizing transforms: DOALL, DSWP, PS-DSWP with the
//!    rank-ordered synchronization engine (`commset-transform`),
//! 5. lowering and execution: sequential, simulated-multicore
//!    (discrete-event) and real-thread executors (`commset-ir`,
//!    `commset-interp`).
//!
//! # Examples
//!
//! ```
//! use commset::{Compiler, Scheme, SyncMode};
//! use commset_ir::IntrinsicTable;
//! use commset_lang::ast::Type;
//!
//! let mut table = IntrinsicTable::new();
//! table.register("work", vec![Type::Int], Type::Void, &[], &["OUT"], 200);
//! let compiler = Compiler::new(table);
//! let analysis = compiler.analyze(r#"
//!     extern void work(int i);
//!     int main() {
//!         int n = 32;
//!         for (int i = 0; i < n; i = i + 1) {
//!             #pragma CommSet(SELF)
//!             { work(i); }
//!         }
//!         return 0;
//!     }
//! "#)?;
//! assert!(analysis.doall_legal());
//! let (module, plan) = compiler.compile(&analysis, Scheme::Doall, 4, SyncMode::Spin)?;
//! assert_eq!(plan.workers.len(), 4);
//! # let _ = module;
//! # Ok::<(), commset_lang::Diagnostic>(())
//! ```

use commset_analysis::depanalysis::analyze_commutativity;
use commset_analysis::effects::{summarize, FuncEffects};
use commset_analysis::hotloop::find_hot_loop;
use commset_analysis::metadata::manage;
use commset_analysis::pdg::{DepKind, Pdg};
use commset_analysis::scc::{dag_scc, DagScc};
use commset_analysis::{HotLoop, ManagedUnit};
use commset_ir::{lower_program, IntrinsicTable, Module};
use commset_lang::diag::{Diagnostic, Phase};
use commset_transform::{doall, dswp};
use std::collections::{BTreeSet, HashMap};

pub use commset_transform::{ParallelPlan, ParallelProgram, Scheme, SyncMode};

pub mod merge_law;
pub mod profile;
pub mod replay;
pub mod report;
pub mod spec;

/// The result of the analysis half of the pipeline: everything the
/// transforms (and the diagnostics) need.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The canonicalized program and CommSet tables.
    pub managed: ManagedUnit,
    /// The hot loop.
    pub hot: HotLoop,
    /// The PDG, with Algorithm 1 annotations applied.
    pub pdg: Pdg,
    /// Its DAG-SCC.
    pub dag: DagScc,
    /// Function effect summaries.
    pub summaries: HashMap<String, FuncEffects>,
    /// Number of memory edges Algorithm 1 annotated.
    pub relaxed_edges: usize,
    /// Number of `#pragma` annotation lines in the source.
    pub annotation_lines: usize,
    /// Source lines of code (non-blank).
    pub sloc: usize,
}

impl Analysis {
    /// True if the relaxed PDG admits DOALL (countability checked by the
    /// transform).
    pub fn doall_legal(&self) -> bool {
        self.pdg.doall_legal() && self.hot.shape.is_countable()
    }

    /// Human-readable list of the loop-carried dependences that still
    /// inhibit parallelization — the feedback the paper's workflow shows
    /// the programmer (Figure 5).
    pub fn explain_inhibitors(&self) -> Vec<String> {
        self.pdg
            .inhibitors()
            .iter()
            .map(|e| {
                let what = match &e.kind {
                    DepKind::RegFlow(v) => format!("value of `{v}`"),
                    DepKind::Memory { loc, src_call, .. } => match src_call {
                        Some(c) => format!("{loc} via call to `{}`", c.callee),
                        None => format!("{loc}"),
                    },
                    DepKind::Control => "loop control".to_string(),
                };
                format!(
                    "loop-carried dependence {} -> {} on {} (line {} -> line {})",
                    self.pdg.nodes[e.src.0].label,
                    self.pdg.nodes[e.dst.0].label,
                    what,
                    self.pdg.nodes[e.src.0].span.line,
                    self.pdg.nodes[e.dst.0].span.line,
                )
            })
            .collect()
    }

    /// The PDG rendered for debugging (Figure 2 in text form).
    pub fn pdg_dump(&self) -> String {
        self.pdg.dump()
    }
}

/// The end-to-end COMMSET compiler driver.
#[derive(Debug, Clone)]
pub struct Compiler {
    /// Intrinsic signatures (types, effect channels, base costs).
    pub intrinsics: IntrinsicTable,
    /// Channels whose effects cannot be rolled back (I/O); members touching
    /// them reject the TM sync mode, as in the paper's evaluation.
    pub irrevocable: BTreeSet<String>,
    /// The function whose first top-level loop is the parallelization
    /// target (profiling stand-in; default `main`).
    pub hot_func: String,
}

impl Compiler {
    /// Creates a driver over the given intrinsic table.
    pub fn new(intrinsics: IntrinsicTable) -> Self {
        Compiler {
            intrinsics,
            irrevocable: BTreeSet::new(),
            hot_func: "main".to_string(),
        }
    }

    /// Declares irrevocable channels (builder style).
    pub fn with_irrevocable(mut self, channels: &[&str]) -> Self {
        self.irrevocable = channels.iter().map(|c| c.to_string()).collect();
        self
    }

    /// Sets the hot function (builder style).
    pub fn with_hot_func(mut self, name: &str) -> Self {
        self.hot_func = name.to_string();
        self
    }

    /// Runs the analysis half of the pipeline on `source`.
    ///
    /// # Errors
    ///
    /// Returns the first front-end, metadata-manager or hot-loop
    /// diagnostic.
    pub fn analyze(&self, source: &str) -> Result<Analysis, Diagnostic> {
        let annotation_lines = source
            .lines()
            .filter(|l| l.trim_start().starts_with("#pragma"))
            .count();
        let sloc = source.lines().filter(|l| !l.trim().is_empty()).count();
        let unit = commset_lang::compile_unit(source)?;
        let managed = manage(unit)?;
        let summaries = summarize(&managed.program, &self.intrinsics);
        let hot = find_hot_loop(&managed, &summaries, &self.intrinsics, &self.hot_func)?;
        let mut pdg = Pdg::build(&hot);
        let relaxed_edges = analyze_commutativity(&mut pdg, &managed, &hot);
        let dag = dag_scc(&pdg);
        Ok(Analysis {
            managed,
            hot,
            pdg,
            dag,
            summaries,
            relaxed_edges,
            annotation_lines,
            sloc,
        })
    }

    /// Lowers the *sequential* (untransformed) program.
    ///
    /// # Errors
    ///
    /// Returns lowering diagnostics.
    pub fn compile_sequential(&self, analysis: &Analysis) -> Result<Module, Diagnostic> {
        lower_program(&analysis.managed.program, self.intrinsics.clone())
    }

    /// Applies `scheme` with `nthreads` workers under `sync`, returning
    /// the lowered module and its execution plan.
    ///
    /// # Errors
    ///
    /// Returns the transform's applicability diagnostic (e.g. "DOALL
    /// illegal", "PS-DSWP inapplicable", "transactions are not
    /// applicable").
    pub fn compile(
        &self,
        analysis: &Analysis,
        scheme: Scheme,
        nthreads: usize,
        sync: SyncMode,
    ) -> Result<(Module, ParallelPlan), Diagnostic> {
        let pp = self.compile_to_ast(analysis, scheme, nthreads, sync)?;
        let module = lower_program(&pp.program, self.intrinsics.clone())?;
        Ok((module, pp.plan))
    }

    /// Applies `scheme` and returns the transformed program as *source
    /// AST* — worker functions, queue and lock calls, and the rewritten
    /// `main` — plus the plan. Pretty-print it with
    /// [`commset_lang::printer::print_program`] to inspect what the
    /// transforms generated.
    ///
    /// # Errors
    ///
    /// Returns the transform's applicability diagnostic, as
    /// [`Compiler::compile`] does.
    pub fn compile_to_ast(
        &self,
        analysis: &Analysis,
        scheme: Scheme,
        nthreads: usize,
        sync: SyncMode,
    ) -> Result<ParallelProgram, Diagnostic> {
        let pp = match scheme {
            Scheme::Sequential => {
                return Err(Diagnostic::global(
                    Phase::Commset,
                    "use compile_sequential for the sequential scheme",
                ))
            }
            Scheme::Doall => doall::apply_doall(
                &analysis.managed,
                &analysis.hot,
                &analysis.pdg,
                &analysis.summaries,
                &self.irrevocable,
                nthreads,
                sync,
                0,
            )?,
            Scheme::Dswp => dswp::apply_pipeline(
                &analysis.managed,
                &analysis.hot,
                &analysis.pdg,
                &analysis.dag,
                &analysis.summaries,
                &self.irrevocable,
                nthreads,
                sync,
                0,
            )?,
            Scheme::PsDswp => dswp::apply_ps_dswp(
                &analysis.managed,
                &analysis.hot,
                &analysis.pdg,
                &analysis.dag,
                &analysis.summaries,
                &self.irrevocable,
                nthreads,
                sync,
                0,
            )?,
        };
        Ok(pp)
    }

    /// Compiles every applicable (scheme, sync mode) combination at
    /// `nthreads`, returning them ranked by the static performance
    /// estimate (lowest estimated cost first).
    ///
    /// This is the selection step the paper leaves to "a production
    /// quality compiler \[that\] would typically use heuristics to select
    /// the optimal across all parallelization schemes" (§4.5).
    pub fn compile_all(
        &self,
        analysis: &Analysis,
        nthreads: usize,
    ) -> Vec<(Scheme, SyncMode, Module, ParallelPlan)> {
        let mut out = Vec::new();
        for scheme in [Scheme::Doall, Scheme::Dswp, Scheme::PsDswp] {
            for sync in [SyncMode::Lib, SyncMode::Spin, SyncMode::Mutex, SyncMode::Tm] {
                if let Ok((module, plan)) = self.compile(analysis, scheme, nthreads, sync) {
                    out.push((scheme, sync, module, plan));
                }
            }
        }
        out.sort_by(|a, b| {
            a.3.estimated_cost
                .partial_cmp(&b.3.estimated_cost)
                .expect("estimates are finite")
        });
        out
    }

    /// The estimator's preferred schedule at `nthreads`, if any applies.
    pub fn compile_best(
        &self,
        analysis: &Analysis,
        nthreads: usize,
    ) -> Option<(Scheme, SyncMode, Module, ParallelPlan)> {
        self.compile_all(analysis, nthreads).into_iter().next()
    }

    /// Which transforms apply to this loop at `nthreads` threads, mirroring
    /// the "Parallelizing Transforms" column of Table 2.
    pub fn applicable_schemes(&self, analysis: &Analysis, nthreads: usize) -> Vec<Scheme> {
        let mut out = Vec::new();
        for scheme in [Scheme::Doall, Scheme::Dswp, Scheme::PsDswp] {
            if self
                .compile(analysis, scheme, nthreads, SyncMode::Lib)
                .is_ok()
            {
                out.push(scheme);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commset_lang::ast::Type;

    fn compiler() -> Compiler {
        let mut table = IntrinsicTable::new();
        table.register("io_read", vec![Type::Int], Type::Int, &["FS"], &["FS"], 100);
        table.register("emit", vec![Type::Int], Type::Void, &[], &["CONSOLE"], 40);
        table.register("pure", vec![Type::Int], Type::Int, &[], &[], 300);
        Compiler::new(table).with_irrevocable(&["FS", "CONSOLE"])
    }

    const ANNOTATED: &str = r#"
        #pragma CommSetDecl(FSET, Group)
        #pragma CommSetPredicate(FSET, (i1), (i2), i1 != i2)
        extern int io_read(int i);
        extern void emit(int d);
        extern int pure(int x);
        int main() {
            int n = 16;
            for (int i = 0; i < n; i = i + 1) {
                int x = 0;
                #pragma CommSet(SELF, FSET(i))
                { x = io_read(i); }
                int d = pure(x);
                #pragma CommSet(SELF, FSET(i))
                { emit(d); }
            }
            return 0;
        }
    "#;

    #[test]
    fn full_pipeline_compiles_all_schemes() {
        let c = compiler();
        let a = c.analyze(ANNOTATED).unwrap();
        assert!(a.relaxed_edges > 0);
        assert!(a.doall_legal(), "{}", a.pdg_dump());
        assert_eq!(a.annotation_lines, 4);
        let schemes = c.applicable_schemes(&a, 8);
        assert!(schemes.contains(&Scheme::Doall), "{schemes:?}");
        assert!(schemes.contains(&Scheme::PsDswp), "{schemes:?}");
        let (module, plan) = c.compile(&a, Scheme::Doall, 8, SyncMode::Spin).unwrap();
        assert_eq!(plan.workers.len(), 8);
        assert!(module.func_id("__par0_doall").is_some());
    }

    #[test]
    fn unannotated_program_reports_inhibitors() {
        let c = compiler();
        let src = r#"
            extern int io_read(int i);
            int main() {
                int n = 16;
                for (int i = 0; i < n; i = i + 1) {
                    int x = io_read(i);
                }
                return 0;
            }
        "#;
        let a = c.analyze(src).unwrap();
        assert!(!a.doall_legal());
        let inhibitors = a.explain_inhibitors();
        assert!(!inhibitors.is_empty());
        assert!(
            inhibitors.iter().any(|m| m.contains("io_read")),
            "{inhibitors:?}"
        );
        assert!(c.compile(&a, Scheme::Doall, 4, SyncMode::Spin).is_err());
    }

    #[test]
    fn tm_rejected_on_irrevocable_channels() {
        let c = compiler();
        let a = c.analyze(ANNOTATED).unwrap();
        let e = c.compile(&a, Scheme::Doall, 4, SyncMode::Tm).unwrap_err();
        assert!(e.message.contains("irrevocable"), "{e}");
    }

    #[test]
    fn compile_best_prefers_lockless_doall_here() {
        let c = compiler();
        let a = c.analyze(ANNOTATED).unwrap();
        let ranked = c.compile_all(&a, 8);
        assert!(ranked.len() >= 4, "several schedules apply");
        let (scheme, sync, _, _) = c.compile_best(&a, 8).expect("something applies");
        assert_eq!(scheme, Scheme::Doall);
        assert_eq!(sync, SyncMode::Lib, "no locks beats locks in the estimate");
        // Ranking is by estimated cost, ascending.
        for pair in ranked.windows(2) {
            assert!(pair[0].3.estimated_cost <= pair[1].3.estimated_cost);
        }
    }

    #[test]
    fn deterministic_variant_loses_doall_keeps_pipeline() {
        // Omitting SELF on the emit block (deterministic output, §2) must
        // forbid DOALL but keep PS-DSWP — the md5sum Figure 3 story.
        let c = compiler();
        let det = ANNOTATED.replace(
            "#pragma CommSet(SELF, FSET(i))\n                { emit(d); }",
            "#pragma CommSet(FSET(i))\n                { emit(d); }",
        );
        let a = c.analyze(&det).unwrap();
        assert!(!a.doall_legal(), "{}", a.pdg_dump());
        let schemes = c.applicable_schemes(&a, 8);
        assert!(!schemes.contains(&Scheme::Doall));
        assert!(schemes.contains(&Scheme::PsDswp), "{schemes:?}");
    }
}
