//! Merge-operator law validation for `custom(fn)` sidecar rows.
//!
//! A `merge CHAN custom(f)` row hands the section-barrier delta coalesce
//! to a program-defined operator. The runtime folds per-worker deltas in
//! a deterministic order, but the result only matches the sequential
//! oracle when the operator satisfies the laws the privatized execution
//! silently assumes: commutativity, associativity, and identity 0 (the
//! value a fresh delta buffer starts from). This module checks those
//! laws *dynamically* before any schedule is explored: the named Cmm
//! function `int f(int a, int b)` is evaluated over SplitMix64-seeded
//! samples, and any violation is rejected with a structured `merge`
//! diagnostic carrying a concrete witness pair — the same
//! evidence-not-assertion style the checker uses for schedule
//! divergences.
//!
//! The built-in operators (`add`, `max`, `set-union`) are law-abiding by
//! construction and are not re-checked here.

use crate::spec::EffectsSpec;
use commset_interp::globals::PlainGlobals;
use commset_interp::vm::StepOutcome;
use commset_interp::Vm;
use commset_ir::repr::Module;
use commset_ir::{lower_program, IntrinsicTable};
use commset_lang::ast::Type;
use commset_lang::diag::{Diagnostic, Phase};
use commset_runtime::rng::SplitMix64;
use commset_runtime::Value;

/// Seed for the sampled-law probes. Fixed so a violation always reports
/// the same witness pair (goldenable diagnostics).
const LAW_SEED: u64 = 0xC0A1_E5CE_D317_0005;

/// Number of sampled triples per law.
const LAW_SAMPLES: usize = 32;

fn merge_diag(chan: &str, func: &str, detail: String) -> Diagnostic {
    Diagnostic::global(
        Phase::Commset,
        format!("merge `{chan}` custom({func}): {detail}"),
    )
}

/// Evaluates the pure Cmm function `func(a, b)` to completion.
fn eval2(module: &Module, func: &str, a: i64, b: i64) -> Result<i64, String> {
    let mut vm =
        Vm::for_name(module, func, &[Value::Int(a), Value::Int(b)]).map_err(|e| e.to_string())?;
    // Fresh globals per call: the operator must behave as a pure
    // function of its arguments, so persistent state is not modeled.
    let mut globals = PlainGlobals::new(module);
    loop {
        match vm.step(&mut globals).map_err(|e| e.to_string())? {
            StepOutcome::Ran { .. } => {}
            StepOutcome::Finished(Some(Value::Int(v))) => return Ok(v),
            StepOutcome::Finished(other) => {
                return Err(format!("returned {other:?} instead of an int"))
            }
            StepOutcome::Special(p) => {
                return Err(format!(
                    "calls extern `{}`; custom merge operators must be pure",
                    module.intrinsics.name(p.intrinsic.0 as usize)
                ))
            }
        }
    }
}

/// Validates every `custom(fn)` merge row in `spec` against the merge
/// laws, by sampled evaluation of the named function in `source`.
///
/// # Errors
///
/// Returns a `merge`-prefixed [`Diagnostic`] naming the channel, the
/// operator function, the violated law, and a concrete witness when the
/// function is missing, has the wrong signature, is impure, traps, or
/// fails commutativity / associativity / identity-0 on a sampled input.
pub fn validate_custom_merges(
    source: &str,
    spec: &EffectsSpec,
    table: &IntrinsicTable,
) -> Result<(), Diagnostic> {
    let customs: Vec<(&str, &str)> = spec
        .merges
        .iter()
        .filter_map(|(chan, op)| {
            let f = op.strip_prefix("custom(")?.strip_suffix(')')?;
            Some((chan.as_str(), f))
        })
        .collect();
    if customs.is_empty() {
        return Ok(());
    }
    let unit = commset_lang::compile_unit(source)?;
    let module = lower_program(&unit.program, table.clone())?;
    for (chan, func) in customs {
        let Some(id) = module.func_id(func) else {
            return Err(merge_diag(
                chan,
                func,
                "operator function is not defined in the program".into(),
            ));
        };
        let f = module.func(id);
        let int_params = f.param_count == 2 && f.slots[..2].iter().all(|s| s.ty == Type::Int);
        if !int_params || f.ret != Type::Int {
            return Err(merge_diag(
                chan,
                func,
                format!(
                    "operator must have signature `int {func}(int, int)`, \
                     found {} parameter(s) returning {:?}",
                    f.param_count, f.ret
                ),
            ));
        }
        let eval = |a: i64, b: i64| -> Result<i64, Diagnostic> {
            eval2(&module, func, a, b)
                .map_err(|detail| merge_diag(chan, func, format!("{func}({a}, {b}) {detail}")))
        };
        // Small magnitudes keep the probes inside i64 arithmetic for any
        // reasonable operator; edge values are seeded explicitly.
        let mut rng = SplitMix64::new(LAW_SEED);
        let mut sample = || (rng.next_u64() % 2001) as i64 - 1000;
        let mut triples = vec![(0, 0, 0), (1, -1, 2), (-1000, 1000, 1)];
        for _ in 0..LAW_SAMPLES {
            triples.push((sample(), sample(), sample()));
        }
        for &(a, b, c) in &triples {
            let ab = eval(a, b)?;
            let ba = eval(b, a)?;
            if ab != ba {
                return Err(merge_diag(
                    chan,
                    func,
                    format!(
                        "operator is not commutative: {func}({a}, {b}) = {ab} \
                         but {func}({b}, {a}) = {ba}"
                    ),
                ));
            }
            let ab_c = eval(ab, c)?;
            let bc = eval(b, c)?;
            let a_bc = eval(a, bc)?;
            if ab_c != a_bc {
                return Err(merge_diag(
                    chan,
                    func,
                    format!(
                        "operator is not associative: \
                         {func}({func}({a}, {b}), {c}) = {ab_c} but \
                         {func}({a}, {func}({b}, {c})) = {a_bc}"
                    ),
                ));
            }
            let a0 = eval(a, 0)?;
            if a0 != a {
                return Err(merge_diag(
                    chan,
                    func,
                    format!(
                        "operator lacks identity 0: {func}({a}, 0) = {a0}, \
                         expected {a}"
                    ),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_effects;

    fn check(src: &str, effects: &str) -> Result<(), Diagnostic> {
        let spec = parse_effects(effects).expect("sidecar parses");
        validate_custom_merges(src, &spec, &IntrinsicTable::new())
    }

    #[test]
    fn lawful_operator_passes() {
        let src = "int join(int a, int b) { return a + b; }\n\
                   int main() { return join(1, 2); }";
        check(src, "merge ACC custom(join)\n").expect("addition is lawful");
    }

    #[test]
    fn saturating_max_style_operator_passes() {
        let src = "int keep_max(int a, int b) { if (a > b) { return a; } return b; }\n\
                   int main() { return keep_max(1, 2); }";
        // max over the sampled range has identity 0 only for non-negative
        // inputs — expect the identity law to catch the negative witness.
        let err = check(src, "merge HI custom(keep_max)\n").unwrap_err();
        assert!(err.message.contains("lacks identity 0"), "{err}");
    }

    #[test]
    fn subtraction_fails_commutativity_with_a_witness() {
        let src = "int join(int a, int b) { return a - b; }\n\
                   int main() { return join(1, 2); }";
        let err = check(src, "merge ACC custom(join)\n").unwrap_err();
        assert!(
            err.message.starts_with("merge `ACC` custom(join):"),
            "{err}"
        );
        assert!(err.message.contains("not commutative"), "{err}");
    }

    #[test]
    fn missing_and_misshapen_operators_are_rejected() {
        let err = check("int main() { return 0; }", "merge ACC custom(nope)\n").unwrap_err();
        assert!(err.message.contains("not defined"), "{err}");
        let err = check(
            "int one(int a) { return a; } int main() { return 0; }",
            "merge ACC custom(one)\n",
        )
        .unwrap_err();
        assert!(err.message.contains("signature"), "{err}");
    }

    #[test]
    fn builtin_rows_are_not_rechecked() {
        check("int main() { return 0; }", "merge ACC add\nmerge HI max\n")
            .expect("built-ins need no program function");
    }
}
