//! The `commsetc profile` runner: execute a compiled `.cmm` program
//! against a *synthetic deterministic world* with telemetry on, yielding a
//! [`RunReport`] (stage balance, lock contention by rank, queue traffic,
//! unified counters) without the user writing any intrinsic handlers.
//!
//! The synthetic world mirrors the dynamic checker's abstract model
//! ([`commset-checker`]'s `ModelWorld`): return values are pure hash
//! functions of `(intrinsic, args)`, handle allocators yield deterministic
//! fresh handles, argument-less effect-free size queries return the
//! sidecar's `model size` (default 6) as the loop bound, and int-returning
//! writers of a per-instance channel model `fread`-style streams — `1` for
//! `model stream` calls per instance key (default 3), then `0`. Costs come
//! from the effects sidecar's `cost=` rows, so the DES profile reflects
//! the declared workload shape.
//!
//! Two backends:
//!
//! * the **discrete-event simulator** (default) — deterministic ticks, so
//!   profiles are bit-identical across runs and golden-testable;
//! * the **real-thread executor** (`--real`) — monotonic nanoseconds, for
//!   observing actual contention on the host.

use crate::spec::EffectsSpec;
use crate::{Analysis, Compiler, Scheme, SyncMode};
use commset_interp::{run_simulated_with, run_threaded_with, ExecConfig};
use commset_ir::IntrinsicTable;
use commset_lang::ast::Type;
use commset_runtime::intrinsics::{IntrinsicOutcome, Registry};
use commset_runtime::{Value, World};
use commset_sim::CostModel;
use commset_telemetry::RunReport;
use std::collections::BTreeMap;

/// World slot holding the per-instance stream countdowns.
const STREAMS_SLOT: &str = "__profile_streams";

type Streams = BTreeMap<(String, i64), i64>;

/// Splittable 64-bit mixer (same finalizer as `SplitMix64`, and the same
/// hash the checker's model world uses, so profile runs and check runs
/// agree on every modeled return value).
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn hash_call(name: &str, args: &[Value]) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for b in name.bytes() {
        h = mix64(h ^ u64::from(b));
    }
    for a in args {
        let bits = match a {
            Value::Int(i) => *i as u64,
            Value::Float(f) => f.to_bits(),
        };
        h = mix64(h ^ bits);
    }
    h
}

/// Builds a handler registry for every intrinsic in `table`, with the
/// checker-model semantics described in the module docs.
pub fn synthetic_registry(table: &IntrinsicTable, spec: &EffectsSpec) -> Registry {
    let size = spec.model_size.unwrap_or(6);
    let stream_len = spec.model_stream.unwrap_or(3);
    let mut reg = Registry::new();
    for (name, sig) in table.iter() {
        let owned = name.to_string();
        let fresh = table.is_fresh_handle(name);
        let ret = sig.ret;
        let size_query = ret == Type::Int && sig.params.is_empty() && sig.writes.is_empty();
        // Stream modeling: an int-returning intrinsic that writes a
        // per-instance channel, keyed by its first argument.
        let stream_chan = (ret == Type::Int && !sig.params.is_empty())
            .then(|| {
                sig.writes
                    .iter()
                    .find(|c| table.is_per_instance(**c))
                    .map(|c| table.channels.name(*c).to_string())
            })
            .flatten();
        reg.register(name, move |world: &mut World, args: &[Value]| {
            let h = hash_call(&owned, args);
            let value = if fresh {
                Value::Int((h & 0x3fff_ffff) as i64 | 1)
            } else if let Some(chan) = &stream_chan {
                let key = args.first().map(|v| v.as_int()).unwrap_or(0);
                let streams = world.get_mut::<Streams>(STREAMS_SLOT);
                let remaining = streams.entry((chan.clone(), key)).or_insert(stream_len);
                let v = i64::from(*remaining > 0);
                if *remaining > 0 {
                    *remaining -= 1;
                }
                Value::Int(v)
            } else {
                match ret {
                    Type::Void => Value::Int(0),
                    Type::Float => Value::Float((h % 1000) as f64),
                    Type::Int if size_query => Value::Int(size),
                    _ => Value::Int((h % 1009) as i64),
                }
            };
            IntrinsicOutcome::value(value)
        });
    }
    reg
}

/// A fresh world carrying the stream-countdown slot the synthetic
/// registry's handlers expect.
pub fn synthetic_world() -> World {
    let mut w = World::new();
    w.install(STREAMS_SLOT, Streams::new());
    w
}

/// The outcome of a profiling run.
#[derive(Debug, Clone)]
pub struct ProfileOutcome {
    /// The unified telemetry report.
    pub report: RunReport,
    /// Total simulated time, when the DES backend ran (`None` under
    /// `--real`).
    pub sim_time: Option<u64>,
    /// The merged metrics registry, when `ExecConfig::metrics` was on.
    pub metrics: Option<commset_telemetry::MetricsRegistry>,
}

/// Compiles `analysis` under `(scheme, threads, sync)` and profiles one
/// run against the synthetic world with telemetry enabled.
///
/// `real` selects the real-thread executor; the default is the
/// deterministic discrete-event simulator.
///
/// # Errors
///
/// Returns the transform's applicability diagnostic or the executor's
/// failure, rendered as a string for the CLI.
pub fn run_profile(
    compiler: &Compiler,
    analysis: &Analysis,
    spec: &EffectsSpec,
    scheme: Scheme,
    threads: usize,
    sync: SyncMode,
    real: bool,
) -> Result<ProfileOutcome, String> {
    let cfg = ExecConfig {
        telemetry: true,
        ..ExecConfig::default()
    };
    run_profile_with(compiler, analysis, spec, scheme, threads, sync, real, &cfg)
}

/// [`run_profile`] with a caller-supplied [`ExecConfig`] — the hook for
/// `--metrics` (hotspot registry) and an attached event journal.
/// Telemetry is forced on regardless of `cfg.telemetry`: a profile
/// without a span report is not a profile.
///
/// # Errors
///
/// As [`run_profile`].
#[allow(clippy::too_many_arguments)]
pub fn run_profile_with(
    compiler: &Compiler,
    analysis: &Analysis,
    spec: &EffectsSpec,
    scheme: Scheme,
    threads: usize,
    sync: SyncMode,
    real: bool,
    cfg: &ExecConfig,
) -> Result<ProfileOutcome, String> {
    let (module, plan) = compiler
        .compile(analysis, scheme, threads, sync)
        .map_err(|d| d.to_string())?;
    let registry = synthetic_registry(&compiler.intrinsics, spec);
    let mut world = synthetic_world();
    let cfg = ExecConfig {
        telemetry: true,
        ..cfg.clone()
    };
    let plans = [plan];
    if real {
        let out = run_threaded_with(&module, &registry, &plans, world, &cfg)
            .map_err(|e| e.to_string())?;
        Ok(ProfileOutcome {
            report: out.telemetry.expect("telemetry was enabled"),
            sim_time: None,
            metrics: out.metrics,
        })
    } else {
        let out = run_simulated_with(
            &module,
            &registry,
            &plans,
            &mut world,
            &CostModel::default(),
            &cfg,
        )
        .map_err(|e| e.to_string())?;
        Ok(ProfileOutcome {
            report: out.telemetry.expect("telemetry was enabled"),
            sim_time: Some(out.sim_time),
            metrics: out.metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_and_spec() -> (IntrinsicTable, EffectsSpec) {
        let mut t = IntrinsicTable::new();
        t.register("file_count", vec![], Type::Int, &[], &[], 10);
        t.register("fs_open", vec![Type::Int], Type::Handle, &[], &["FS"], 50);
        t.mark_fresh_handle("fs_open");
        t.register(
            "fs_read",
            vec![Type::Handle],
            Type::Int,
            &["FS"],
            &["FS"],
            120,
        );
        t.register("emit", vec![Type::Int], Type::Void, &[], &["CONSOLE"], 40);
        t.mark_per_instance("FS");
        (t, EffectsSpec::default())
    }

    #[test]
    fn synthetic_world_matches_checker_model_semantics() {
        let (t, spec) = table_and_spec();
        let reg = synthetic_registry(&t, &spec);
        let mut w = synthetic_world();
        // Size query returns the default loop bound.
        assert_eq!(reg.call("file_count", &mut w, &[]).value, Value::Int(6));
        // Fresh handles are deterministic, odd, distinct per args.
        let h1 = reg.call("fs_open", &mut w, &[Value::Int(0)]).value;
        let h2 = reg.call("fs_open", &mut w, &[Value::Int(1)]).value;
        assert_ne!(h1, h2);
        assert_eq!(h1.as_int() & 1, 1);
        // Streams count down per instance key: 3 ones then a zero.
        for _ in 0..3 {
            assert_eq!(
                reg.call("fs_read", &mut w, &[Value::Int(9)]).value,
                Value::Int(1)
            );
        }
        assert_eq!(
            reg.call("fs_read", &mut w, &[Value::Int(9)]).value,
            Value::Int(0)
        );
        assert_eq!(
            reg.call("fs_read", &mut w, &[Value::Int(7)]).value,
            Value::Int(1)
        );
        // Void intrinsics return unit-ish zero.
        assert_eq!(
            reg.call("emit", &mut w, &[Value::Int(3)]).value,
            Value::Int(0)
        );
    }

    #[test]
    fn model_knobs_come_from_the_sidecar() {
        let (t, mut spec) = table_and_spec();
        spec.model_size = Some(2);
        spec.model_stream = Some(1);
        let reg = synthetic_registry(&t, &spec);
        let mut w = synthetic_world();
        assert_eq!(reg.call("file_count", &mut w, &[]).value, Value::Int(2));
        assert_eq!(
            reg.call("fs_read", &mut w, &[Value::Int(4)]).value,
            Value::Int(1)
        );
        assert_eq!(
            reg.call("fs_read", &mut w, &[Value::Int(4)]).value,
            Value::Int(0)
        );
    }
}
