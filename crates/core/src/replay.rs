//! Failure-bundle replay and the `Compiler`-backed [`ProgramSource`].
//!
//! A `.repro.json` bundle (see `commset-interp`'s `bundle` module) carries
//! the program source and effects sidecar *inline*, so a failed supervised
//! run can be rebuilt from the bundle alone: `parse_effects` +
//! `build_table` reconstruct the intrinsic table, `synthetic_registry` /
//! `synthetic_world` reconstruct the deterministic checker-model
//! semantics, and the recorded scheme/sync/threads/backend/world-mode/
//! fault-plan knobs pin the exact failing configuration. `commsetc replay
//! <bundle>` re-executes that one attempt and reports whether the recorded
//! error reproduces.
//!
//! [`SyntheticSource`] is the same machinery pointed at the supervisor:
//! it implements [`ProgramSource`] by recompiling per ladder rung, which
//! is what `commsetc profile --recover` drives.

use crate::profile::{synthetic_registry, synthetic_world};
use crate::spec::{build_table, parse_effects, EffectsSpec};
use crate::{Compiler, Scheme, SyncMode};
use commset_interp::supervise::{CompiledProgram, ProgramDesc, ProgramSource};
use commset_interp::{
    run_sequential, run_simulated_with, run_supervised, run_threaded_with, Backend, ExecConfig,
    FailureBundle, RecoveryPolicy, SupervisedFailure, SupervisedOutcome, WorldMode,
};
use commset_runtime::{Registry, World};
use commset_sim::CostModel;

/// Parses a scheme name, case-insensitively: bundles record the
/// `Display` rendering (`DOALL`), the CLI spells it lowercase (`doall`).
///
/// # Errors
///
/// Returns a message for unknown names.
pub fn parse_scheme(name: &str) -> Result<Scheme, String> {
    match name.to_ascii_lowercase().as_str() {
        "doall" => Ok(Scheme::Doall),
        "dswp" => Ok(Scheme::Dswp),
        "ps-dswp" | "psdswp" => Ok(Scheme::PsDswp),
        _ => Err(format!("unknown scheme `{name}`")),
    }
}

/// Parses a sync-mode name, case-insensitively.
///
/// # Errors
///
/// Returns a message for unknown names.
pub fn parse_sync(name: &str) -> Result<SyncMode, String> {
    match name.to_ascii_lowercase().as_str() {
        "spin" => Ok(SyncMode::Spin),
        "mutex" => Ok(SyncMode::Mutex),
        "tm" => Ok(SyncMode::Tm),
        "lib" => Ok(SyncMode::Lib),
        _ => Err(format!("unknown sync mode `{name}`")),
    }
}

fn parse_world_mode(name: &str) -> Result<WorldMode, String> {
    match name {
        "auto" => Ok(WorldMode::Auto),
        "single-lock" => Ok(WorldMode::SingleLock),
        "sharded" => Ok(WorldMode::Sharded),
        other => Err(format!("unknown world mode `{other}`")),
    }
}

/// A [`ProgramSource`] that recompiles the program per ladder rung against
/// the synthetic deterministic world (the `commsetc profile` semantics).
pub struct SyntheticSource {
    compiler: Compiler,
    analysis: crate::Analysis,
    registry: Registry,
    scheme: Scheme,
    sync: SyncMode,
    desc: ProgramDesc,
}

impl SyntheticSource {
    /// Builds the source from inline program text and sidecar text.
    ///
    /// # Errors
    ///
    /// Returns the sidecar/type-table/front-end diagnostic as a string.
    pub fn new(
        path: &str,
        source: &str,
        effects: &str,
        scheme: Scheme,
        sync: SyncMode,
    ) -> Result<SyntheticSource, String> {
        let spec = if effects.trim().is_empty() {
            EffectsSpec::default()
        } else {
            parse_effects(effects)?
        };
        let table = build_table(source, &spec)?;
        let irrevocable: Vec<&str> = spec.irrevocable.iter().map(String::as_str).collect();
        let compiler = Compiler::new(table).with_irrevocable(&irrevocable);
        let analysis = compiler.analyze(source).map_err(|d| d.to_string())?;
        let registry = synthetic_registry(&compiler.intrinsics, &spec);
        Ok(SyntheticSource {
            compiler,
            analysis,
            registry,
            scheme,
            sync,
            desc: ProgramDesc {
                path: path.to_string(),
                source: source.to_string(),
                effects: effects.to_string(),
                scheme: scheme.to_string(),
                sync: sync.to_string(),
            },
        })
    }
}

impl ProgramSource for SyntheticSource {
    fn parallel(&self, threads: usize) -> Result<CompiledProgram, String> {
        let (module, plan) = self
            .compiler
            .compile(&self.analysis, self.scheme, threads, self.sync)
            .map_err(|d| d.to_string())?;
        Ok(CompiledProgram {
            module,
            plans: vec![plan],
        })
    }

    fn sequential(&self) -> Result<commset_ir::Module, String> {
        self.compiler
            .compile_sequential(&self.analysis)
            .map_err(|d| d.to_string())
    }

    fn fresh_world(&self) -> World {
        synthetic_world()
    }

    fn registry(&self) -> &Registry {
        &self.registry
    }

    fn describe(&self) -> ProgramDesc {
        self.desc.clone()
    }
}

/// Runs the synthetic-world profile under the supervisor.
///
/// # Errors
///
/// Returns [`SupervisedFailure`] when the whole ladder (including the
/// sequential fallback) fails; front-end diagnostics surface as strings in
/// `Err`'s `error` rendering via the supervisor's compile-error path.
pub fn run_profile_supervised(
    src: &SyntheticSource,
    real: bool,
    threads: usize,
    cfg: &ExecConfig,
    policy: &RecoveryPolicy,
) -> Result<SupervisedOutcome, Box<SupervisedFailure>> {
    let backend = if real { Backend::Threads } else { Backend::Sim };
    run_supervised(src, backend, threads, cfg, policy, None)
}

/// The outcome of replaying a failure bundle.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// True when the recorded error reproduced exactly.
    pub reproduced: bool,
    /// The error the bundle recorded.
    pub expected: String,
    /// The error the replay observed (`None`: the run succeeded).
    pub observed: Option<String>,
    /// The rung description from the bundle.
    pub rung: String,
}

/// Re-executes the single attempt a bundle captured — same program, same
/// knobs, same fault plan, fresh deterministic world — and compares the
/// outcome against the recorded error.
///
/// # Errors
///
/// Returns a message when the bundle's program no longer compiles or its
/// knob strings are unknown (a corrupt or hand-edited bundle).
pub fn replay_bundle(bundle: &FailureBundle) -> Result<ReplayOutcome, String> {
    let scheme = parse_scheme(&bundle.scheme)?;
    let sync = parse_sync(&bundle.sync)?;
    let src = SyntheticSource::new(
        &bundle.program_path,
        &bundle.source,
        &bundle.effects,
        scheme,
        sync,
    )?;
    let cfg = ExecConfig {
        fault: bundle.fault.clone(),
        watchdog: bundle.watchdog,
        world: parse_world_mode(&bundle.world_mode)?,
        queue_batch: bundle.queue_batch.max(1),
        deadline_ms: bundle.deadline_ms,
        ..ExecConfig::default()
    };
    let observed: Option<String> = match bundle.backend.as_str() {
        "sequential" => {
            let module = src.sequential()?;
            let mut world = src.fresh_world();
            run_sequential(
                &module,
                src.registry(),
                &mut world,
                &CostModel::default(),
                "main",
            )
            .err()
            .map(|e| e.to_string())
        }
        "threads" => match src.parallel(bundle.threads) {
            Err(d) => Some(format!("compile failed: {d}")),
            Ok(prog) => run_threaded_with(
                &prog.module,
                src.registry(),
                &prog.plans,
                src.fresh_world(),
                &cfg,
            )
            .err()
            .map(|e| e.to_string()),
        },
        "sim" => match src.parallel(bundle.threads) {
            Err(d) => Some(format!("compile failed: {d}")),
            Ok(prog) => {
                let mut world = src.fresh_world();
                run_simulated_with(
                    &prog.module,
                    src.registry(),
                    &prog.plans,
                    &mut world,
                    &CostModel::default(),
                    &cfg,
                )
                .err()
                .map(|e| e.to_string())
            }
        },
        other => return Err(format!("unknown bundle backend `{other}`")),
    };
    Ok(ReplayOutcome {
        reproduced: observed.as_deref() == Some(bundle.error.as_str()),
        expected: bundle.error.clone(),
        observed,
        rung: bundle.rung.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A DOALL-able program whose worker divides by zero on one iteration:
    /// a deterministic program error that every backend reproduces.
    const DIV_SRC: &str = "extern void emit(int v);\n\
        int main() {\n    int n = 8;\n    \
        for (int i = 0; i < n; i = i + 1) {\n        \
        #pragma CommSet(SELF)\n        \
        { emit(100 / (i - 3)); }\n    }\n    return 0;\n}\n";

    /// A clean annotated loop for success-path checks.
    const SUM_SRC: &str = "extern void emit(int v);\n\
        int main() {\n    int n = 8;\n    \
        for (int i = 0; i < n; i = i + 1) {\n        \
        #pragma CommSet(SELF)\n        \
        { emit(i); }\n    }\n    return 0;\n}\n";

    fn bundle_for(src: &str, backend: &str, error: &str) -> FailureBundle {
        FailureBundle {
            version: 1,
            program_path: "test.cmm".into(),
            source: src.into(),
            effects: String::new(),
            scheme: "doall".into(),
            sync: "spin".into(),
            threads: 4,
            backend: backend.into(),
            world_mode: "auto".into(),
            queue_batch: 8,
            watchdog: true,
            deadline_ms: None,
            fault: commset_runtime::FaultPlan::default(),
            error: error.into(),
            rung: format!("{backend}(4)"),
            attempt: 1,
            run_id: 0,
            history: vec![],
        }
    }

    #[test]
    fn deterministic_failure_reproduces_under_replay() {
        // Discover the exact error rendering once, then assert replay
        // reproduces it from the bundle alone.
        let probe = bundle_for(DIV_SRC, "sim", "probe");
        let out = replay_bundle(&probe).unwrap();
        let err = out.observed.expect("division by zero must fail");
        assert!(err.contains("division by zero"), "{err}");

        let bundle = bundle_for(DIV_SRC, "sim", &err);
        let out = replay_bundle(&bundle).unwrap();
        assert!(out.reproduced, "observed {:?}", out.observed);
    }

    #[test]
    fn healthy_program_does_not_reproduce_a_recorded_error() {
        let bundle = bundle_for(SUM_SRC, "sim", "some stale error");
        let out = replay_bundle(&bundle).unwrap();
        assert!(!out.reproduced);
        assert!(out.observed.is_none(), "clean run observes no error");
    }

    #[test]
    fn corrupt_knobs_are_reported_not_panicked() {
        let mut b = bundle_for(SUM_SRC, "sim", "e");
        b.scheme = "magic".into();
        assert!(replay_bundle(&b).unwrap_err().contains("unknown scheme"));
        let mut b = bundle_for(SUM_SRC, "warp", "e");
        b.backend = "warp".into();
        assert!(replay_bundle(&b).unwrap_err().contains("backend"));
    }

    #[test]
    fn supervised_profile_recovers_a_clean_program() {
        let src =
            SyntheticSource::new("t.cmm", SUM_SRC, "", Scheme::Doall, SyncMode::Spin).unwrap();
        let out = run_profile_supervised(
            &src,
            false,
            4,
            &ExecConfig {
                telemetry: true,
                ..ExecConfig::default()
            },
            &RecoveryPolicy::default(),
        )
        .unwrap();
        assert!(out.recovery.is_clean());
        assert_eq!(out.recovery.final_mode, "sim(4)");
        assert!(out.telemetry.is_some());
    }

    #[test]
    fn captured_bundle_replays_the_original_failure_deterministically() {
        // End-to-end acceptance: supervise a deterministically-failing
        // program with bundle capture on, load the `.repro.json` it
        // writes, and assert `replay_bundle` reproduces the recorded
        // failure exactly.
        let dir = std::env::temp_dir().join("commset-replay-capture-test");
        let _ = std::fs::remove_dir_all(&dir);
        let src =
            SyntheticSource::new("t.cmm", DIV_SRC, "", Scheme::Doall, SyncMode::Spin).unwrap();
        let policy = RecoveryPolicy {
            bundle_dir: Some(dir.clone()),
            ..RecoveryPolicy::default()
        };
        let fail =
            run_profile_supervised(&src, false, 4, &ExecConfig::default(), &policy).unwrap_err();
        let path = fail
            .recovery
            .bundle
            .as_ref()
            .expect("first failure must capture a bundle");
        assert!(path.ends_with(".repro.json"), "{path}");
        let bundle = FailureBundle::load(std::path::Path::new(path)).unwrap();
        assert_eq!(bundle.source, DIV_SRC);
        assert!(
            bundle.error.contains("division by zero"),
            "{}",
            bundle.error
        );
        let out = replay_bundle(&bundle).unwrap();
        assert!(
            out.reproduced,
            "expected {:?}, observed {:?}",
            out.expected, out.observed
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn supervised_profile_falls_through_to_sequential_on_program_error() {
        // Division by zero is deterministic: every parallel rung fails,
        // the sequential fallback fails identically, and the supervisor
        // reports a terminal failure whose error is the true program
        // error.
        let src =
            SyntheticSource::new("t.cmm", DIV_SRC, "", Scheme::Doall, SyncMode::Spin).unwrap();
        let fail = run_profile_supervised(
            &src,
            false,
            4,
            &ExecConfig::default(),
            &RecoveryPolicy::default(),
        )
        .unwrap_err();
        assert!(
            fail.error.to_string().contains("division by zero"),
            "{}",
            fail.error
        );
        assert_eq!(
            fail.recovery.rungs.last().map(String::as_str),
            Some("sequential")
        );
        assert_eq!(fail.recovery.final_mode, "exhausted");
        // Deterministic errors skip same-rung retries.
        assert_eq!(fail.recovery.retries, 0);
    }
}
