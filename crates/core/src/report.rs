//! The `commsetc report` loader: turn a saved JSONL event journal back
//! into a [`MetricsRegistry`] and a causal run summary.
//!
//! A metrics-enabled run ends with a `kind="metrics"` journal event whose
//! `metrics` field embeds the merged registry JSON (escaped, as a string
//! field — see `commset-telemetry`'s journal docs). This module parses
//! the JSONL line-by-line with the same dependency-free [`Json`] reader
//! the failure bundles use, re-parses that embedded payload, and rebuilds
//! the registry through its public mutators — so `commsetc report
//! --journal run.jsonl` renders the identical hotspot tables a live run
//! would have printed.

use commset_interp::bundle::Json;
use commset_runtime::Hist64;
use commset_telemetry::MetricsRegistry;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What a saved journal says about its run: the causal summary plus the
/// rebuilt metrics registry (absent when the run had metrics off).
#[derive(Debug, Clone)]
pub struct JournalReport {
    /// The 16-hex-digit causal run id stamped on every event.
    pub run_id: String,
    /// Total journal events.
    pub events: usize,
    /// Event count per kind, e.g. `worker_done -> 8`.
    pub kinds: BTreeMap<String, usize>,
    /// Highest supervisor attempt ordinal seen (0 when unsupervised).
    pub attempts: u64,
    /// The `final_mode` field of the `run_end` event, when present.
    pub final_mode: Option<String>,
    /// Bundle paths from `bundle_captured` events, in capture order.
    pub bundles: Vec<String>,
    /// The rebuilt metrics registry from the terminal `metrics` event.
    pub metrics: Option<MetricsRegistry>,
}

/// Rebuilds a [`MetricsRegistry`] from its [`MetricsRegistry::to_json`]
/// encoding.
///
/// # Errors
///
/// Returns a description of the first malformed section. Unknown keys are
/// ignored so newer journals load under older readers.
pub fn registry_from_json(v: &Json) -> Result<MetricsRegistry, String> {
    fn fold(v: &Json, section: &str, mut f: impl FnMut(&str, u64)) -> Result<(), String> {
        match v.get(section) {
            None => Ok(()),
            Some(Json::Obj(pairs)) => {
                for (k, val) in pairs {
                    let n = val
                        .as_u64()
                        .ok_or_else(|| format!("{section}.{k}: not a u64"))?;
                    f(k, n);
                }
                Ok(())
            }
            Some(_) => Err(format!("{section}: not an object")),
        }
    }
    let mut reg = MetricsRegistry::new();
    fold(v, "counters", |k, n| reg.inc(k, n))?;
    fold(v, "opcodes", |k, n| reg.record_opcode(k, n))?;
    fold(v, "blocks", |k, n| reg.record_block(k, n))?;
    match v.get("hists") {
        None => {}
        Some(Json::Obj(pairs)) => {
            for (k, hv) in pairs {
                let count = hv
                    .get("count")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("hists.{k}: missing count"))?;
                let sum = hv.get("sum").and_then(Json::as_u64).unwrap_or(0);
                let max = hv.get("max").and_then(Json::as_u64).unwrap_or(0);
                let buckets: Vec<u64> = hv
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("hists.{k}: missing buckets"))?
                    .iter()
                    .map(|b| b.as_u64().ok_or_else(|| format!("hists.{k}: bad bucket")))
                    .collect::<Result<_, _>>()?;
                reg.merge_hist(k, &Hist64::from_parts(&buckets, count, sum, max));
            }
        }
        Some(_) => return Err("hists: not an object".to_string()),
    }
    Ok(reg)
}

/// Parses a saved JSONL journal into a [`JournalReport`].
///
/// Each non-empty line must be one JSON object; the terminal
/// `kind="metrics"` event (the last one, if several) supplies the
/// registry.
///
/// # Errors
///
/// Returns a line-numbered diagnostic for unparsable lines or a
/// malformed embedded metrics payload.
pub fn parse_journal(text: &str) -> Result<JournalReport, String> {
    let mut report = JournalReport {
        run_id: String::new(),
        events: 0,
        kinds: BTreeMap::new(),
        attempts: 0,
        final_mode: None,
        bundles: Vec::new(),
        metrics: None,
    };
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ev = Json::parse(line).map_err(|e| format!("journal line {}: {e}", lineno + 1))?;
        report.events += 1;
        if let Some(run) = ev.get("run").and_then(Json::as_str) {
            if report.run_id.is_empty() {
                report.run_id = run.to_string();
            }
        }
        let kind = ev
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("journal line {}: missing kind", lineno + 1))?
            .to_string();
        if let Some(a) = ev.get("attempt").and_then(Json::as_u64) {
            report.attempts = report.attempts.max(a);
        }
        let fields = ev.get("fields");
        match kind.as_str() {
            "run_end" => {
                report.final_mode = fields
                    .and_then(|f| f.get("final_mode"))
                    .and_then(Json::as_str)
                    .map(str::to_string);
            }
            "bundle_captured" => {
                if let Some(p) = fields.and_then(|f| f.get("path")).and_then(Json::as_str) {
                    report.bundles.push(p.to_string());
                }
            }
            "metrics" => {
                let payload = fields
                    .and_then(|f| f.get("metrics"))
                    .and_then(Json::as_str)
                    .ok_or_else(|| {
                        format!("journal line {}: metrics event without payload", lineno + 1)
                    })?;
                let parsed = Json::parse(payload)
                    .map_err(|e| format!("journal line {}: embedded metrics: {e}", lineno + 1))?;
                report.metrics = Some(registry_from_json(&parsed)?);
            }
            _ => {}
        }
        *report.kinds.entry(kind).or_insert(0) += 1;
    }
    if report.events == 0 {
        return Err("journal is empty".to_string());
    }
    Ok(report)
}

impl JournalReport {
    /// Renders the causal run summary followed by the hotspot tables
    /// (`top` rows per table), matching the live `commsetc report`
    /// layout.
    pub fn render_text(&self, top: usize) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "run:      {}", self.run_id);
        let _ = writeln!(s, "events:   {}", self.events);
        let kinds: Vec<String> = self.kinds.iter().map(|(k, n)| format!("{k}={n}")).collect();
        let _ = writeln!(s, "kinds:    {}", kinds.join(" "));
        if self.attempts > 0 {
            let _ = writeln!(s, "attempts: {}", self.attempts);
        }
        if let Some(m) = &self.final_mode {
            let _ = writeln!(s, "final:    {m}");
        }
        for b in &self.bundles {
            let _ = writeln!(s, "bundle:   {b}");
        }
        match &self.metrics {
            Some(reg) => s.push_str(&reg.render_text(top)),
            None => s.push_str("metrics:\n  (journal has no metrics event)\n"),
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commset_telemetry::{Journal, JournalEvent};

    fn sample_registry() -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.inc("delta.applies", 7);
        m.inc("shard.fast_acquires", 3);
        m.observe("lock_wait.FS", 12);
        m.observe("lock_wait.FS", 900);
        m.observe("queue_occupancy.0", 2);
        m.record_opcode("Bin", 41);
        m.record_block("main:bb1", 420);
        m
    }

    #[test]
    fn registry_round_trips_through_journal_jsonl() {
        let reg = sample_registry();
        let j = Journal::new(0x00c0_ffee);
        j.record(JournalEvent::new("run_start", 0).field("backend", "sim"));
        j.record(
            JournalEvent {
                section: Some(0),
                worker: Some(2),
                ..JournalEvent::new("worker_done", 10)
            }
            .field("ok", "true"),
        );
        j.record_metrics(99, &reg);
        let report = parse_journal(&j.to_jsonl()).unwrap();
        assert_eq!(report.run_id, "0000000000c0ffee");
        assert_eq!(report.events, 3);
        assert_eq!(report.kinds["worker_done"], 1);
        let loaded = report.metrics.expect("metrics event parsed");
        // Counters, opcodes and blocks round-trip exactly; histograms
        // round-trip bucket-exactly (count/sum/max preserved verbatim).
        assert_eq!(loaded, reg);
    }

    #[test]
    fn journal_without_metrics_reports_none() {
        let j = Journal::new(5);
        j.record(JournalEvent::new("run_start", 0));
        let report = parse_journal(&j.to_jsonl()).unwrap();
        assert!(report.metrics.is_none());
        assert!(report.render_text(5).contains("no metrics event"));
    }

    #[test]
    fn malformed_lines_are_line_numbered_errors() {
        let err = parse_journal("{\"run\":\"x\",\"kind\":\"a\"}\nnot json\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(parse_journal("").unwrap_err().contains("empty"));
        let err = parse_journal("{\"run\":\"x\"}\n").unwrap_err();
        assert!(err.contains("missing kind"), "{err}");
    }

    #[test]
    fn summary_tracks_attempts_bundles_and_final_mode() {
        let j = Journal::new(1);
        j.record(JournalEvent::new("run_start", 0));
        j.record(JournalEvent {
            attempt: Some(1),
            ..JournalEvent::new("attempt_start", 1)
        });
        j.record(
            JournalEvent {
                attempt: Some(2),
                ..JournalEvent::new("bundle_captured", 5)
            }
            .field("path", "target/repro/b.repro.json"),
        );
        j.record(JournalEvent::new("run_end", 9).field("final_mode", "threads(sharded, 8)"));
        let report = parse_journal(&j.to_jsonl()).unwrap();
        assert_eq!(report.attempts, 2);
        assert_eq!(report.final_mode.as_deref(), Some("threads(sharded, 8)"));
        assert_eq!(report.bundles, vec!["target/repro/b.repro.json"]);
        let text = report.render_text(3);
        assert!(text.contains("attempts: 2"));
        assert!(text.contains("final:    threads(sharded, 8)"));
    }
}
