//! Effects sidecars: describing extern intrinsics in plain text.
//!
//! The [`Compiler`](crate::Compiler) needs an
//! [`IntrinsicTable`] giving each extern's effect channels and cost.
//! Embedders usually build one programmatically; standalone tools (the
//! `commsetc` CLI) and quick experiments can instead pair a `.cmm` source
//! with a sidecar text file, one line per extern:
//!
//! ```text
//! # name  [reads=A,B]  [writes=C,D]  [cost=N]  [fresh]
//! fs_open    writes=FS cost=50 fresh
//! fs_read    reads=FS writes=FS cost=120
//! md5_chunk  cost=700
//! irrevocable FS,CONSOLE
//! per_instance FS
//! ```
//!
//! * `reads=`/`writes=` — effect channels (comma-separated);
//! * `cost=` — the intrinsic's base simulated cost (default 100);
//! * `fresh` — a handle-returning allocator: each call yields a distinct
//!   instance (enables the per-instance dependence refinement);
//! * `irrevocable CHANS` — channels whose effects cannot be rolled back;
//!   members touching them reject the TM sync mode;
//! * `per_instance CHANS` — channels partitioned by handle argument;
//! * `commutative CHANS` — channels whose write history is a *multiset*
//!   (order-free) under the program's output contract; the dynamic
//!   checker (`commsetc check`) compares them order-insensitively;
//! * `model size=N stream=N` — the checker's abstract-world knobs: the
//!   value of size queries (loop bound) and the per-instance stream
//!   length;
//! * `relaxed [window=N]` — opt this fixture into relaxed-visibility
//!   checking: the checker additionally explores store-buffered (`sb[w]:`)
//!   schedule variants where commutative-channel writes stay invisible to
//!   other workers for up to `window` scheduling ticks (default 4).
//!   Ordered channels are never buffered;
//! * `merge CHAN add|max|set-union|custom(fn)` — declares the channel a
//!   *delta channel*: runtimes may privatize its updates into per-worker
//!   buffers coalesced at the section barrier by the named operator, and
//!   the checker models writes to it as privatized (invisible to sibling
//!   workers until the barrier) on every parallel schedule. `custom(fn)`
//!   names an `int fn(int a, int b)` defined in the program; `commsetc
//!   check` rejects the declaration with a structured diagnostic when the
//!   function fails the merge-operator laws (commutativity, associativity,
//!   identity 0) on sampled inputs.
//!
//! Externs absent from the sidecar default to pure compute with cost 100.
//! Parameter and return *types* always come from the source's `extern`
//! declarations, never from the sidecar.

use commset_ir::IntrinsicTable;
use commset_lang::ast::Item;
use std::collections::HashMap;

/// A parsed effects sidecar: per-extern effect rows plus the global
/// `irrevocable` and `per_instance` directives.
#[derive(Debug, Default, Clone)]
pub struct EffectsSpec {
    /// Effect rows keyed by extern name.
    pub rows: HashMap<String, EffectRow>,
    /// Channels whose effects cannot be rolled back.
    pub irrevocable: Vec<String>,
    /// Channels partitioned per handle instance.
    pub per_instance: Vec<String>,
    /// Channels compared as multisets by the dynamic checker.
    pub commutative: Vec<String>,
    /// Delta channels: `(channel, operator)` rows from `merge` directives.
    /// Operators are `add`, `max`, `set-union`, or `custom(fn)`.
    pub merges: Vec<(String, String)>,
    /// Checker model: value returned by size queries (loop bound).
    pub model_size: Option<i64>,
    /// Checker model: per-instance stream length.
    pub model_stream: Option<i64>,
    /// Opt into relaxed-visibility (store-buffered) schedule families.
    pub relaxed: bool,
    /// Largest store-buffer flush window, in scheduling ticks.
    pub relaxed_window: Option<usize>,
}

impl EffectsSpec {
    /// The checker configuration this sidecar describes: commutative
    /// channels and model knobs are installed into the
    /// [`ModelConfig`](commset_checker::ModelConfig), and the `relaxed`
    /// directive turns on the store-buffered schedule families. Shared by
    /// the `commsetc check` CLI path and the corpus replay harness so the
    /// two can never drift.
    pub fn checker_config(&self) -> commset_checker::CheckConfig {
        let mut cfg = commset_checker::CheckConfig::with_commutative(
            self.commutative.iter().map(String::as_str),
        );
        for (chan, _op) in &self.merges {
            // A merge row makes the channel commutative *and* privatized:
            // worker writes park in per-worker deltas on every schedule and
            // surface only at the section barrier.
            cfg.model.commutative.insert(chan.clone());
            cfg.model.delta.insert(chan.clone());
        }
        if let Some(n) = self.model_size {
            cfg.model.size = n;
        }
        if let Some(n) = self.model_stream {
            cfg.model.stream_len = n;
        }
        cfg.relaxed = self.relaxed;
        if let Some(w) = self.relaxed_window {
            cfg.max_window = w;
        }
        cfg
    }
}

/// One extern's effects.
#[derive(Debug, Clone)]
pub struct EffectRow {
    /// Channels read.
    pub reads: Vec<String>,
    /// Channels written.
    pub writes: Vec<String>,
    /// Base simulated cost.
    pub cost: u64,
    /// True for handle-returning allocators.
    pub fresh: bool,
}

impl Default for EffectRow {
    fn default() -> Self {
        EffectRow {
            reads: Vec::new(),
            writes: Vec::new(),
            cost: 100,
            fresh: false,
        }
    }
}

/// Parses a sidecar file's text.
///
/// `#` starts a comment; blank lines are skipped.
///
/// # Errors
///
/// Returns a `line N: ...` message for malformed attributes.
pub fn parse_effects(text: &str) -> Result<EffectsSpec, String> {
    let mut spec = EffectsSpec::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let head = parts.next().expect("non-empty line has a token");
        let list = |v: &str| -> Vec<String> {
            v.split(',')
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect()
        };
        if head == "irrevocable" {
            let chans = parts.next().ok_or_else(|| {
                format!("line {}: `irrevocable` needs a channel list", lineno + 1)
            })?;
            spec.irrevocable.extend(list(chans));
            continue;
        }
        if head == "per_instance" {
            let chans = parts.next().ok_or_else(|| {
                format!("line {}: `per_instance` needs a channel list", lineno + 1)
            })?;
            spec.per_instance.extend(list(chans));
            continue;
        }
        if head == "commutative" {
            let chans = parts.next().ok_or_else(|| {
                format!("line {}: `commutative` needs a channel list", lineno + 1)
            })?;
            spec.commutative.extend(list(chans));
            continue;
        }
        if head == "merge" {
            let chan = parts
                .next()
                .ok_or_else(|| format!("line {}: `merge` needs a channel", lineno + 1))?;
            let op = parts
                .next()
                .ok_or_else(|| format!("line {}: `merge` needs an operator", lineno + 1))?;
            let known = matches!(op, "add" | "max" | "set-union")
                || (op.starts_with("custom(") && op.ends_with(')') && op.len() > 8);
            if !known {
                return Err(format!(
                    "line {}: unknown merge operator `{op}` (expected add, max, \
                     set-union, or custom(fn))",
                    lineno + 1
                ));
            }
            if let Some(extra) = parts.next() {
                return Err(format!(
                    "line {}: unexpected token `{extra}` after merge operator",
                    lineno + 1
                ));
            }
            if spec.merges.iter().any(|(c, _)| c == chan) {
                return Err(format!(
                    "line {}: duplicate merge declaration for channel `{chan}`",
                    lineno + 1
                ));
            }
            spec.merges.push((chan.to_string(), op.to_string()));
            continue;
        }
        if head == "relaxed" {
            spec.relaxed = true;
            for tok in parts {
                if let Some(v) = tok.strip_prefix("window=") {
                    let w: usize = v
                        .parse()
                        .map_err(|_| format!("line {}: bad window `{v}`", lineno + 1))?;
                    if w == 0 {
                        return Err(format!("line {}: window must be >= 1", lineno + 1));
                    }
                    spec.relaxed_window = Some(w);
                } else {
                    return Err(format!(
                        "line {}: unknown relaxed attribute `{tok}`",
                        lineno + 1
                    ));
                }
            }
            continue;
        }
        if head == "model" {
            for tok in parts {
                let parse = |v: &str| -> Result<i64, String> {
                    v.parse()
                        .map_err(|_| format!("line {}: bad model value `{v}`", lineno + 1))
                };
                if let Some(v) = tok.strip_prefix("size=") {
                    spec.model_size = Some(parse(v)?);
                } else if let Some(v) = tok.strip_prefix("stream=") {
                    spec.model_stream = Some(parse(v)?);
                } else {
                    return Err(format!(
                        "line {}: unknown model attribute `{tok}`",
                        lineno + 1
                    ));
                }
            }
            continue;
        }
        let mut row = EffectRow::default();
        for tok in parts {
            if let Some(v) = tok.strip_prefix("reads=") {
                row.reads = list(v);
            } else if let Some(v) = tok.strip_prefix("writes=") {
                row.writes = list(v);
            } else if let Some(v) = tok.strip_prefix("cost=") {
                row.cost = v
                    .parse()
                    .map_err(|_| format!("line {}: bad cost `{v}`", lineno + 1))?;
            } else if tok == "fresh" {
                row.fresh = true;
            } else {
                return Err(format!("line {}: unknown attribute `{tok}`", lineno + 1));
            }
        }
        spec.rows.insert(head.to_string(), row);
    }
    Ok(spec)
}

/// Builds an intrinsic table for `source`: parameter/return types from its
/// `extern` declarations, effects from `spec`.
///
/// # Errors
///
/// Propagates front-end diagnostics (as rendered strings) when `source`
/// does not parse or check.
pub fn build_table(source: &str, spec: &EffectsSpec) -> Result<IntrinsicTable, String> {
    // A parse/sema pass just to enumerate externs; Compiler::analyze
    // re-runs the front end with the finished table.
    let unit = commset_lang::compile_unit(source).map_err(|d| d.to_string())?;
    let mut table = IntrinsicTable::new();
    for item in &unit.program.items {
        let Item::Extern(e) = item else { continue };
        let row = spec.rows.get(&e.name).cloned().unwrap_or_default();
        let reads: Vec<&str> = row.reads.iter().map(String::as_str).collect();
        let writes: Vec<&str> = row.writes.iter().map(String::as_str).collect();
        table.register(
            &e.name,
            e.params.iter().map(|p| p.ty).collect(),
            e.ret,
            &reads,
            &writes,
            row.cost,
        );
        if row.fresh {
            table.mark_fresh_handle(&e.name);
        }
    }
    for chan in &spec.per_instance {
        table.mark_per_instance(chan);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effects_sidecar_parses() {
        let spec = parse_effects(
            "# comment\n\
             fs_open writes=FS cost=60 fresh\n\
             fs_read reads=FS writes=FS cost=140\n\
             pure_fn cost=700\n\
             bare_fn\n\
             irrevocable FS,CONSOLE\n\
             per_instance FS # trailing comment\n",
        )
        .unwrap();
        let open = &spec.rows["fs_open"];
        assert_eq!(open.writes, ["FS"]);
        assert!(open.reads.is_empty());
        assert_eq!(open.cost, 60);
        assert!(open.fresh);
        let read = &spec.rows["fs_read"];
        assert_eq!(read.reads, ["FS"]);
        assert!(!read.fresh);
        assert_eq!(spec.rows["pure_fn"].cost, 700);
        assert_eq!(spec.rows["bare_fn"].cost, 100, "defaults apply");
        assert_eq!(spec.irrevocable, ["FS", "CONSOLE"]);
        assert_eq!(spec.per_instance, ["FS"]);
    }

    #[test]
    fn effects_sidecar_rejects_junk() {
        assert!(parse_effects("f cost=abc").is_err());
        assert!(parse_effects("f sideways=FS").is_err());
        assert!(parse_effects("irrevocable").is_err());
        assert!(parse_effects("commutative").is_err());
        assert!(parse_effects("model size=big").is_err());
        assert!(parse_effects("model speed=9").is_err());
    }

    #[test]
    fn checker_directives_parse() {
        let spec = parse_effects(
            "sink writes=OUT cost=10\n\
             commutative OUT,ACC\n\
             model size=6 stream=1\n",
        )
        .unwrap();
        assert_eq!(spec.commutative, ["OUT", "ACC"]);
        assert_eq!(spec.model_size, Some(6));
        assert_eq!(spec.model_stream, Some(1));
        assert!(!spec.relaxed);
    }

    #[test]
    fn merge_directive_parses_and_configures_the_checker() {
        let spec = parse_effects(
            "bump writes=ACC cost=10\n\
             commutative ACC\n\
             merge ACC add\n\
             merge HIST max\n\
             merge TIDS set-union\n\
             merge CURSOR custom(merge_cursor)\n",
        )
        .unwrap();
        assert_eq!(
            spec.merges,
            [
                ("ACC".to_string(), "add".to_string()),
                ("HIST".to_string(), "max".to_string()),
                ("TIDS".to_string(), "set-union".to_string()),
                ("CURSOR".to_string(), "custom(merge_cursor)".to_string()),
            ]
        );
        let cfg = spec.checker_config();
        for chan in ["ACC", "HIST", "TIDS", "CURSOR"] {
            assert!(cfg.model.commutative.contains(chan), "{chan} commutative");
            assert!(cfg.model.delta.contains(chan), "{chan} privatized");
        }
        // Channels without a merge row stay out of the delta set.
        let plain = parse_effects("commutative OUT\n").unwrap().checker_config();
        assert!(plain.model.commutative.contains("OUT"));
        assert!(plain.model.delta.is_empty());
    }

    #[test]
    fn merge_directive_rejects_junk() {
        assert!(parse_effects("merge").is_err());
        assert!(parse_effects("merge ACC").is_err());
        assert!(parse_effects("merge ACC min").is_err());
        assert!(parse_effects("merge ACC custom()").is_err());
        assert!(parse_effects("merge ACC custom(f").is_err());
        assert!(parse_effects("merge ACC add extra").is_err());
        let dup = parse_effects("merge ACC add\nmerge ACC max\n");
        assert!(dup.unwrap_err().contains("duplicate merge declaration"));
    }

    #[test]
    fn relaxed_directive_parses_and_configures_the_checker() {
        let spec = parse_effects(
            "sink writes=OUT cost=10\n\
             commutative OUT\n\
             model size=4\n\
             relaxed window=2\n",
        )
        .unwrap();
        assert!(spec.relaxed);
        assert_eq!(spec.relaxed_window, Some(2));
        let cfg = spec.checker_config();
        assert!(cfg.relaxed);
        assert_eq!(cfg.max_window, 2);
        assert_eq!(cfg.model.size, 4);
        assert!(cfg.model.commutative.contains("OUT"));

        let bare = parse_effects("relaxed\n").unwrap();
        assert!(bare.relaxed);
        assert_eq!(bare.relaxed_window, None);
        // Default window comes from CheckConfig.
        assert_eq!(bare.checker_config().max_window, 4);

        assert!(parse_effects("relaxed window=0").is_err());
        assert!(parse_effects("relaxed window=abc").is_err());
        assert!(parse_effects("relaxed speed=9").is_err());
    }

    #[test]
    fn table_built_from_externs_and_sidecar() {
        let spec = parse_effects("emit writes=OUT cost=25\n").unwrap();
        let table = build_table(
            "extern void emit(int v);\n\
             extern int pure(int x);\n\
             int main() { return 0; }",
            &spec,
        )
        .unwrap();
        let (_, e) = table.lookup("emit").expect("registered");
        assert_eq!(e.base_cost, 25);
        assert_eq!(e.writes.len(), 1);
        let (_, p) = table.lookup("pure").expect("registered with defaults");
        assert_eq!(p.base_cost, 100);
        assert!(p.writes.is_empty() && p.reads.is_empty());
    }

    #[test]
    fn fresh_and_per_instance_marks_apply() {
        let spec = parse_effects("alloc writes=HEAP cost=40 fresh\nper_instance HEAP\n").unwrap();
        let table = build_table(
            "extern handle alloc(int n);\nint main() { return 0; }",
            &spec,
        )
        .unwrap();
        assert!(table.is_fresh_handle("alloc"));
        assert!(table.is_per_instance_name("HEAP"));
    }

    #[test]
    fn bad_source_is_reported() {
        let spec = EffectsSpec::default();
        assert!(build_table("int main( {", &spec).is_err());
    }
}
