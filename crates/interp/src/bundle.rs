//! Replayable failure bundles.
//!
//! When a supervised run fails (see [`crate::supervise`]), the supervisor
//! captures everything needed to re-execute the failing attempt
//! deterministically into a self-contained `.repro.json` file: the program
//! source and effects sidecar *inline* (so the bundle survives the
//! original files moving), the schedule knobs (scheme, sync mode, thread
//! count, backend, world mode), the full [`FaultPlan`], the deadline, and
//! the failure itself (error rendering, ladder rung, attempt ordinal,
//! per-attempt error history). `commsetc replay <bundle>` re-runs the
//! attempt and reports whether the recorded failure reproduces.
//!
//! The workspace is intentionally dependency-free, so this module carries
//! its own small JSON reader ([`Json`]) alongside the hand-written writer
//! (shared escaping via `commset-telemetry`'s `json` helpers). Numbers are
//! kept as raw text until a typed accessor is called, so 64-bit seeds
//! round-trip without f64 precision loss.

use commset_runtime::{FaultPlan, SlowWorker, WorkerStall};
use commset_telemetry::json::escape;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text (lossless for u64/i64).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `text` as a single JSON value (trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a byte-offset diagnostic for malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let raw = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad utf8 in number")?;
            // Validate now so accessors can't be surprised later.
            raw.parse::<f64>()
                .map_err(|_| format!("bad number `{raw}` at byte {start}"))?;
            Ok(Json::Num(raw.to_string()))
        }
        Some(c) => Err(format!("unexpected byte `{}` at {pos}", *c as char)),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences intact).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "bad utf8 in string")?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Everything needed to re-execute one failed attempt deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureBundle {
    /// Bundle format version (currently 1).
    pub version: u32,
    /// Path of the original program (informational; `source` is inline).
    pub program_path: String,
    /// The Cmm program text.
    pub source: String,
    /// The effects sidecar text (may be empty).
    pub effects: String,
    /// Parallelization scheme name (`doall`, `dswp`, `ps-dswp`).
    pub scheme: String,
    /// Sync mode name (`lib`, `spin`, `mutex`, `tm`).
    pub sync: String,
    /// Worker thread count of the failing rung.
    pub threads: usize,
    /// Executor backend of the failing attempt (`threads` or `sim`).
    pub backend: String,
    /// World mode of the failing attempt (`auto`, `single-lock`,
    /// `sharded`, `deltas`).
    pub world_mode: String,
    /// DSWP queue batch size in effect.
    pub queue_batch: usize,
    /// Whether the watchdog ran.
    pub watchdog: bool,
    /// The deadline in effect, if any.
    pub deadline_ms: Option<u64>,
    /// The full fault-injection plan.
    pub fault: FaultPlan,
    /// The failure's error rendering.
    pub error: String,
    /// Description of the ladder rung that failed.
    pub rung: String,
    /// 1-based attempt ordinal at which this failure occurred.
    pub attempt: u32,
    /// Schedule excerpt: per-attempt error history up to the capture.
    pub history: Vec<String>,
    /// Causal run id linking this bundle to the event journal of the run
    /// that captured it (`0` when no journal was active).
    pub run_id: u64,
}

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

impl FailureBundle {
    /// Serializes the bundle as pretty-stable JSON.
    pub fn to_json(&self) -> String {
        let f = &self.fault;
        let stall = match f.stall {
            Some(WorkerStall { tid, every, cost }) => format!(
                "{{\"tid\":{},\"every\":{},\"cost\":{}}}",
                match tid {
                    Some(t) => t.to_string(),
                    None => "null".to_string(),
                },
                every,
                cost
            ),
            None => "null".to_string(),
        };
        let slow = match f.slow {
            Some(SlowWorker { tid, cost }) => {
                format!("{{\"tid\":{tid},\"cost\":{cost}}}")
            }
            None => "null".to_string(),
        };
        let clamp = match f.queue_capacity_clamp {
            Some(c) => c.to_string(),
            None => "null".to_string(),
        };
        let history: Vec<String> = self
            .history
            .iter()
            .map(|h| format!("\"{}\"", escape(h)))
            .collect();
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"version\": {},", self.version);
        let _ = writeln!(
            out,
            "  \"program_path\": \"{}\",",
            escape(&self.program_path)
        );
        let _ = writeln!(out, "  \"source\": \"{}\",", escape(&self.source));
        let _ = writeln!(out, "  \"effects\": \"{}\",", escape(&self.effects));
        let _ = writeln!(out, "  \"scheme\": \"{}\",", escape(&self.scheme));
        let _ = writeln!(out, "  \"sync\": \"{}\",", escape(&self.sync));
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"backend\": \"{}\",", escape(&self.backend));
        let _ = writeln!(out, "  \"world_mode\": \"{}\",", escape(&self.world_mode));
        let _ = writeln!(out, "  \"queue_batch\": {},", self.queue_batch);
        let _ = writeln!(out, "  \"watchdog\": {},", self.watchdog);
        let _ = writeln!(out, "  \"deadline_ms\": {},", opt_u64(self.deadline_ms));
        let _ = writeln!(
            out,
            "  \"fault\": {{\"seed\":{},\"stm_abort_every\":{},\"lock_delay_every\":{},\
             \"lock_delay_cost\":{},\"stall\":{},\"queue_capacity_clamp\":{},\
             \"shard_hold_every\":{},\"shard_hold_cost\":{},\"queue_stall_every\":{},\
             \"queue_stall_cost\":{},\"shard_poison_nth\":{},\"delta_poison_nth\":{},\
             \"slow\":{}}},",
            f.seed,
            f.stm_abort_every,
            f.lock_delay_every,
            f.lock_delay_cost,
            stall,
            clamp,
            f.shard_hold_every,
            f.shard_hold_cost,
            f.queue_stall_every,
            f.queue_stall_cost,
            f.shard_poison_nth,
            f.delta_poison_nth,
            slow
        );
        let _ = writeln!(out, "  \"error\": \"{}\",", escape(&self.error));
        let _ = writeln!(out, "  \"rung\": \"{}\",", escape(&self.rung));
        let _ = writeln!(out, "  \"attempt\": {},", self.attempt);
        let _ = writeln!(out, "  \"run_id\": {},", self.run_id);
        let _ = writeln!(out, "  \"history\": [{}]", history.join(","));
        out.push('}');
        out
    }

    /// Parses a bundle from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed or missing field.
    pub fn from_json(text: &str) -> Result<FailureBundle, String> {
        let v = Json::parse(text)?;
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("bundle missing string field `{k}`"))
        };
        let u64_field = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("bundle missing numeric field `{k}`"))
        };
        let version = u64_field("version")? as u32;
        if version != 1 {
            return Err(format!("unsupported bundle version {version}"));
        }
        let fj = v
            .get("fault")
            .ok_or_else(|| "bundle missing `fault` object".to_string())?;
        let fault_u64 = |k: &str| -> Result<u64, String> {
            fj.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("fault plan missing field `{k}`"))
        };
        let stall = match fj.get("stall") {
            None | Some(Json::Null) => None,
            Some(s) => Some(WorkerStall {
                tid: s.get("tid").and_then(Json::as_i64),
                every: s
                    .get("every")
                    .and_then(Json::as_u64)
                    .ok_or("stall missing `every`")?,
                cost: s
                    .get("cost")
                    .and_then(Json::as_u64)
                    .ok_or("stall missing `cost`")?,
            }),
        };
        let slow = match fj.get("slow") {
            None | Some(Json::Null) => None,
            Some(s) => Some(SlowWorker {
                tid: s
                    .get("tid")
                    .and_then(Json::as_i64)
                    .ok_or("slow missing `tid`")?,
                cost: s
                    .get("cost")
                    .and_then(Json::as_u64)
                    .ok_or("slow missing `cost`")?,
            }),
        };
        let fault = FaultPlan {
            seed: fault_u64("seed")?,
            stm_abort_every: fault_u64("stm_abort_every")?,
            lock_delay_every: fault_u64("lock_delay_every")?,
            lock_delay_cost: fault_u64("lock_delay_cost")?,
            stall,
            queue_capacity_clamp: fj
                .get("queue_capacity_clamp")
                .and_then(Json::as_u64)
                .map(|c| c as usize),
            shard_hold_every: fault_u64("shard_hold_every")?,
            shard_hold_cost: fault_u64("shard_hold_cost")?,
            queue_stall_every: fault_u64("queue_stall_every").unwrap_or(0),
            queue_stall_cost: fault_u64("queue_stall_cost").unwrap_or(0),
            shard_poison_nth: fault_u64("shard_poison_nth").unwrap_or(0),
            // Older bundles predate delta privatization: default 0.
            delta_poison_nth: fault_u64("delta_poison_nth").unwrap_or(0),
            slow,
        };
        let history = v
            .get("history")
            .and_then(Json::as_arr)
            .map(|items| {
                items
                    .iter()
                    .filter_map(|i| i.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        Ok(FailureBundle {
            version,
            program_path: str_field("program_path")?,
            source: str_field("source")?,
            effects: str_field("effects")?,
            scheme: str_field("scheme")?,
            sync: str_field("sync")?,
            threads: u64_field("threads")? as usize,
            backend: str_field("backend")?,
            world_mode: str_field("world_mode")?,
            queue_batch: u64_field("queue_batch")? as usize,
            watchdog: v
                .get("watchdog")
                .and_then(Json::as_bool)
                .ok_or("bundle missing `watchdog`")?,
            deadline_ms: v.get("deadline_ms").and_then(Json::as_u64),
            fault,
            error: str_field("error")?,
            rung: str_field("rung")?,
            attempt: u64_field("attempt")? as u32,
            history,
            // Older bundles predate the event journal: default 0.
            run_id: v.get("run_id").and_then(Json::as_u64).unwrap_or(0),
        })
    }

    /// Reads and parses a bundle file.
    ///
    /// # Errors
    ///
    /// Returns a message for I/O failures or malformed content.
    pub fn load(path: &Path) -> Result<FailureBundle, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read bundle `{}`: {e}", path.display()))?;
        FailureBundle::from_json(&text)
            .map_err(|e| format!("corrupt bundle `{}`: {e}", path.display()))
    }

    /// Writes the bundle into `dir` (created if missing) under a
    /// content-hashed deterministic name, returning the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let json = self.to_json();
        // FNV-1a over the content: stable names, no clock dependence.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in json.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let path = dir.join(format!("repro-{h:016x}.repro.json"));
        std::fs::write(&path, json)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FailureBundle {
        FailureBundle {
            version: 1,
            program_path: "progs/reduce.cmm".into(),
            source: "int main() {\n  return 0;\n}".into(),
            effects: "emit writes=OUT cost=25\n".into(),
            scheme: "doall".into(),
            sync: "spin".into(),
            threads: 8,
            backend: "threads".into(),
            world_mode: "sharded".into(),
            queue_batch: 8,
            watchdog: true,
            deadline_ms: Some(40),
            fault: FaultPlan {
                seed: u64::MAX - 3,
                shard_poison_nth: 2,
                slow: Some(SlowWorker { tid: 3, cost: 500 }),
                stall: Some(WorkerStall {
                    tid: None,
                    every: 4,
                    cost: 60,
                }),
                queue_capacity_clamp: Some(1),
                ..FaultPlan::default()
            },
            error: "worker `w` failed: injected shard poison (fault plan)".into(),
            rung: "threads(sharded, 8)".into(),
            attempt: 2,
            history: vec!["first error \"quoted\"".into()],
            run_id: 0xdead_beef_0042_1111,
        }
    }

    #[test]
    fn json_parser_handles_the_grammar() {
        let v = Json::parse(r#"{"a": [1, -2.5, "x\n\"y\""], "b": null, "c": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("x\n\"y\"")
        );
        assert_eq!(v.get("b"), Some(&Json::Null));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
    }

    #[test]
    fn big_u64_survives_round_trip() {
        let v = Json::parse(&format!("{}", u64::MAX)).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn bundle_round_trips_losslessly() {
        let b = sample();
        let parsed = FailureBundle::from_json(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn corrupt_bundles_are_rejected_with_field_names() {
        assert!(FailureBundle::from_json("not json").is_err());
        let missing = FailureBundle::from_json("{\"version\": 1}").unwrap_err();
        assert!(missing.contains('`'), "{missing}");
        let bad_version = FailureBundle::from_json("{\"version\": 9}").unwrap_err();
        assert!(bad_version.contains("version"), "{bad_version}");
    }

    #[test]
    fn write_then_load_round_trips_via_disk() {
        let dir = std::env::temp_dir().join("commset-bundle-test");
        let b = sample();
        let path = b.write(&dir).unwrap();
        assert!(path.extension().is_some());
        assert!(path.to_string_lossy().ends_with(".repro.json"));
        let loaded = FailureBundle::load(&path).unwrap();
        assert_eq!(loaded, b);
        let _ = std::fs::remove_file(path);
    }
}
