//! The compiled register-bytecode execution backend.
//!
//! [`BcModule::compile`] lowers every IR [`Function`] to a contiguous
//! `Vec<Op>` over virtual registers (one per slot) with **pre-resolved
//! block offsets** — branch targets are op indices, not block ids, so the
//! dispatch loop is a single indexed match over a flat array instead of
//! the tree-walk's block/index double indirection. The compiler also:
//!
//! * **fuses superinstructions** for the hot sequences — `Const`+`Bin`
//!   into [`Op::BinImm`], a block-trailing compare feeding its branch
//!   into [`Op::CmpBr`] (materializing the compare slot only when
//!   liveness says a later read needs it), the load-index-store
//!   read-modify-write triple into [`Op::ElemRmw`], and falls through
//!   unconditional jumps to the next block entirely;
//! * **inline-caches intrinsic call sites** as [`CallSite`] records: the
//!   `IntrinsicId`, destination register and argument bindings (slot or
//!   pre-interned string literal) are resolved once at compile time, so
//!   surfacing a special is a site-index lookup, not an argument re-scan.
//!
//! Every fused or folded op carries a **retire weight** — the number of
//! IR instructions/terminators it stands for, at the tree-walk cost
//! schedule (1 per instruction or terminator, 3 per program-function
//! call). `step()` reports that weight as its `cost`, so the simulated
//! clock of a bytecode run is *bit-identical* to the tree-walk clock:
//! same `sim_time`, same blocking points, same deterministic schedules.
//!
//! [`BcVm`] preserves the resumable [`StepOutcome::Special`] contract and
//! the whole [`Vm`] surface (watched calls, `resolve_special`,
//! `retry_special_later`), so the discrete-event executor, the
//! real-thread executor, the supervisor ladder and the checker all drive
//! the compiled form through the same code paths as the tree-walk.

use crate::error::ExecError;
use crate::vm::{eval_bin, eval_un, zero_of, CallEvent, GlobalMem, PendingSpecial, StepOutcome};
use commset_ir::liveness::Liveness;
use commset_ir::repr::{
    Arg, ArrRef, Callee, Const, FuncId, Function, GlobalId, Inst, IntrinsicId, Module, Terminator,
};
use commset_lang::ast::{BinOp, Type, UnOp};
use commset_runtime::Value;

/// A register index (virtual registers are the function's slots).
pub type Reg = u16;

/// An array reference with the local/global distinction pre-split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BcArr {
    /// Frame-local array, by index.
    Local(u16),
    /// Global array.
    Global(GlobalId),
}

/// The right-hand side of a fused read-modify-write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RmwRhs {
    /// A register operand.
    Reg(Reg),
    /// An immediate folded from a `Const`.
    Imm(Value),
}

/// A call argument binding, resolved at compile time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BcCallArg {
    /// Pass the register's value.
    Reg(Reg),
    /// A string-literal argument: the placeholder `Int(0)` is passed and
    /// the literal rides along in [`CallSite::strs`].
    Str,
}

/// One inline-cached intrinsic call site.
#[derive(Debug, Clone, PartialEq)]
pub struct CallSite {
    /// The pre-resolved intrinsic.
    pub intrinsic: IntrinsicId,
    /// Where the result lands, if anywhere.
    pub dst: Option<Reg>,
    /// Argument bindings, in positional order.
    pub args: Vec<BcCallArg>,
    /// Pre-interned string-literal arguments (position, literal) —
    /// computed once here instead of cloned out of the IR on every call.
    pub strs: Vec<(usize, String)>,
}

/// One bytecode operation. Branch operands are pre-resolved op offsets.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `dst = imm`
    Const { dst: Reg, val: Value },
    /// `dst = src`
    Copy { dst: Reg, src: Reg },
    /// `dst = op src`
    Un { dst: Reg, op: UnOp, src: Reg },
    /// `dst = lhs op rhs`
    Bin {
        dst: Reg,
        op: BinOp,
        lhs: Reg,
        rhs: Reg,
    },
    /// Superinstruction: `Const` + `Bin` — `dst = lhs op imm`.
    BinImm {
        dst: Reg,
        op: BinOp,
        lhs: Reg,
        imm: Value,
    },
    /// `dst = ty(src)`
    Cast { dst: Reg, ty: Type, src: Reg },
    /// `dst = load @g`
    LoadG { dst: Reg, g: GlobalId },
    /// `store @g = src`
    StoreG { g: GlobalId, src: Reg },
    /// `dst = arr[idx]`
    LoadElem { dst: Reg, arr: BcArr, idx: Reg },
    /// `arr[idx] = src`
    StoreElem { arr: BcArr, idx: Reg, src: Reg },
    /// Superinstruction: load-index-store — `arr[idx] = arr[idx] op rhs`.
    ElemRmw {
        arr: BcArr,
        idx: Reg,
        op: BinOp,
        rhs: RmwRhs,
    },
    /// Program-function call (pushes a frame; retire weight 3).
    CallFunc {
        dst: Option<Reg>,
        func: FuncId,
        args: Box<[BcCallArg]>,
    },
    /// Intrinsic call: surfaces [`StepOutcome::Special`] from the
    /// inline-cached [`CallSite`] at this index.
    CallIntr { site: u32 },
    /// Unconditional jump to a pre-resolved offset (emitted only when the
    /// target is not the next op — fall-throughs are folded away).
    Jump { target: u32 },
    /// Conditional branch on a register.
    Br { cond: Reg, then_t: u32, else_t: u32 },
    /// Superinstruction: block-trailing compare (or any `Bin`) fused with
    /// its branch. `keep` materializes the compare result only when it is
    /// live out of the block.
    CmpBr {
        op: BinOp,
        lhs: Reg,
        rhs: RmwRhs,
        keep: Option<Reg>,
        then_t: u32,
        else_t: u32,
    },
    /// Return from the current frame.
    Ret { src: Option<Reg> },
}

/// Display names of the opcode kinds, indexed by [`Op::kind`]. The
/// metrics registry's per-opcode retire counts use these labels.
pub const OPCODE_NAMES: [&str; 17] = [
    "Const",
    "Copy",
    "Un",
    "Bin",
    "BinImm",
    "Cast",
    "LoadG",
    "StoreG",
    "LoadElem",
    "StoreElem",
    "ElemRmw",
    "CallFunc",
    "CallIntr",
    "Jump",
    "Br",
    "CmpBr",
    "Ret",
];

impl Op {
    /// Dense opcode-kind index (an index into [`OPCODE_NAMES`]), used by
    /// the metrics layer to count retires per opcode with one array add.
    pub fn kind(&self) -> usize {
        match self {
            Op::Const { .. } => 0,
            Op::Copy { .. } => 1,
            Op::Un { .. } => 2,
            Op::Bin { .. } => 3,
            Op::BinImm { .. } => 4,
            Op::Cast { .. } => 5,
            Op::LoadG { .. } => 6,
            Op::StoreG { .. } => 7,
            Op::LoadElem { .. } => 8,
            Op::StoreElem { .. } => 9,
            Op::ElemRmw { .. } => 10,
            Op::CallFunc { .. } => 11,
            Op::CallIntr { .. } => 12,
            Op::Jump { .. } => 13,
            Op::Br { .. } => 14,
            Op::CmpBr { .. } => 15,
            Op::Ret { .. } => 16,
        }
    }
}

/// One compiled function.
#[derive(Debug)]
pub struct BcFunction {
    /// The function's name (diagnostics and call-event labels).
    pub name: String,
    /// Parameter count (arity checking at frame creation).
    pub param_count: usize,
    /// The flat op array.
    pub ops: Vec<Op>,
    /// Per-op retire weights: how many IR instructions/terminators the op
    /// stands for, at tree-walk costs (fused ops > 1, folded jumps accrue
    /// onto their block's last op).
    pub weights: Vec<u32>,
    /// Inline-cached intrinsic call sites, indexed by [`Op::CallIntr`].
    pub sites: Vec<CallSite>,
    /// Op offset of each source block (disassembly labels).
    pub block_offsets: Vec<u32>,
    /// Register file template: one zero value per slot, params first.
    regs_init: Vec<Value>,
    /// Local-array templates: (zero value, length) per array.
    arrays_init: Vec<(Value, usize)>,
}

impl BcFunction {
    /// Index of the source basic block containing op offset `pc`
    /// (hot-block attribution: `block_offsets` is sorted ascending, so
    /// this is the last block starting at or before `pc`).
    pub fn block_of(&self, pc: u32) -> usize {
        self.block_offsets
            .partition_point(|off| *off <= pc)
            .saturating_sub(1)
    }
}

/// A whole module compiled to bytecode, indexed by [`FuncId`].
#[derive(Debug)]
pub struct BcModule {
    /// Compiled functions, parallel to `Module::funcs`.
    pub funcs: Vec<BcFunction>,
}

/// Ops whose operand order can be swapped without changing the result
/// *or* any error message (mixed-type diagnostics print operands in
/// order, so only same-type outcomes may commute — which is why this
/// stays unused for lhs-immediate fusion and the compiler simply leaves
/// those sequences unfused).
fn is_comparison_or_bin(_op: BinOp) -> bool {
    true
}

struct FnCompiler<'f> {
    f: &'f Function,
    ops: Vec<Op>,
    weights: Vec<u32>,
    sites: Vec<CallSite>,
    block_offsets: Vec<u32>,
    /// (op offset, target block) pairs to patch once offsets are known.
    fixups: Vec<(usize, BlockTargets)>,
}

enum BlockTargets {
    Jump(u32),
    Br(u32, u32),
}

fn reg(s: commset_ir::Slot) -> Reg {
    debug_assert!(s.0 <= u32::from(u16::MAX), "register file overflow");
    s.0 as Reg
}

fn call_args(args: &[Arg]) -> (Vec<BcCallArg>, Vec<(usize, String)>) {
    let mut bound = Vec::with_capacity(args.len());
    let mut strs = Vec::new();
    for (i, a) in args.iter().enumerate() {
        match a {
            Arg::Slot(s) => bound.push(BcCallArg::Reg(reg(*s))),
            Arg::Str(s) => {
                strs.push((i, s.clone()));
                bound.push(BcCallArg::Str);
            }
        }
    }
    (bound, strs)
}

fn bc_arr(a: &ArrRef) -> BcArr {
    match a {
        ArrRef::Local(a) => BcArr::Local(a.0 as u16),
        ArrRef::Global(g) => BcArr::Global(*g),
    }
}

impl<'f> FnCompiler<'f> {
    fn push(&mut self, op: Op, weight: u32) {
        self.ops.push(op);
        self.weights.push(weight);
    }

    /// Translates one block, fusing superinstructions. Returns whether
    /// the terminator was consumed by a `CmpBr` fusion.
    fn compile_block(&mut self, b: usize, lv: &Liveness) -> bool {
        let block = &self.f.blocks[b];
        let after = lv.live_after(self.f, b);
        let insts: Vec<&Inst> = block.insts.iter().map(|n| &n.inst).collect();
        let n = insts.len();
        let mut i = 0usize;
        // Index (into `insts`) of the IR instruction behind the last
        // emitted op of this block, for terminator fusion.
        let mut last_emitted: Option<usize> = None;
        while i < n {
            // Load-index-store RMW: LoadElem t / [Const c] / Bin u=t⊕x /
            // StoreElem same cell = u, with every temp dead afterwards.
            if let Some((consumed, op)) = self.try_elem_rmw(&insts, i, &after) {
                self.push(op, consumed as u32);
                i += consumed;
                last_emitted = Some(i - 1);
                continue;
            }
            // Const + Bin with the constant as rhs and dead afterwards.
            if let Some(op) = self.try_bin_imm(&insts, i, &after) {
                self.push(op, 2);
                i += 2;
                last_emitted = Some(i - 1);
                continue;
            }
            self.emit_plain(insts[i]);
            i += 1;
            last_emitted = Some(i - 1);
        }
        // Terminator. A block-trailing Bin/BinImm feeding the branch
        // condition fuses into CmpBr; the result register is written only
        // if live out of the block.
        match &block.term {
            Terminator::Br {
                cond,
                then_bb,
                else_bb,
            } => {
                let cond = reg(*cond);
                if let Some(li) = last_emitted {
                    if li == n - 1 {
                        let fused = match self.ops.last() {
                            Some(Op::Bin { dst, op, lhs, rhs }) if *dst == cond => {
                                Some((*op, *lhs, RmwRhs::Reg(*rhs), *dst))
                            }
                            Some(Op::BinImm { dst, op, lhs, imm }) if *dst == cond => {
                                Some((*op, *lhs, RmwRhs::Imm(*imm), *dst))
                            }
                            _ => None,
                        };
                        if let Some((op, lhs, rhs, dst)) = fused {
                            if is_comparison_or_bin(op) {
                                let keep = lv
                                    .live_out(b)
                                    .contains(commset_ir::Slot(u32::from(dst)))
                                    .then_some(dst);
                                let w = self.weights.pop().expect("weight") + 1;
                                self.ops.pop();
                                let at = self.ops.len();
                                self.push(
                                    Op::CmpBr {
                                        op,
                                        lhs,
                                        rhs,
                                        keep,
                                        then_t: 0,
                                        else_t: 0,
                                    },
                                    w,
                                );
                                self.fixups
                                    .push((at, BlockTargets::Br(then_bb.0, else_bb.0)));
                                return true;
                            }
                        }
                    }
                }
                let at = self.ops.len();
                self.push(
                    Op::Br {
                        cond,
                        then_t: 0,
                        else_t: 0,
                    },
                    1,
                );
                self.fixups
                    .push((at, BlockTargets::Br(then_bb.0, else_bb.0)));
            }
            Terminator::Jump(t) => {
                // A CallIntr carries no retirable weight — its step
                // surfaces Special, never Ran — so folding the jump into
                // one would silently drop the terminator's tick.
                let foldable = !matches!(self.ops.last(), None | Some(Op::CallIntr { .. }));
                if t.0 as usize == b + 1 && foldable && last_emitted.is_some() {
                    // Fall through: fold the jump into the block's last
                    // op (its retire weight still charges the tick).
                    *self.weights.last_mut().expect("weight") += 1;
                } else {
                    let at = self.ops.len();
                    self.push(Op::Jump { target: 0 }, 1);
                    self.fixups.push((at, BlockTargets::Jump(t.0)));
                }
            }
            Terminator::Ret(v) => {
                self.push(Op::Ret { src: v.map(reg) }, 1);
            }
        }
        false
    }

    fn try_elem_rmw(
        &mut self,
        insts: &[&Inst],
        i: usize,
        after: &[commset_ir::SlotSet],
    ) -> Option<(usize, Op)> {
        // The lowerer emits an array read-modify-write in one of three
        // shapes, depending on surface syntax:
        //   A: Const c; LoadElem t=a[x]; Bin u=t⊕c; StoreElem a[x]=u
        //      (`a[x] += 1` — the rhs constant is lowered first)
        //   B: LoadElem t; Const c; Bin u=t⊕c; StoreElem
        //      (`a[x] = a[x] + 1` — the load is part of the rhs expr)
        //   C: LoadElem t; Bin u=t⊕r; StoreElem   (register rhs)
        let (lead, load_at) = match *insts[i] {
            Inst::Const { dst, value } => (Some((dst, value)), i + 1),
            Inst::LoadElem { .. } => (None, i),
            _ => return None,
        };
        let &&Inst::LoadElem { dst: t, arr, idx } = insts.get(load_at)? else {
            return None;
        };
        let (imm, bin_at) = match (lead, insts.get(load_at + 1)) {
            (Some(c), _) => (Some(c), load_at + 1),
            (None, Some(&&Inst::Const { dst, value })) => (Some((dst, value)), load_at + 2),
            (None, _) => (None, load_at + 1),
        };
        let &&Inst::Bin {
            dst: u,
            op,
            lhs,
            rhs,
        } = insts.get(bin_at)?
        else {
            return None;
        };
        let &&Inst::StoreElem {
            arr: sarr,
            idx: sidx,
            src,
        } = insts.get(bin_at + 1)?
        else {
            return None;
        };
        // The window must be a closed rmw on one cell: the load feeds the
        // op, the op feeds the store, and no temp aliases the index slot
        // (a clobbered index would change which cell the store hits).
        if lhs != t || sarr != arr || sidx != idx || src != u || u == idx || t == idx {
            return None;
        }
        let rhs = match imm {
            Some((c, value)) => {
                if rhs != c || c == t || c == idx {
                    return None;
                }
                // The folded constant must die at the Bin.
                if after[bin_at].contains(c) {
                    return None;
                }
                RmwRhs::Imm(match value {
                    Const::Int(v) => Value::Int(v),
                    Const::Float(v) => Value::Float(v),
                })
            }
            None => {
                if rhs == t {
                    return None;
                }
                RmwRhs::Reg(reg(rhs))
            }
        };
        // Both the loaded value and the op result must be dead after the
        // store — nothing downstream may observe the skipped writes.
        let live = &after[bin_at + 1];
        if live.contains(t) || live.contains(u) {
            return None;
        }
        let consumed = bin_at + 2 - i;
        Some((
            consumed,
            Op::ElemRmw {
                arr: bc_arr(&arr),
                idx: reg(idx),
                op,
                rhs,
            },
        ))
    }

    fn try_bin_imm(
        &mut self,
        insts: &[&Inst],
        i: usize,
        after: &[commset_ir::SlotSet],
    ) -> Option<Op> {
        let &Inst::Const { dst: c, value } = insts[i] else {
            return None;
        };
        let &&Inst::Bin { dst, op, lhs, rhs } = insts.get(i + 1)? else {
            return None;
        };
        // Only rhs-immediate forms fuse: swapping operands would reorder
        // mixed-type error messages, and lhs immediates are rare.
        if rhs != c || lhs == c {
            return None;
        }
        if after[i + 1].contains(c) {
            return None;
        }
        Some(Op::BinImm {
            dst: reg(dst),
            op,
            lhs: reg(lhs),
            imm: match value {
                Const::Int(v) => Value::Int(v),
                Const::Float(v) => Value::Float(v),
            },
        })
    }

    fn emit_plain(&mut self, inst: &Inst) {
        let op = match inst {
            Inst::Const { dst, value } => Op::Const {
                dst: reg(*dst),
                val: match value {
                    Const::Int(v) => Value::Int(*v),
                    Const::Float(v) => Value::Float(*v),
                },
            },
            Inst::Copy { dst, src } => Op::Copy {
                dst: reg(*dst),
                src: reg(*src),
            },
            Inst::Un { dst, op, src } => Op::Un {
                dst: reg(*dst),
                op: *op,
                src: reg(*src),
            },
            Inst::Bin { dst, op, lhs, rhs } => Op::Bin {
                dst: reg(*dst),
                op: *op,
                lhs: reg(*lhs),
                rhs: reg(*rhs),
            },
            Inst::Cast { dst, ty, src } => Op::Cast {
                dst: reg(*dst),
                ty: *ty,
                src: reg(*src),
            },
            Inst::LoadG { dst, global } => Op::LoadG {
                dst: reg(*dst),
                g: *global,
            },
            Inst::StoreG { global, src } => Op::StoreG {
                g: *global,
                src: reg(*src),
            },
            Inst::LoadElem { dst, arr, idx } => Op::LoadElem {
                dst: reg(*dst),
                arr: bc_arr(arr),
                idx: reg(*idx),
            },
            Inst::StoreElem { arr, idx, src } => Op::StoreElem {
                arr: bc_arr(arr),
                idx: reg(*idx),
                src: reg(*src),
            },
            Inst::Call { dst, callee, args } => {
                let (bound, strs) = call_args(args);
                match callee {
                    Callee::Func(fid) => {
                        self.push(
                            Op::CallFunc {
                                dst: dst.map(reg),
                                func: *fid,
                                args: bound.into_boxed_slice(),
                            },
                            3,
                        );
                        return;
                    }
                    Callee::Intrinsic(iid) => {
                        let site = self.sites.len() as u32;
                        self.sites.push(CallSite {
                            intrinsic: *iid,
                            dst: dst.map(reg),
                            args: bound,
                            strs,
                        });
                        // Intrinsic call steps surface a Special and are
                        // charged by the executor (base + extra), never
                        // as retired instructions — weight 0.
                        self.push(Op::CallIntr { site }, 0);
                        return;
                    }
                }
            }
        };
        self.push(op, 1);
    }
}

fn compile_function(f: &Function) -> BcFunction {
    let lv = Liveness::compute(f);
    let mut c = FnCompiler {
        f,
        ops: Vec::with_capacity(f.inst_count() + f.blocks.len()),
        weights: Vec::new(),
        sites: Vec::new(),
        block_offsets: Vec::with_capacity(f.blocks.len()),
        fixups: Vec::new(),
    };
    for b in 0..f.blocks.len() {
        c.block_offsets.push(c.ops.len() as u32);
        c.compile_block(b, &lv);
    }
    for (at, t) in std::mem::take(&mut c.fixups) {
        match (&mut c.ops[at], t) {
            (Op::Jump { target }, BlockTargets::Jump(b)) => {
                *target = c.block_offsets[b as usize];
            }
            (Op::Br { then_t, else_t, .. }, BlockTargets::Br(tb, eb))
            | (Op::CmpBr { then_t, else_t, .. }, BlockTargets::Br(tb, eb)) => {
                *then_t = c.block_offsets[tb as usize];
                *else_t = c.block_offsets[eb as usize];
            }
            _ => unreachable!("fixup op kind mismatch"),
        }
    }
    BcFunction {
        name: f.name.clone(),
        param_count: f.param_count,
        ops: c.ops,
        weights: c.weights,
        sites: c.sites,
        block_offsets: c.block_offsets,
        regs_init: f.slots.iter().map(|s| zero_of(s.ty)).collect(),
        arrays_init: f.arrays.iter().map(|a| (zero_of(a.ty), a.len)).collect(),
    }
}

impl BcModule {
    /// Compiles every function of `module` to bytecode.
    pub fn compile(module: &Module) -> Self {
        BcModule {
            funcs: module.funcs.iter().map(compile_function).collect(),
        }
    }
}

#[derive(Debug)]
struct BcFrame {
    func: FuncId,
    pc: u32,
    regs: Vec<Value>,
    arrays: Vec<Vec<Value>>,
    ret_dst: Option<Reg>,
    watched: bool,
}

#[derive(Debug, Default)]
struct WatchState {
    set: std::collections::BTreeSet<FuncId>,
    events: Vec<CallEvent>,
    depth: usize,
}

/// A resumable bytecode machine — the compiled twin of [`Vm`], with the
/// same step/special/resume contract and the same dynamic-error surface.
///
/// [`Vm`]: crate::vm::Vm
pub struct BcVm<'m> {
    module: &'m Module,
    bc: &'m BcModule,
    frames: Vec<BcFrame>,
    pending: bool,
    finished: bool,
    watch: Option<WatchState>,
}

impl std::fmt::Debug for BcVm<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BcVm")
            .field("depth", &self.frames.len())
            .field("pending", &self.pending)
            .field("finished", &self.finished)
            .finish()
    }
}

fn new_frame(
    bf: &BcFunction,
    func: FuncId,
    args: &[Value],
    ret_dst: Option<Reg>,
) -> Result<BcFrame, ExecError> {
    if args.len() != bf.param_count {
        return Err(ExecError::ArityMismatch {
            func: bf.name.clone(),
            expected: bf.param_count,
            got: args.len(),
        });
    }
    let mut regs = bf.regs_init.clone();
    regs[..args.len()].copy_from_slice(args);
    let arrays = bf.arrays_init.iter().map(|(z, n)| vec![*z; *n]).collect();
    Ok(BcFrame {
        func,
        pc: 0,
        regs,
        arrays,
        ret_dst,
        watched: false,
    })
}

impl<'m> BcVm<'m> {
    /// Creates a machine poised to run `func(args...)`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::ArityMismatch`] when `args` does not match the
    /// function's parameter count.
    pub fn new(
        module: &'m Module,
        bc: &'m BcModule,
        func: FuncId,
        args: &[Value],
    ) -> Result<Self, ExecError> {
        let bf = &bc.funcs[func.0 as usize];
        Ok(BcVm {
            module,
            bc,
            frames: vec![new_frame(bf, func, args, None)?],
            pending: false,
            finished: false,
            watch: None,
        })
    }

    /// Convenience: machine for a function by name.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnknownFunction`] when the function does not
    /// exist and [`ExecError::ArityMismatch`] on a bad argument count.
    pub fn for_name(
        module: &'m Module,
        bc: &'m BcModule,
        name: &str,
        args: &[Value],
    ) -> Result<Self, ExecError> {
        let id = module
            .func_id(name)
            .ok_or_else(|| ExecError::UnknownFunction {
                name: name.to_string(),
            })?;
        BcVm::new(module, bc, id, args)
    }

    /// True once the entry function has returned.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Starts recording [`CallEvent`]s for calls to the given functions.
    /// Unknown names are ignored. Calling again replaces the watch set but
    /// keeps undrained events.
    pub fn watch_calls<'a>(&mut self, funcs: impl IntoIterator<Item = &'a str>) {
        let mut set = std::collections::BTreeSet::new();
        for name in funcs {
            if let Some(id) = self.module.func_id(name) {
                set.insert(id);
            }
        }
        let st = self.watch.get_or_insert_with(WatchState::default);
        st.set = set;
    }

    /// Watches every module function whose name starts with `prefix`.
    pub fn watch_calls_matching(&mut self, prefix: &str) {
        let names: Vec<String> = self
            .module
            .funcs
            .iter()
            .filter(|f| f.name.starts_with(prefix))
            .map(|f| f.name.clone())
            .collect();
        self.watch_calls(names.iter().map(String::as_str));
    }

    /// Removes and returns the recorded call-boundary events.
    pub fn drain_call_events(&mut self) -> Vec<CallEvent> {
        match &mut self.watch {
            Some(st) => std::mem::take(&mut st.events),
            None => Vec::new(),
        }
    }

    /// Number of watched frames currently on the stack.
    pub fn watched_depth(&self) -> usize {
        self.watch.as_ref().map_or(0, |st| st.depth)
    }

    /// Name of the function currently on top of the stack (diagnostics).
    pub fn current_function(&self) -> &str {
        match self.frames.last() {
            Some(fr) => &self.bc.funcs[fr.func.0 as usize].name,
            None => "<finished>",
        }
    }

    /// The `(function id, op offset)` the next [`step`](Self::step) will
    /// retire, or `None` once finished. The metrics layer samples this
    /// *before* stepping to attribute the retired cost to an opcode kind
    /// and a source basic block.
    pub fn site(&self) -> Option<(u32, u32)> {
        if self.finished {
            return None;
        }
        self.frames.last().map(|fr| (fr.func.0, fr.pc))
    }

    /// Supplies the result of the pending intrinsic call and advances.
    ///
    /// # Panics
    ///
    /// Panics if no special is pending — an executor bug, unreachable from
    /// program input.
    pub fn resolve_special(&mut self, value: Value) {
        assert!(self.pending, "no pending special");
        self.pending = false;
        let fr = self.frames.last_mut().expect("frame");
        let bf = &self.bc.funcs[fr.func.0 as usize];
        if let Op::CallIntr { site } = bf.ops[fr.pc as usize] {
            if let Some(d) = bf.sites[site as usize].dst {
                fr.regs[d as usize] = value;
            }
        }
        fr.pc += 1;
    }

    /// Abandons the pending intrinsic call so it can be retried later.
    pub fn retry_special_later(&mut self) {
        assert!(self.pending, "no pending special");
        self.pending = false;
    }

    /// Executes one bytecode op; fused ops retire several IR instructions
    /// in one step and report the sum as `cost`.
    ///
    /// # Errors
    ///
    /// Returns the same [`ExecError`]s, with the same payloads, as the
    /// tree-walk [`Vm::step`](crate::vm::Vm::step) on the same program
    /// point.
    ///
    /// # Panics
    ///
    /// Panics when stepping a finished or pending machine — executor
    /// contract violations, unreachable from program input.
    pub fn step(&mut self, globals: &mut dyn GlobalMem) -> Result<StepOutcome, ExecError> {
        assert!(!self.pending, "resolve the pending special first");
        assert!(!self.finished, "machine already finished");
        let fr = self.frames.last_mut().expect("frame");
        let bf = &self.bc.funcs[fr.func.0 as usize];
        let pc = fr.pc as usize;
        let cost = u64::from(bf.weights[pc]);
        match &bf.ops[pc] {
            Op::Const { dst, val } => {
                fr.regs[*dst as usize] = *val;
            }
            Op::Copy { dst, src } => {
                fr.regs[*dst as usize] = fr.regs[*src as usize];
            }
            Op::Un { dst, op, src } => {
                let v = fr.regs[*src as usize];
                fr.regs[*dst as usize] = eval_un(*op, v, &bf.name)?;
            }
            Op::Bin { dst, op, lhs, rhs } => {
                let a = fr.regs[*lhs as usize];
                let b = fr.regs[*rhs as usize];
                fr.regs[*dst as usize] = eval_bin(*op, a, b, &bf.name)?;
            }
            Op::BinImm { dst, op, lhs, imm } => {
                let a = fr.regs[*lhs as usize];
                fr.regs[*dst as usize] = eval_bin(*op, a, *imm, &bf.name)?;
            }
            Op::Cast { dst, ty, src } => {
                let v = fr.regs[*src as usize];
                fr.regs[*dst as usize] = match (ty, v) {
                    (Type::Float, Value::Int(i)) => Value::Float(i as f64),
                    (Type::Int, Value::Float(f)) => Value::Int(f as i64),
                    _ => v,
                };
            }
            Op::LoadG { dst, g } => {
                fr.regs[*dst as usize] = globals.load(*g);
            }
            Op::StoreG { g, src } => {
                globals.store(*g, fr.regs[*src as usize]);
            }
            Op::LoadElem { dst, arr, idx } => {
                let i = fr.regs[*idx as usize].as_int();
                fr.regs[*dst as usize] = load_elem(&bf.name, &fr.arrays, globals, *arr, i)?;
            }
            Op::StoreElem { arr, idx, src } => {
                let i = fr.regs[*idx as usize].as_int();
                let v = fr.regs[*src as usize];
                store_elem(&bf.name, &mut fr.arrays, globals, *arr, i, v)?;
            }
            Op::ElemRmw { arr, idx, op, rhs } => {
                let i = fr.regs[*idx as usize].as_int();
                let cur = load_elem(&bf.name, &fr.arrays, globals, *arr, i)?;
                let b = match rhs {
                    RmwRhs::Reg(r) => fr.regs[*r as usize],
                    RmwRhs::Imm(v) => *v,
                };
                let v = eval_bin(*op, cur, b, &bf.name)?;
                store_elem(&bf.name, &mut fr.arrays, globals, *arr, i, v)?;
            }
            Op::CallFunc { dst, func, args } => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| match a {
                        BcCallArg::Reg(r) => fr.regs[*r as usize],
                        BcCallArg::Str => Value::Int(0),
                    })
                    .collect();
                let callee = &self.bc.funcs[func.0 as usize];
                let mut frame = new_frame(callee, *func, &vals, *dst)?;
                if let Some(st) = &mut self.watch {
                    if st.set.contains(func) {
                        frame.watched = true;
                        st.depth += 1;
                        st.events.push(CallEvent {
                            enter: true,
                            func: callee.name.clone(),
                            args: vals,
                            depth: st.depth,
                        });
                    }
                }
                self.frames.push(frame);
                return Ok(StepOutcome::Ran { cost });
            }
            Op::CallIntr { site } => {
                let site = &bf.sites[*site as usize];
                let args: Vec<Value> = site
                    .args
                    .iter()
                    .map(|a| match a {
                        BcCallArg::Reg(r) => fr.regs[*r as usize],
                        BcCallArg::Str => Value::Int(0),
                    })
                    .collect();
                self.pending = true;
                return Ok(StepOutcome::Special(PendingSpecial {
                    intrinsic: site.intrinsic,
                    args,
                    str_args: site.strs.clone(),
                }));
            }
            Op::Jump { target } => {
                fr.pc = *target;
                return Ok(StepOutcome::Ran { cost });
            }
            Op::Br {
                cond,
                then_t,
                else_t,
            } => {
                fr.pc = if fr.regs[*cond as usize].is_true() {
                    *then_t
                } else {
                    *else_t
                };
                return Ok(StepOutcome::Ran { cost });
            }
            Op::CmpBr {
                op,
                lhs,
                rhs,
                keep,
                then_t,
                else_t,
            } => {
                let a = fr.regs[*lhs as usize];
                let b = match rhs {
                    RmwRhs::Reg(r) => fr.regs[*r as usize],
                    RmwRhs::Imm(v) => *v,
                };
                let v = eval_bin(*op, a, b, &bf.name)?;
                if let Some(d) = keep {
                    fr.regs[*d as usize] = v;
                }
                fr.pc = if v.is_true() { *then_t } else { *else_t };
                return Ok(StepOutcome::Ran { cost });
            }
            Op::Ret { src } => {
                let value = src.map(|s| fr.regs[s as usize]);
                let ret_dst = fr.ret_dst;
                let popped = self.frames.pop().expect("frame");
                if popped.watched {
                    if let Some(st) = &mut self.watch {
                        st.depth = st.depth.saturating_sub(1);
                        st.events.push(CallEvent {
                            enter: false,
                            func: self.bc.funcs[popped.func.0 as usize].name.clone(),
                            args: Vec::new(),
                            depth: st.depth,
                        });
                    }
                }
                match self.frames.last_mut() {
                    Some(caller) => {
                        if let (Some(d), Some(v)) = (ret_dst, value) {
                            caller.regs[d as usize] = v;
                        }
                        caller.pc += 1;
                    }
                    None => {
                        self.finished = true;
                        return Ok(StepOutcome::Finished(value));
                    }
                }
                return Ok(StepOutcome::Ran { cost });
            }
        }
        fr.pc += 1;
        Ok(StepOutcome::Ran { cost })
    }
}

fn load_elem(
    fname: &str,
    arrays: &[Vec<Value>],
    globals: &mut dyn GlobalMem,
    arr: BcArr,
    i: i64,
) -> Result<Value, ExecError> {
    match arr {
        BcArr::Local(a) => {
            let arr = &arrays[a as usize];
            match usize::try_from(i).ok().and_then(|i| arr.get(i)) {
                Some(v) => Ok(*v),
                None => Err(ExecError::IndexOutOfBounds {
                    func: fname.to_string(),
                    index: i,
                    len: arr.len(),
                    global: false,
                }),
            }
        }
        BcArr::Global(g) => globals
            .load_elem(g, i)
            .map_err(|e| ExecError::IndexOutOfBounds {
                func: fname.to_string(),
                index: e.index,
                len: e.len,
                global: true,
            }),
    }
}

fn store_elem(
    fname: &str,
    arrays: &mut [Vec<Value>],
    globals: &mut dyn GlobalMem,
    arr: BcArr,
    i: i64,
    v: Value,
) -> Result<(), ExecError> {
    match arr {
        BcArr::Local(a) => {
            let arr = &mut arrays[a as usize];
            let len = arr.len();
            match usize::try_from(i).ok().and_then(|i| arr.get_mut(i)) {
                Some(slot) => {
                    *slot = v;
                    Ok(())
                }
                None => Err(ExecError::IndexOutOfBounds {
                    func: fname.to_string(),
                    index: i,
                    len,
                    global: false,
                }),
            }
        }
        BcArr::Global(g) => globals
            .store_elem(g, i, v)
            .map_err(|e| ExecError::IndexOutOfBounds {
                func: fname.to_string(),
                index: e.index,
                len: e.len,
                global: true,
            }),
    }
}

// ---------------------------------------------------------------------
// Disassembler
// ---------------------------------------------------------------------

fn rmw_rhs(r: &RmwRhs) -> String {
    match r {
        RmwRhs::Reg(r) => format!("r{r}"),
        RmwRhs::Imm(v) => format!("#{v}"),
    }
}

fn arr_str(m: &Module, a: &BcArr) -> String {
    match a {
        BcArr::Local(i) => format!("a{i}"),
        BcArr::Global(g) => format!("@{}", m.global(*g).name),
    }
}

fn site_str(m: &Module, s: &CallSite) -> String {
    let args: Vec<String> = s
        .args
        .iter()
        .enumerate()
        .map(|(i, a)| match a {
            BcCallArg::Reg(r) => format!("r{r}"),
            BcCallArg::Str => {
                let lit = s
                    .strs
                    .iter()
                    .find(|(p, _)| *p == i)
                    .map(|(_, l)| l.as_str())
                    .unwrap_or("?");
                format!("{lit:?}")
            }
        })
        .collect();
    let call = format!(
        "call !{}({})",
        m.intrinsics.name(s.intrinsic.0 as usize),
        args.join(", ")
    );
    match s.dst {
        Some(d) => format!("r{d} = {call}"),
        None => call,
    }
}

/// Renders one op (for the disassembly listing).
pub fn print_op(m: &Module, bf: &BcFunction, op: &Op) -> String {
    match op {
        Op::Const { dst, val } => format!("r{dst} = const {val}"),
        Op::Copy { dst, src } => format!("r{dst} = r{src}"),
        Op::Un { dst, op, src } => format!("r{dst} = {}r{src}", op.as_str()),
        Op::Bin { dst, op, lhs, rhs } => {
            format!("r{dst} = r{lhs} {} r{rhs}", op.as_str())
        }
        Op::BinImm { dst, op, lhs, imm } => {
            format!("r{dst} = r{lhs} {} #{imm}", op.as_str())
        }
        Op::Cast { dst, ty, src } => format!("r{dst} = {ty}(r{src})"),
        Op::LoadG { dst, g } => format!("r{dst} = load @{}", m.global(*g).name),
        Op::StoreG { g, src } => format!("store @{} = r{src}", m.global(*g).name),
        Op::LoadElem { dst, arr, idx } => {
            format!("r{dst} = {}[r{idx}]", arr_str(m, arr))
        }
        Op::StoreElem { arr, idx, src } => {
            format!("{}[r{idx}] = r{src}", arr_str(m, arr))
        }
        Op::ElemRmw { arr, idx, op, rhs } => {
            let a = arr_str(m, arr);
            format!("{a}[r{idx}] = {a}[r{idx}] {} {}", op.as_str(), rmw_rhs(rhs))
        }
        Op::CallFunc { dst, func, args } => {
            let args: Vec<String> = args
                .iter()
                .map(|a| match a {
                    BcCallArg::Reg(r) => format!("r{r}"),
                    BcCallArg::Str => "\"?\"".to_string(),
                })
                .collect();
            let call = format!("call {}({})", m.func(*func).name, args.join(", "));
            match dst {
                Some(d) => format!("r{d} = {call}"),
                None => call,
            }
        }
        Op::CallIntr { site } => site_str(m, &bf.sites[*site as usize]),
        Op::Jump { target } => format!("jump @{target}"),
        Op::Br {
            cond,
            then_t,
            else_t,
        } => format!("br r{cond} ? @{then_t} : @{else_t}"),
        Op::CmpBr {
            op,
            lhs,
            rhs,
            keep,
            then_t,
            else_t,
        } => {
            let keep = match keep {
                Some(d) => format!(" keep r{d}"),
                None => String::new(),
            };
            format!(
                "cmpbr r{lhs} {} {}{keep} ? @{then_t} : @{else_t}",
                op.as_str(),
                rmw_rhs(rhs)
            )
        }
        Op::Ret { src: Some(s) } => format!("ret r{s}"),
        Op::Ret { src: None } => "ret".to_string(),
    }
}

/// Renders one compiled function as a labeled listing with per-op retire
/// weights (weight 1 is implicit).
pub fn print_bc_function(m: &Module, bf: &BcFunction) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let fused = bf.weights.iter().filter(|w| **w > 1).count();
    let _ = writeln!(
        out,
        "func {} ({} ops, {} sites, {} fused) {{",
        bf.name,
        bf.ops.len(),
        bf.sites.len(),
        fused
    );
    for (i, op) in bf.ops.iter().enumerate() {
        if let Some(b) = bf.block_offsets.iter().position(|o| *o as usize == i) {
            let _ = writeln!(out, "bb{b}:");
        }
        let w = bf.weights[i];
        let suffix = if w == 1 {
            String::new()
        } else {
            format!("    ; w{w}")
        };
        let _ = writeln!(out, "  {i:>4}: {}{suffix}", print_op(m, bf, op));
    }
    out.push_str("}\n");
    out
}

/// Renders a whole compiled module (the `--dump-bytecode` listing).
pub fn print_bc_module(m: &Module, bc: &BcModule) -> String {
    bc.funcs.iter().map(|bf| print_bc_function(m, bf)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::globals::PlainGlobals;
    use crate::vm::Vm;
    use commset_ir::{lower_program, IntrinsicTable};

    fn module(src: &str) -> Module {
        let unit = commset_lang::compile_unit(src).unwrap();
        lower_program(&unit.program, IntrinsicTable::new()).unwrap()
    }

    fn module_with_intrinsic(src: &str) -> Module {
        let mut table = IntrinsicTable::new();
        table.register(
            "ask",
            vec![commset_lang::ast::Type::Int],
            commset_lang::ast::Type::Int,
            &[],
            &["Q"],
            10,
        );
        let unit = commset_lang::compile_unit(src).unwrap();
        lower_program(&unit.program, table).unwrap()
    }

    /// Runs a module under both engines, resolving intrinsics with
    /// `value = arg + 1`, and asserts identical results, identical total
    /// retired cost, and identical special sequences.
    fn assert_engine_parity(m: &Module) {
        let bc = BcModule::compile(m);
        let mut tg = PlainGlobals::new(m);
        let mut bg = PlainGlobals::new(m);
        let mut tree = Vm::for_name(m, "main", &[]).unwrap();
        let mut byte = BcVm::for_name(m, &bc, "main", &[]).unwrap();
        trait Engine {
            fn step(&mut self, g: &mut dyn GlobalMem) -> Result<StepOutcome, ExecError>;
            fn resolve(&mut self, v: Value);
        }
        impl Engine for Vm<'_> {
            fn step(&mut self, g: &mut dyn GlobalMem) -> Result<StepOutcome, ExecError> {
                Vm::step(self, g)
            }
            fn resolve(&mut self, v: Value) {
                self.resolve_special(v);
            }
        }
        impl Engine for BcVm<'_> {
            fn step(&mut self, g: &mut dyn GlobalMem) -> Result<StepOutcome, ExecError> {
                BcVm::step(self, g)
            }
            fn resolve(&mut self, v: Value) {
                self.resolve_special(v);
            }
        }
        #[allow(clippy::type_complexity)]
        fn run(
            vm: &mut dyn Engine,
            g: &mut dyn GlobalMem,
        ) -> (
            Result<Option<Value>, ExecError>,
            u64,
            Vec<(commset_ir::IntrinsicId, Vec<Value>, Vec<(usize, String)>)>,
        ) {
            let mut cost = 0u64;
            let mut specials = Vec::new();
            let result = loop {
                match vm.step(g) {
                    Ok(StepOutcome::Ran { cost: c }) => cost += c,
                    Ok(StepOutcome::Special(p)) => {
                        specials.push((p.intrinsic, p.args.clone(), p.str_args.clone()));
                        let v = Value::Int(p.args[0].as_int() + 1);
                        vm.resolve(v);
                    }
                    Ok(StepOutcome::Finished(v)) => break Ok(v),
                    Err(e) => break Err(e),
                }
            };
            (result, cost, specials)
        }
        let t = run(&mut tree, &mut tg);
        let b = run(&mut byte, &mut bg);
        assert_eq!(t.0, b.0, "results must match");
        assert_eq!(t.1, b.1, "total retired cost must be bit-identical");
        assert_eq!(t.2, b.2, "special sequences must match");
    }

    const PARITY_CORPUS: &[&str] = &[
        "int main() { int s = 0; for (int i = 0; i < 10; i = i + 1) { if (i % 2 == 0) s += i; } return s; }",
        "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); } int main() { return fib(10); }",
        "int main() { float x = 1.5; float y = x * 2.0; return int(y) + int(float(3)); }",
        "int g = 5; int a[4]; int main() { a[0] = g; a[1] = a[0] * 2; int buf[2]; buf[1] = a[1] + 1; g = buf[1]; return g; }",
        "int g = 0; int f() { return 0; } int h() { g = 1; return 1; } int main() { if (f() && h()) { return 9; } return g; }",
        "int main() { int s = 0; int i = 0; while (1) { i = i + 1; if (i > 10) break; if (i % 3 != 0) continue; s += i; } return s; }",
        "int h[8]; int main() { for (int i = 0; i < 32; i = i + 1) { h[i % 8] = h[i % 8] + 1; } return h[3]; }",
        "int h[8]; int main() { int j = 3; for (int i = 0; i < 16; i = i + 1) { h[j] += 1; h[j] = h[j] + 2; h[i % 8] += i; j = (j + 1) % 8; } return h[0] + h[3] + h[7]; }",
        "int main() { int a[16]; for (int i = 0; i < 16; i = i + 1) { a[i] = i * i; } int s = 0; for (int j = 0; j < 16; j = j + 1) { s = s + a[j]; } return s; }",
    ];

    #[test]
    fn engines_agree_on_results_cost_and_specials() {
        for src in PARITY_CORPUS {
            assert_engine_parity(&module(src));
        }
        assert_engine_parity(&module_with_intrinsic(
            "extern int ask(int x); int main() { int s = 0; for (int i = 0; i < 5; i = i + 1) { s = s + ask(i); } return s; }",
        ));
        // A block *ending* in an intrinsic call followed by a fall-through:
        // the jump tick must not be folded into the CallIntr (whose weight
        // is never retired — its step surfaces Special, not Ran).
        assert_engine_parity(&module_with_intrinsic(
            "extern int ask(int x); int main() { int s = 0; for (int i = 0; i < 6; i = i + 1) { s = s + 1; ask(s); } return s; }",
        ));
    }

    #[test]
    fn superinstructions_are_emitted() {
        // `h[i % 8] += 1` lowers the index once (the `=`-form lowers it
        // twice, into different temps, and cannot fuse).
        let m = module(
            "int h[8]; int main() { int s = 0; int j = 0; for (int i = 0; i < 32; i = i + 1) { h[i % 8] += 1; h[j] += 1; s = s + 2; } return s; }",
        );
        let bc = BcModule::compile(&m);
        let main = &bc.funcs[m.func_id("main").unwrap().0 as usize];
        let has = |pred: &dyn Fn(&Op) -> bool| main.ops.iter().any(pred);
        assert!(
            has(&|o| matches!(o, Op::CmpBr { .. })),
            "loop condition fuses: {}",
            print_bc_function(&m, main)
        );
        assert!(
            has(&|o| matches!(o, Op::BinImm { .. })),
            "constant operands fuse: {}",
            print_bc_function(&m, main)
        );
        assert!(
            has(&|o| matches!(o, Op::ElemRmw { .. })),
            "load-op-store fuses: {}",
            print_bc_function(&m, main)
        );
        // Fused ops carry their retired-instruction weight.
        for (op, w) in main.ops.iter().zip(&main.weights) {
            match op {
                Op::ElemRmw {
                    rhs: RmwRhs::Imm(_),
                    ..
                } => assert!(*w >= 4, "imm RMW retires 4 IR ops"),
                Op::ElemRmw { .. } => assert!(*w >= 3),
                Op::CmpBr {
                    rhs: RmwRhs::Imm(_),
                    ..
                } => assert!(*w >= 3, "imm compare-branch retires 3"),
                Op::CmpBr { .. } | Op::BinImm { .. } => assert!(*w >= 2),
                Op::CallFunc { .. } => assert_eq!(*w, 3),
                Op::CallIntr { .. } => assert_eq!(*w, 0),
                _ => assert!(*w >= 1),
            }
        }
    }

    #[test]
    fn compare_result_is_materialized_only_when_live() {
        // `c` is read after the branch, so the fused CmpBr must keep it.
        let m = module("int main() { int c = 3 < 5; if (c) { return c; } return 0; }");
        let bc = BcModule::compile(&m);
        let main = &bc.funcs[m.func_id("main").unwrap().0 as usize];
        if let Some(Op::CmpBr { keep, .. }) =
            main.ops.iter().find(|o| matches!(o, Op::CmpBr { .. }))
        {
            assert!(keep.is_some(), "live compare result must be kept");
        }
        assert_engine_parity(&m);

        // Here the compare temp is branch-only: no materialization.
        let m = module("int main() { int i = 3; if (i < 5) { return 1; } return 0; }");
        let bc = BcModule::compile(&m);
        let main = &bc.funcs[m.func_id("main").unwrap().0 as usize];
        if let Some(Op::CmpBr { keep, .. }) =
            main.ops.iter().find(|o| matches!(o, Op::CmpBr { .. }))
        {
            assert!(keep.is_none(), "dead compare result must not be kept");
        }
        assert_engine_parity(&m);
    }

    #[test]
    fn dynamic_errors_match_the_tree_walk_exactly() {
        for src in [
            "int main() { int z = 0; return 1 / z; }",
            "int main() { int z = 0; return 1 % z; }",
            "int main() { int a[2]; a[5] = 1; return 0; }",
            "int main() { int a[2]; int i = 0 - 1; return a[i]; }",
            "int g[3]; int helper() { return g[7]; } int main() { return helper(); }",
        ] {
            let m = module(src);
            let bc = BcModule::compile(&m);
            let mut tg = PlainGlobals::new(&m);
            let mut bg = PlainGlobals::new(&m);
            let mut tree = Vm::for_name(&m, "main", &[]).unwrap();
            let mut byte = BcVm::for_name(&m, &bc, "main", &[]).unwrap();
            let te = loop {
                match tree.step(&mut tg) {
                    Ok(StepOutcome::Finished(_)) => panic!("expected error"),
                    Ok(_) => {}
                    Err(e) => break e,
                }
            };
            let be = loop {
                match byte.step(&mut bg) {
                    Ok(StepOutcome::Finished(_)) => panic!("expected error"),
                    Ok(_) => {}
                    Err(e) => break e,
                }
            };
            assert_eq!(te, be, "{src}");
        }
    }

    #[test]
    fn watched_calls_record_identical_events() {
        let m = module(
            "int helper(int x) { return x + 1; } int main() { int a = helper(1); return helper(a); }",
        );
        let bc = BcModule::compile(&m);
        let mut tg = PlainGlobals::new(&m);
        let mut bg = PlainGlobals::new(&m);
        let mut tree = Vm::for_name(&m, "main", &[]).unwrap();
        let mut byte = BcVm::for_name(&m, &bc, "main", &[]).unwrap();
        tree.watch_calls(["helper"]);
        byte.watch_calls(["helper"]);
        loop {
            if let StepOutcome::Finished(_) = tree.step(&mut tg).unwrap() {
                break;
            }
        }
        loop {
            if let StepOutcome::Finished(_) = byte.step(&mut bg).unwrap() {
                break;
            }
        }
        let te = tree.drain_call_events();
        let be = byte.drain_call_events();
        assert_eq!(te, be);
        assert_eq!(te.len(), 4);
    }

    #[test]
    fn retry_special_later_replays_the_site() {
        let m = module_with_intrinsic("extern int ask(int x); int main() { return ask(7); }");
        let bc = BcModule::compile(&m);
        let mut g = PlainGlobals::new(&m);
        let mut vm = BcVm::for_name(&m, &bc, "main", &[]).unwrap();
        let mut asked = 0;
        loop {
            match vm.step(&mut g).unwrap() {
                StepOutcome::Ran { .. } => {}
                StepOutcome::Special(p) => {
                    asked += 1;
                    if asked == 1 {
                        vm.retry_special_later();
                    } else {
                        vm.resolve_special(Value::Int(p.args[0].as_int() * 6));
                    }
                }
                StepOutcome::Finished(v) => {
                    assert_eq!(v, Some(Value::Int(42)));
                    break;
                }
            }
        }
        assert_eq!(asked, 2, "abandoned special is re-surfaced");
    }

    #[test]
    fn disassembly_is_stable_and_labeled() {
        let m = module(
            "int g; int main() { int s = 0; for (int i = 0; i < 4; i = i + 1) { s = s + i; } g = s; return s; }",
        );
        let bc = BcModule::compile(&m);
        let text = print_bc_module(&m, &bc);
        assert!(text.contains("func main"), "{text}");
        assert!(text.contains("bb0:"), "{text}");
        assert!(text.contains("cmpbr"), "{text}");
        assert!(text.contains("store @g"), "{text}");
        // Weights annotate every fused op.
        assert!(text.contains("; w"), "{text}");
    }

    #[test]
    fn unknown_entry_and_arity_mirror_the_tree_walk() {
        let m = module("int main() { return 0; }");
        let bc = BcModule::compile(&m);
        let err = BcVm::for_name(&m, &bc, "nope", &[]).err().unwrap();
        assert_eq!(
            err,
            ExecError::UnknownFunction {
                name: "nope".into()
            }
        );
        let err = BcVm::for_name(&m, &bc, "main", &[Value::Int(1)])
            .err()
            .unwrap();
        assert!(matches!(
            err,
            ExecError::ArityMismatch {
                expected: 0,
                got: 1,
                ..
            }
        ));
    }
}
