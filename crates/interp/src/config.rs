//! Executor configuration: fault injection, STM retry discipline, the
//! waits-for watchdog and trace recording.

use crate::trace::TraceSink;
use commset_runtime::{BackoffPolicy, FaultPlan};

/// Which shared-world implementation the real-thread executor uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorldMode {
    /// Sharded when the registry declares slot bindings (the workloads
    /// that describe their footprints get the scalable world), single
    /// mutex otherwise. The default.
    #[default]
    Auto,
    /// Always the single `Mutex<World>` — the historical behavior, kept
    /// as the baseline the bench harness compares against.
    SingleLock,
    /// Always the sharded world; unbound intrinsics take the whole-world
    /// slow path.
    Sharded,
    /// CCD-style delta privatization on top of the sharded world: calls
    /// whose entire slot footprint carries a declared merge operator run
    /// against per-worker delta buffers (no shard lock, no STM) and are
    /// coalesced deterministically at the section barrier. Calls without
    /// full merge coverage — and every call in a pipeline section, where
    /// cross-worker queues carry handles between stages — behave exactly
    /// as [`WorldMode::Sharded`]. Never chosen by [`WorldMode::Auto`];
    /// opting in requires merge declarations in the registry.
    Deltas,
}

/// Which interpretation engine the executors drive each worker with.
///
/// Both engines honor the same resumable `step()` contract and produce
/// identical results, watch events and dynamic errors; they differ in how
/// much host work one retired instruction costs, which the cost model
/// reflects as [`commset_sim::CostModel::interp_penalty`] on modeled
/// program work under [`Engine::TreeWalk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The compiled bytecode backend ([`crate::bytecode`]) unless a run
    /// opts out. The default.
    #[default]
    Auto,
    /// The original tree-walk VM over the CFG IR ([`crate::vm`]), kept as
    /// the semantic reference and the slow baseline the bench harness
    /// compares against.
    TreeWalk,
    /// The flat register bytecode backend with fused superinstructions
    /// and inline-cached intrinsic call sites.
    Bytecode,
}

impl Engine {
    /// Resolves [`Engine::Auto`] to the concrete engine it selects.
    pub fn resolved(self) -> Engine {
        match self {
            Engine::Auto | Engine::Bytecode => Engine::Bytecode,
            Engine::TreeWalk => Engine::TreeWalk,
        }
    }
}

/// Knobs shared by the simulated and real-thread executors.
///
/// The default configuration injects no faults, uses the default
/// [`BackoffPolicy`] for transactional retries, and keeps the watchdog on
/// (its overhead is one mutexed map update per blocking lock event).
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Adversarial schedule to inject; `FaultPlan::none()` by default.
    pub fault: FaultPlan,
    /// Transactional retry discipline (backoff + starvation fallback
    /// threshold). The simulated executor uses `max_aborts` to decide when
    /// a modeled transaction escalates to the rank-0 global lock.
    pub backoff: BackoffPolicy,
    /// Run the waits-for-graph watchdog; on by default.
    pub watchdog: bool,
    /// When set, the executors record commutative-region entries/exits,
    /// lock and queue events and world-intrinsic calls into this sink
    /// (see [`crate::trace`]); off (`None`) by default.
    pub trace: Option<TraceSink>,
    /// Shared-world implementation for the real-thread executor
    /// ([`WorldMode::Auto`] by default).
    pub world: WorldMode,
    /// Batch size for the DSWP queue staging buffers in the real-thread
    /// executor: a producer stage publishes up to this many queued values
    /// with one release store, and a consumer refills its local buffer
    /// with up to this many per shared-queue access. `1` disables
    /// batching; default 8.
    pub queue_batch: usize,
    /// Collect span-based telemetry (region timings, lock waits vs holds
    /// keyed by rank, queue blocking, STM windows) and attach a built
    /// `commset_telemetry::RunReport` to the outcome. Off by default; when
    /// off the executors consult only this flag, so runs pay no telemetry
    /// cost.
    pub telemetry: bool,
    /// Per-section deadline in milliseconds; `None` (the default) runs
    /// unbounded. In the real-thread executor a monitor waits out the
    /// deadline, escalates to the watchdog for a diagnosis, then trips the
    /// cooperative cancel flag; the section reports
    /// [`crate::ExecError::DeadlineExceeded`]. In the simulated executor
    /// the deadline is a deterministic tick budget (1 ms = 1000 ticks).
    pub deadline_ms: Option<u64>,
    /// Interpretation engine driving each worker VM
    /// ([`Engine::Auto`] by default, which selects the bytecode backend).
    pub engine: Engine,
    /// Collect metrics-registry observability (bytecode per-opcode retire
    /// counts and hot-block ranks, lock/channel wait histograms, queue
    /// occupancy, delta merge sizes) and attach a merged
    /// `commset_telemetry::MetricsRegistry` to the outcome. Off by
    /// default; when off the executors consult only this flag, and on the
    /// DES every recording is passive (no modeled clock is touched), so
    /// simulated time is bit-identical with metrics on or off.
    pub metrics: bool,
    /// When set, the executors and the supervisor append causally-ID'd
    /// events (run → attempt → rung → section → worker) to this shared
    /// journal; off (`None`) by default.
    pub journal: Option<commset_telemetry::Journal>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            fault: FaultPlan::none(),
            backoff: BackoffPolicy::default(),
            watchdog: true,
            trace: None,
            world: WorldMode::Auto,
            queue_batch: 8,
            telemetry: false,
            deadline_ms: None,
            engine: Engine::Auto,
            metrics: false,
            journal: None,
        }
    }
}

impl ExecConfig {
    /// The default configuration (no faults, watchdog on).
    pub fn new() -> Self {
        ExecConfig::default()
    }

    /// A configuration injecting `fault`, watchdog on.
    pub fn with_fault(fault: FaultPlan) -> Self {
        ExecConfig {
            fault,
            ..Default::default()
        }
    }

    /// A configuration recording into `trace`, no faults, watchdog on.
    pub fn with_trace(trace: TraceSink) -> Self {
        ExecConfig {
            trace: Some(trace),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quiet_and_watched() {
        let c = ExecConfig::new();
        assert!(c.fault.is_none());
        assert!(c.watchdog);
        assert!(c.backoff.max_aborts > 0);
        assert_eq!(c.world, WorldMode::Auto);
        assert!(c.queue_batch >= 1);
        assert!(!c.telemetry, "telemetry must be opt-in");
        assert!(!c.metrics, "the metrics registry must be opt-in");
        assert!(c.journal.is_none(), "the event journal must be opt-in");
        assert!(c.deadline_ms.is_none(), "deadlines must be opt-in");
        assert_eq!(c.engine, Engine::Auto);
        assert_eq!(
            c.engine.resolved(),
            Engine::Bytecode,
            "Auto selects the compiled backend"
        );
    }
}
