//! Executor configuration: fault injection, STM retry discipline, the
//! waits-for watchdog and trace recording.

use crate::trace::TraceSink;
use commset_runtime::{BackoffPolicy, FaultPlan};

/// Knobs shared by the simulated and real-thread executors.
///
/// The default configuration injects no faults, uses the default
/// [`BackoffPolicy`] for transactional retries, and keeps the watchdog on
/// (its overhead is one mutexed map update per blocking lock event).
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Adversarial schedule to inject; `FaultPlan::none()` by default.
    pub fault: FaultPlan,
    /// Transactional retry discipline (backoff + starvation fallback
    /// threshold). The simulated executor uses `max_aborts` to decide when
    /// a modeled transaction escalates to the rank-0 global lock.
    pub backoff: BackoffPolicy,
    /// Run the waits-for-graph watchdog; on by default.
    pub watchdog: bool,
    /// When set, the executors record commutative-region entries/exits,
    /// lock and queue events and world-intrinsic calls into this sink
    /// (see [`crate::trace`]); off (`None`) by default.
    pub trace: Option<TraceSink>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            fault: FaultPlan::none(),
            backoff: BackoffPolicy::default(),
            watchdog: true,
            trace: None,
        }
    }
}

impl ExecConfig {
    /// The default configuration (no faults, watchdog on).
    pub fn new() -> Self {
        ExecConfig::default()
    }

    /// A configuration injecting `fault`, watchdog on.
    pub fn with_fault(fault: FaultPlan) -> Self {
        ExecConfig {
            fault,
            ..Default::default()
        }
    }

    /// A configuration recording into `trace`, no faults, watchdog on.
    pub fn with_trace(trace: TraceSink) -> Self {
        ExecConfig {
            trace: Some(trace),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quiet_and_watched() {
        let c = ExecConfig::new();
        assert!(c.fault.is_none());
        assert!(c.watchdog);
        assert!(c.backoff.max_aborts > 0);
    }
}
