//! The engine-dispatch layer: one worker VM that is either the tree-walk
//! interpreter or the compiled bytecode machine.
//!
//! Executors decide the engine once per run (from
//! [`ExecConfig::engine`](crate::config::ExecConfig::engine)), compile the
//! module to a [`BcModule`] when the bytecode backend is selected, and
//! construct every worker through [`EngineVm::for_name`]. Passing
//! `Some(&bc)` selects the compiled machine; `None` the tree-walk one —
//! so the borrow of the compiled artifact and the engine choice cannot
//! drift apart.
//!
//! Both variants honor the identical resumable contract
//! ([`StepOutcome`], `resolve_special`, `retry_special_later`, watch
//! events), so the executors stay engine-agnostic beyond construction and
//! one cost multiplier: [`program_cost_factor`] returns the dispatch
//! premium the tree-walk engine pays on modeled *program* work
//! (instruction ticks, intrinsic base/extra cost). Substrate costs —
//! locks, queues, transactions, spawns — model the shared runtime, not
//! the interpreter, and are never scaled.

use crate::bytecode::{BcModule, BcVm};
use crate::config::Engine;
use crate::error::ExecError;
use crate::vm::{CallEvent, GlobalMem, StepOutcome, Vm};
use commset_ir::Module;
use commset_runtime::Value;
use commset_sim::CostModel;

/// Compiles the module when `engine` resolves to the bytecode backend.
///
/// The returned artifact is threaded to [`EngineVm::for_name`] as
/// `Option<&BcModule>`; `None` (tree-walk) skips compilation entirely.
pub fn prepare_engine(module: &Module, engine: Engine) -> Option<BcModule> {
    match engine.resolved() {
        Engine::TreeWalk => None,
        _ => Some(BcModule::compile(module)),
    }
}

/// The multiplier `engine` pays on modeled program work (instruction
/// ticks and intrinsic base/extra cost) relative to the compiled
/// backend. `CostModel::interp_penalty` for the tree-walk engine, 1 for
/// bytecode.
pub fn program_cost_factor(engine: Engine, cm: &CostModel) -> u64 {
    match engine.resolved() {
        Engine::TreeWalk => cm.interp_penalty.max(1),
        _ => 1,
    }
}

/// A worker VM of either engine. Every method delegates; the two arms
/// are behaviorally identical (same results, same dynamic errors, same
/// watch events, bit-identical retired cost).
#[derive(Debug)]
pub enum EngineVm<'m> {
    /// The tree-walk interpreter over the CFG IR.
    Tree(Vm<'m>),
    /// The compiled bytecode machine.
    Bc(BcVm<'m>),
}

impl<'m> EngineVm<'m> {
    /// Creates a worker for `name(args...)` on the engine implied by
    /// `bc`: `Some` runs the compiled module, `None` the tree-walk VM.
    ///
    /// # Errors
    ///
    /// [`ExecError::UnknownFunction`] / [`ExecError::ArityMismatch`], as
    /// the underlying constructors.
    pub fn for_name(
        module: &'m Module,
        bc: Option<&'m BcModule>,
        name: &str,
        args: &[Value],
    ) -> Result<Self, ExecError> {
        Ok(match bc {
            Some(bc) => EngineVm::Bc(BcVm::for_name(module, bc, name, args)?),
            None => EngineVm::Tree(Vm::for_name(module, name, args)?),
        })
    }

    /// True once the entry function has returned.
    pub fn is_finished(&self) -> bool {
        match self {
            EngineVm::Tree(vm) => vm.is_finished(),
            EngineVm::Bc(vm) => vm.is_finished(),
        }
    }

    /// See [`Vm::watch_calls`].
    pub fn watch_calls<'a>(&mut self, funcs: impl IntoIterator<Item = &'a str>) {
        match self {
            EngineVm::Tree(vm) => vm.watch_calls(funcs),
            EngineVm::Bc(vm) => vm.watch_calls(funcs),
        }
    }

    /// See [`Vm::watch_calls_matching`].
    pub fn watch_calls_matching(&mut self, prefix: &str) {
        match self {
            EngineVm::Tree(vm) => vm.watch_calls_matching(prefix),
            EngineVm::Bc(vm) => vm.watch_calls_matching(prefix),
        }
    }

    /// See [`Vm::drain_call_events`].
    pub fn drain_call_events(&mut self) -> Vec<CallEvent> {
        match self {
            EngineVm::Tree(vm) => vm.drain_call_events(),
            EngineVm::Bc(vm) => vm.drain_call_events(),
        }
    }

    /// See [`Vm::watched_depth`].
    pub fn watched_depth(&self) -> usize {
        match self {
            EngineVm::Tree(vm) => vm.watched_depth(),
            EngineVm::Bc(vm) => vm.watched_depth(),
        }
    }

    /// See [`Vm::current_function`].
    pub fn current_function(&self) -> &str {
        match self {
            EngineVm::Tree(vm) => vm.current_function(),
            EngineVm::Bc(vm) => vm.current_function(),
        }
    }

    /// The compiled-engine `(function id, op offset)` the next step will
    /// retire (see [`BcVm::site`]); `None` on the tree-walk engine (the
    /// metrics registry's opcode/hot-block attribution is a property of
    /// the compiled form) or once finished.
    pub fn bc_site(&self) -> Option<(u32, u32)> {
        match self {
            EngineVm::Tree(_) => None,
            EngineVm::Bc(vm) => vm.site(),
        }
    }

    /// See [`Vm::resolve_special`].
    pub fn resolve_special(&mut self, value: Value) {
        match self {
            EngineVm::Tree(vm) => vm.resolve_special(value),
            EngineVm::Bc(vm) => vm.resolve_special(value),
        }
    }

    /// See [`Vm::retry_special_later`].
    pub fn retry_special_later(&mut self) {
        match self {
            EngineVm::Tree(vm) => vm.retry_special_later(),
            EngineVm::Bc(vm) => vm.retry_special_later(),
        }
    }

    /// See [`Vm::step`].
    ///
    /// # Errors
    ///
    /// Dynamic errors ([`ExecError`]) exactly as the underlying engine —
    /// both produce identical payloads on the same program point.
    pub fn step(&mut self, globals: &mut dyn GlobalMem) -> Result<StepOutcome, ExecError> {
        match self {
            EngineVm::Tree(vm) => vm.step(globals),
            EngineVm::Bc(vm) => vm.step(globals),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_is_one_for_the_compiled_backend() {
        let cm = CostModel::default();
        assert_eq!(program_cost_factor(Engine::Bytecode, &cm), 1);
        assert_eq!(program_cost_factor(Engine::Auto, &cm), 1);
        assert_eq!(
            program_cost_factor(Engine::TreeWalk, &cm),
            cm.interp_penalty
        );
    }

    #[test]
    fn prepare_compiles_only_when_needed() {
        let unit = commset_lang::compile_unit("int main() { return 4; }").unwrap();
        let m =
            commset_ir::lower_program(&unit.program, commset_ir::IntrinsicTable::new()).unwrap();
        assert!(prepare_engine(&m, Engine::TreeWalk).is_none());
        let bc = prepare_engine(&m, Engine::Auto).expect("auto compiles");
        let mut vm = EngineVm::for_name(&m, Some(&bc), "main", &[]).unwrap();
        let mut g = crate::globals::PlainGlobals::new(&m);
        loop {
            if let StepOutcome::Finished(v) = vm.step(&mut g).unwrap() {
                assert_eq!(v, Some(Value::Int(4)));
                break;
            }
        }
    }
}
