//! Structured execution errors.
//!
//! Dynamic errors that the Cmm type system cannot rule out (division by
//! zero, out-of-bounds indexing), executor-contract violations (unknown
//! sections or queues), and parallel-runtime failures (a crashed worker, a
//! detected deadlock) all surface as [`ExecError`] values instead of
//! panics. Every variant carries enough source context — the function on
//! top of the VM stack, the offending index or section — for a diagnostic
//! a user can act on, and the process hosting the executor survives.

/// Why an execution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Integer division by zero.
    DivisionByZero {
        /// Function executing when the division ran.
        func: String,
    },
    /// Integer remainder by zero.
    RemainderByZero {
        /// Function executing when the remainder ran.
        func: String,
    },
    /// Array index outside the array's bounds.
    IndexOutOfBounds {
        /// Function executing the access.
        func: String,
        /// The offending index.
        index: i64,
        /// The array's length.
        len: usize,
        /// True when the array is a global.
        global: bool,
    },
    /// An operation applied to operands of the wrong type.
    TypeError {
        /// Function executing when the operation ran.
        func: String,
        /// What went wrong.
        detail: String,
    },
    /// The requested entry function does not exist in the module.
    UnknownFunction {
        /// The missing name.
        name: String,
    },
    /// A call supplied the wrong number of arguments.
    ArityMismatch {
        /// The callee.
        func: String,
        /// Declared parameter count.
        expected: usize,
        /// Arguments supplied.
        got: usize,
    },
    /// `__par_invoke` named a section with no plan.
    UnknownSection {
        /// The section id.
        section: i64,
    },
    /// A queue operation named an id absent from the plan.
    UnknownQueue {
        /// The queue id.
        id: i64,
    },
    /// A worker executed `__par_invoke` (nested sections are unsupported).
    NestedParallelSection,
    /// A sequential program executed a parallel-runtime intrinsic.
    ParallelIntrinsicInSequential {
        /// The intrinsic name.
        name: String,
    },
    /// `__tx_commit` without a matching `__tx_begin`.
    TxCommitWithoutBegin,
    /// A worker thread failed (dynamic error or contained panic).
    WorkerFailed {
        /// The worker's stage function.
        stage: String,
        /// Human-readable cause (an [`ExecError`] rendering or a panic
        /// payload).
        cause: String,
    },
    /// A worker was canceled because a sibling failed first.
    Canceled {
        /// The worker's stage function.
        stage: String,
    },
    /// No worker is runnable but the section has not finished.
    Deadlock {
        /// The section id.
        section: i64,
        /// Per-worker status descriptions.
        waiting: Vec<String>,
    },
    /// The waits-for watchdog found a cycle or rank-order violation.
    WatchdogViolation {
        /// The section id.
        section: i64,
        /// What the watchdog saw.
        detail: String,
    },
    /// A parallel section overran its configured deadline and was
    /// cooperatively canceled (watchdog escalation first, then the shared
    /// cancel flag). In the simulated executor the deadline is a
    /// deterministic tick budget (1 ms = 1000 ticks).
    DeadlineExceeded {
        /// The section id.
        section: i64,
        /// The configured deadline in milliseconds.
        deadline_ms: u64,
    },
}

impl ExecError {
    /// True for failure modes that depend on scheduling/timing — a
    /// different interleaving (or a lower rung of the degradation ladder)
    /// may succeed, so the supervisor retries them. Deterministic errors
    /// (dynamic errors the program will hit under *any* schedule) are not
    /// retried at the same rung.
    pub fn is_transient(&self) -> bool {
        match self {
            ExecError::Deadlock { .. }
            | ExecError::WatchdogViolation { .. }
            | ExecError::DeadlineExceeded { .. }
            | ExecError::Canceled { .. } => true,
            ExecError::WorkerFailed { cause, .. } => !Self::deterministic_cause(cause),
            _ => false,
        }
    }

    /// Does a `WorkerFailed` cause string render a deterministic dynamic
    /// error (as produced by [`ExecError`]'s `Display` or a typed
    /// `SlotError` payload), rather than a raw panic?
    fn deterministic_cause(cause: &str) -> bool {
        const DETERMINISTIC: &[&str] = &[
            "division by zero",
            "remainder by zero",
            "out of bounds",
            "type error in",
            "no function `",
            "arity mismatch",
            "unknown queue id",
            "no parallel plan for section",
            "nested parallel sections",
            "__tx_commit without",
            "world slot `",
        ];
        DETERMINISTIC.iter().any(|m| cause.contains(m))
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::DivisionByZero { func } => {
                write!(f, "division by zero in `{func}`")
            }
            ExecError::RemainderByZero { func } => {
                write!(f, "remainder by zero in `{func}`")
            }
            ExecError::IndexOutOfBounds {
                func,
                index,
                len,
                global,
            } => {
                let kind = if *global { "global array" } else { "array" };
                write!(
                    f,
                    "{kind} index {index} out of bounds (len {len}) in `{func}`"
                )
            }
            ExecError::TypeError { func, detail } => {
                write!(f, "type error in `{func}`: {detail}")
            }
            ExecError::UnknownFunction { name } => {
                write!(f, "no function `{name}` in module")
            }
            ExecError::ArityMismatch {
                func,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch calling `{func}`: expected {expected} argument(s), got {got}"
            ),
            ExecError::UnknownSection { section } => {
                write!(f, "no parallel plan for section {section}")
            }
            ExecError::UnknownQueue { id } => write!(f, "unknown queue id {id}"),
            ExecError::NestedParallelSection => {
                write!(f, "nested parallel sections are not supported")
            }
            ExecError::ParallelIntrinsicInSequential { name } => {
                write!(f, "sequential program called parallel intrinsic `{name}`")
            }
            ExecError::TxCommitWithoutBegin => {
                write!(f, "__tx_commit without a matching __tx_begin")
            }
            ExecError::WorkerFailed { stage, cause } => {
                write!(f, "worker `{stage}` failed: {cause}")
            }
            ExecError::Canceled { stage } => {
                write!(f, "worker `{stage}` canceled after a sibling failure")
            }
            ExecError::Deadlock { section, waiting } => {
                write!(f, "deadlock in section {section}: [{}]", waiting.join(", "))
            }
            ExecError::WatchdogViolation { section, detail } => {
                write!(f, "watchdog violation in section {section}: {detail}")
            }
            ExecError::DeadlineExceeded {
                section,
                deadline_ms,
            } => {
                write!(
                    f,
                    "section {section} exceeded its {deadline_ms} ms deadline and was canceled"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_source_context() {
        let e = ExecError::DivisionByZero {
            func: "main".into(),
        };
        assert_eq!(e.to_string(), "division by zero in `main`");
        let e = ExecError::IndexOutOfBounds {
            func: "kernel".into(),
            index: 9,
            len: 4,
            global: true,
        };
        assert!(e.to_string().contains("global array index 9"));
        assert!(e.to_string().contains("kernel"));
        let e = ExecError::WorkerFailed {
            stage: "__commset_worker_0".into(),
            cause: "division by zero in `f`".into(),
        };
        assert!(e.to_string().contains("__commset_worker_0"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(ExecError::NestedParallelSection);
        assert!(e.to_string().contains("nested"));
    }

    #[test]
    fn transient_classification_separates_schedule_from_program_errors() {
        // Schedule-dependent: retryable.
        assert!(ExecError::Deadlock {
            section: 0,
            waiting: vec![]
        }
        .is_transient());
        assert!(ExecError::DeadlineExceeded {
            section: 0,
            deadline_ms: 5
        }
        .is_transient());
        assert!(ExecError::Canceled { stage: "w".into() }.is_transient());
        assert!(ExecError::WatchdogViolation {
            section: 1,
            detail: "cycle".into()
        }
        .is_transient());
        // A contained raw panic could be schedule-dependent: retryable.
        assert!(ExecError::WorkerFailed {
            stage: "w".into(),
            cause: "injected shard poison (fault plan)".into()
        }
        .is_transient());
        // Deterministic dynamic errors: not retryable at the same rung.
        assert!(!ExecError::DivisionByZero { func: "f".into() }.is_transient());
        assert!(!ExecError::WorkerFailed {
            stage: "w".into(),
            cause: "division by zero in `f`".into()
        }
        .is_transient());
        assert!(!ExecError::WorkerFailed {
            stage: "w".into(),
            cause: "world slot `acc` is not installed".into()
        }
        .is_transient());
    }
}
