//! Global-memory backends.

use crate::vm::{GlobalMem, OobError};
use commset_ir::{GlobalId, Module};
use commset_lang::ast::Type;
use commset_runtime::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn init_value(g: &commset_ir::repr::GlobalDecl) -> Value {
    match (g.init, g.ty) {
        (Some(commset_ir::Const::Int(v)), _) => Value::Int(v),
        (Some(commset_ir::Const::Float(v)), _) => Value::Float(v),
        (None, Type::Float) => Value::Float(0.0),
        (None, _) => Value::Int(0),
    }
}

/// Plain single-threaded globals for the sequential and simulated
/// executors.
#[derive(Debug)]
pub struct PlainGlobals {
    scalars: Vec<Value>,
    arrays: Vec<Vec<Value>>,
}

impl PlainGlobals {
    /// Allocates and initializes globals for `module`.
    pub fn new(module: &Module) -> Self {
        let mut scalars = Vec::new();
        let mut arrays = Vec::new();
        for g in &module.globals {
            match g.len {
                None => {
                    scalars.push(init_value(g));
                    arrays.push(Vec::new());
                }
                Some(n) => {
                    scalars.push(Value::Int(0));
                    arrays.push(vec![
                        match g.ty {
                            Type::Float => Value::Float(0.0),
                            _ => Value::Int(0),
                        };
                        n
                    ]);
                }
            }
        }
        PlainGlobals { scalars, arrays }
    }
}

impl GlobalMem for PlainGlobals {
    fn load(&mut self, g: GlobalId) -> Value {
        self.scalars[g.0 as usize]
    }

    fn store(&mut self, g: GlobalId, v: Value) {
        self.scalars[g.0 as usize] = v;
    }

    fn load_elem(&mut self, g: GlobalId, idx: i64) -> Result<Value, OobError> {
        let arr = &self.arrays[g.0 as usize];
        usize::try_from(idx)
            .ok()
            .and_then(|i| arr.get(i))
            .copied()
            .ok_or(OobError {
                index: idx,
                len: arr.len(),
            })
    }

    fn store_elem(&mut self, g: GlobalId, idx: i64, v: Value) -> Result<(), OobError> {
        let arr = &mut self.arrays[g.0 as usize];
        let len = arr.len();
        match usize::try_from(idx).ok().and_then(|i| arr.get_mut(i)) {
            Some(slot) => {
                *slot = v;
                Ok(())
            }
            None => Err(OobError { index: idx, len }),
        }
    }
}

/// Lock-free atomic globals shared by the thread executor's workers.
///
/// Every cell is a word-sized atomic; the float/int interpretation comes
/// from the module's static global types. Races on individual globals are
/// prevented by the compiler-inserted synchronization (that is precisely
/// the property the thread executor validates), and would at worst produce
/// stale values, never unsoundness.
#[derive(Debug)]
pub struct AtomicGlobals {
    scalars: Vec<AtomicU64>,
    arrays: Vec<Vec<AtomicU64>>,
    is_float: Vec<bool>,
}

impl AtomicGlobals {
    /// Allocates and initializes shared globals for `module`.
    pub fn new(module: &Module) -> Arc<Self> {
        let mut scalars = Vec::new();
        let mut arrays = Vec::new();
        let mut is_float = Vec::new();
        for g in &module.globals {
            is_float.push(g.ty == Type::Float);
            match g.len {
                None => {
                    scalars.push(AtomicU64::new(init_value(g).to_bits()));
                    arrays.push(Vec::new());
                }
                Some(n) => {
                    let zero = match g.ty {
                        Type::Float => Value::Float(0.0),
                        _ => Value::Int(0),
                    };
                    scalars.push(AtomicU64::new(0));
                    arrays.push((0..n).map(|_| AtomicU64::new(zero.to_bits())).collect());
                }
            }
        }
        Arc::new(AtomicGlobals {
            scalars,
            arrays,
            is_float,
        })
    }
}

/// Per-thread adapter giving a worker mutable-reference access to the
/// shared atomic globals.
#[derive(Debug, Clone)]
pub struct SharedGlobals {
    inner: Arc<AtomicGlobals>,
}

impl SharedGlobals {
    /// Wraps the shared store.
    pub fn new(inner: Arc<AtomicGlobals>) -> Self {
        SharedGlobals { inner }
    }
}

impl GlobalMem for SharedGlobals {
    fn load(&mut self, g: GlobalId) -> Value {
        let i = g.0 as usize;
        Value::from_bits(
            self.inner.scalars[i].load(Ordering::SeqCst),
            self.inner.is_float[i],
        )
    }

    fn store(&mut self, g: GlobalId, v: Value) {
        self.inner.scalars[g.0 as usize].store(v.to_bits(), Ordering::SeqCst);
    }

    fn load_elem(&mut self, g: GlobalId, idx: i64) -> Result<Value, OobError> {
        let i = g.0 as usize;
        let arr = &self.inner.arrays[i];
        let cell = usize::try_from(idx)
            .ok()
            .and_then(|ix| arr.get(ix))
            .ok_or(OobError {
                index: idx,
                len: arr.len(),
            })?;
        Ok(Value::from_bits(
            cell.load(Ordering::SeqCst),
            self.inner.is_float[i],
        ))
    }

    fn store_elem(&mut self, g: GlobalId, idx: i64, v: Value) -> Result<(), OobError> {
        let arr = &self.inner.arrays[g.0 as usize];
        let cell = usize::try_from(idx)
            .ok()
            .and_then(|ix| arr.get(ix))
            .ok_or(OobError {
                index: idx,
                len: arr.len(),
            })?;
        cell.store(v.to_bits(), Ordering::SeqCst);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commset_ir::{lower_program, IntrinsicTable};

    fn module(src: &str) -> Module {
        let unit = commset_lang::compile_unit(src).unwrap();
        lower_program(&unit.program, IntrinsicTable::new()).unwrap()
    }

    #[test]
    fn plain_globals_initialize() {
        let m = module("int g = 7; float f = 1.5; int a[3]; int main() { return 0; }");
        let mut pg = PlainGlobals::new(&m);
        assert_eq!(pg.load(m.global_id("g").unwrap()), Value::Int(7));
        assert_eq!(pg.load(m.global_id("f").unwrap()), Value::Float(1.5));
        let a = m.global_id("a").unwrap();
        assert_eq!(pg.load_elem(a, 2).unwrap(), Value::Int(0));
        pg.store_elem(a, 2, Value::Int(9)).unwrap();
        assert_eq!(pg.load_elem(a, 2).unwrap(), Value::Int(9));
        let oob = pg.load_elem(a, 5).unwrap_err();
        assert_eq!((oob.index, oob.len), (5, 3));
        let oob = pg.store_elem(a, -1, Value::Int(1)).unwrap_err();
        assert_eq!((oob.index, oob.len), (-1, 3));
    }

    #[test]
    fn atomic_globals_round_trip_floats() {
        let m = module("float f = 2.5; int main() { return 0; }");
        let shared = AtomicGlobals::new(&m);
        let mut a = SharedGlobals::new(Arc::clone(&shared));
        let mut b = SharedGlobals::new(shared);
        let f = m.global_id("f").unwrap();
        assert_eq!(a.load(f), Value::Float(2.5));
        a.store(f, Value::Float(-3.25));
        assert_eq!(b.load(f), Value::Float(-3.25));
    }
}
