//! # commset-interp
//!
//! Execution of compiled Cmm modules.
//!
//! * [`vm`] — a *resumable* virtual machine over the IR: `step()` retires
//!   one instruction; intrinsic calls surface as pending *special* events
//!   the driving executor resolves. The same VM backs every executor.
//! * [`bytecode`] — the compiled execution backend: each function is
//!   lowered once to flat register bytecode (pre-resolved block offsets,
//!   fused superinstructions, inline-cached intrinsic call sites) and run
//!   by [`bytecode::BcVm`], which honors the same resumable `step()`
//!   contract as the tree-walk VM. Selected per run via
//!   [`config::Engine`].
//! * [`globals`] — global-memory backends (plain for single-threaded
//!   executors, atomic for the thread executor).
//! * [`seq`] — the sequential executor (the evaluation baseline), with
//!   simulated-time accounting.
//! * [`sim_exec`] — the simulated-parallel executor: a discrete-event
//!   scheduler over one VM per worker thread, using `commset-sim`'s lock,
//!   queue and TM models. This is what regenerates the paper's Figure 6 on
//!   a single-core host.
//! * [`thread_exec`] — the real-thread executor (OS threads, the runtime's
//!   lock-free queues and raw locks), used by the correctness tests.
//! * [`error`] — structured [`error::ExecError`] diagnostics: dynamic
//!   errors, executor-contract violations and parallel-runtime failures
//!   surface as `Result::Err`, never as panics.
//! * [`config`] — the shared [`config::ExecConfig`] knob set (fault
//!   injection, STM retry discipline, waits-for watchdog, trace sink,
//!   telemetry).
//! * [`supervise`] — the self-healing execution supervisor: per-section
//!   deadlines, transient-failure retry with backoff, a degradation ladder
//!   (sharded → single lock → thread halving → sequential) with
//!   oracle-validated degraded results, and replayable failure bundles.
//! * [`bundle`] — the `.repro.json` failure-bundle format (and the small
//!   JSON reader it needs), consumed by `commsetc replay`.
//! * [`trace`] — deterministic execution-trace recording
//!   ([`trace::TraceSink`]): region entries/exits, lock ranks, queue
//!   operations and world-intrinsic calls, consumed by the
//!   commutativity checker and the differential tests.
//!
//! Both parallel executors also support span-based profiling: with
//! `ExecConfig::telemetry` on, the outcome carries a
//! [`commset_telemetry::RunReport`] (stage balance, lock contention by
//! rank, queue traffic, unified counters) built from monotonic-nanosecond
//! spans on real threads and deterministic ticks under the DES.

pub mod bundle;
pub mod bytecode;
pub mod config;
pub mod engine;
pub mod error;
pub mod globals;
pub mod metrics;
pub mod seq;
pub mod sim_exec;
pub mod supervise;
pub mod thread_exec;
pub mod trace;
pub mod vm;

pub use bundle::FailureBundle;
pub use bytecode::{print_bc_function, print_bc_module, BcModule, BcVm};
pub use config::{Engine, ExecConfig, WorldMode};
pub use engine::{prepare_engine, program_cost_factor, EngineVm};
pub use error::ExecError;
pub use metrics::MetricsLocal;
pub use seq::{run_sequential, run_sequential_with};
pub use sim_exec::{run_simulated, run_simulated_with, SimOutcome, SimStats};
pub use supervise::{
    run_supervised, Backend, CompiledProgram, ProgramDesc, ProgramSource, RecoveryPolicy,
    SupervisedFailure, SupervisedOutcome, Validator,
};
pub use thread_exec::{run_threaded, run_threaded_with, ThreadOutcome, ThreadStats};
pub use trace::{TraceEvent, TraceRecord, TraceSink};
pub use vm::{CallEvent, OobError, StepOutcome, Vm};
