//! Per-worker local metrics accumulation for the executors.
//!
//! [`MetricsLocal`] is the hot-path half of the metrics layer: a flat
//! opcode-retire array plus a small site→cost map that a worker updates
//! privately while stepping (no shared state, no locks, no allocation on
//! the common path), then resolves to names and folds into a
//! [`MetricsRegistry`] exactly once at worker exit. On the DES the
//! executor accumulates one of these inline; on real threads each worker
//! owns one and publishes through a `MetricsSink`.

use crate::bytecode::{BcModule, OPCODE_NAMES};
use commset_ir::Module;
use commset_telemetry::MetricsRegistry;
use std::collections::HashMap;

/// Privately-owned retire counters for one worker: per-opcode retires
/// and per-`(function, op offset)` retired cost. Attribution to source
/// block names happens once, at publication.
#[derive(Debug, Clone, Default)]
pub struct MetricsLocal {
    opcodes: [u64; OPCODE_NAMES.len()],
    sites: HashMap<(u32, u32), u64>,
}

impl MetricsLocal {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one retired op: `site` as sampled from
    /// `EngineVm::bc_site()` *before* the step, `cost` as reported by the
    /// step outcome.
    pub fn retire(&mut self, bc: &BcModule, site: (u32, u32), cost: u64) {
        let (func, pc) = site;
        let bf = &bc.funcs[func as usize];
        self.opcodes[bf.ops[pc as usize].kind()] += 1;
        *self.sites.entry(site).or_insert(0) += cost;
    }

    /// True when nothing has been retired.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty() && self.opcodes.iter().all(|n| *n == 0)
    }

    /// Resolves sites to `func:bbN` block names and folds everything
    /// into `out`.
    pub fn publish(&self, module: &Module, bc: &BcModule, out: &mut MetricsRegistry) {
        for (kind, n) in self.opcodes.iter().enumerate() {
            out.record_opcode(OPCODE_NAMES[kind], *n);
        }
        for ((func, pc), cost) in &self.sites {
            let bf = &bc.funcs[*func as usize];
            let block = bf.block_of(*pc);
            let name = module
                .funcs
                .get(*func as usize)
                .map_or(bf.name.as_str(), |f| f.name.as_str());
            out.record_block(&format!("{name}:bb{block}"), *cost);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::BcVm;
    use crate::globals::PlainGlobals;
    use crate::vm::StepOutcome;

    #[test]
    fn retires_attribute_to_opcodes_and_blocks() {
        let unit = commset_lang::compile_unit(
            "int main() { int s; int i; s = 0; for (i = 0; i < 4; i = i + 1) { s = s + i; } return s; }",
        )
        .unwrap();
        let m =
            commset_ir::lower_program(&unit.program, commset_ir::IntrinsicTable::new()).unwrap();
        let bc = BcModule::compile(&m);
        let mut vm = BcVm::for_name(&m, &bc, "main", &[]).unwrap();
        let mut g = PlainGlobals::new(&m);
        let mut local = MetricsLocal::new();
        loop {
            let site = vm.site().expect("running");
            match vm.step(&mut g).unwrap() {
                StepOutcome::Ran { cost } => local.retire(&bc, site, cost),
                StepOutcome::Finished(v) => {
                    assert_eq!(v, Some(commset_runtime::Value::Int(6)));
                    break;
                }
                StepOutcome::Special(_) => unreachable!("no intrinsics"),
            }
        }
        assert!(!local.is_empty());
        let mut reg = MetricsRegistry::new();
        local.publish(&m, &bc, &mut reg);
        // The loop body block dominates retired cost; every block name
        // carries the function name.
        assert!(reg.blocks().keys().all(|k| k.starts_with("main:bb")));
        let total_ops: u64 = reg.opcodes().values().sum();
        assert!(total_ops > 4, "loop retired several ops: {total_ops}");
    }
}
