//! The sequential executor — the evaluation baseline.

use crate::config::Engine;
use crate::engine::{prepare_engine, program_cost_factor, EngineVm};
use crate::error::ExecError;
use crate::globals::PlainGlobals;
use crate::vm::StepOutcome;
use commset_ir::Module;
use commset_runtime::{Registry, Value, World};
use commset_sim::CostModel;

/// Result of a sequential run.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqOutcome {
    /// `main`'s return value.
    pub result: Option<Value>,
    /// Total simulated time.
    pub sim_time: u64,
    /// Instructions retired.
    pub insts: u64,
}

/// Runs `entry` to completion on one simulated core.
///
/// # Errors
///
/// Returns [`ExecError::ParallelIntrinsicInSequential`] if the program
/// executes parallel-runtime intrinsics (`__par_invoke` etc.) — sequential
/// programs must be untransformed — and propagates any dynamic error from
/// [`Vm::step`] (division by zero, out-of-bounds indexing, ...).
pub fn run_sequential(
    module: &Module,
    registry: &Registry,
    world: &mut World,
    cm: &CostModel,
    entry: &str,
) -> Result<SeqOutcome, ExecError> {
    run_sequential_with(module, registry, world, cm, entry, Engine::Auto)
}

/// [`run_sequential`] with an explicit interpretation engine.
///
/// Program work (instruction ticks, intrinsic base/extra cost) is scaled
/// by the engine's dispatch factor: the tree-walk engine pays
/// `CostModel::interp_penalty`, the compiled backend pays ×1.
///
/// # Errors
///
/// As [`run_sequential`].
pub fn run_sequential_with(
    module: &Module,
    registry: &Registry,
    world: &mut World,
    cm: &CostModel,
    entry: &str,
    engine: Engine,
) -> Result<SeqOutcome, ExecError> {
    let bc = prepare_engine(module, engine);
    let factor = program_cost_factor(engine, cm);
    let mut globals = PlainGlobals::new(module);
    let mut vm = EngineVm::for_name(module, bc.as_ref(), entry, &[])?;
    let mut sim_time: u64 = 0;
    let mut insts: u64 = 0;
    loop {
        match vm.step(&mut globals)? {
            StepOutcome::Ran { cost } => {
                sim_time += factor * cost * cm.inst;
                insts += 1;
            }
            StepOutcome::Special(p) => {
                let name = module.intrinsics.name(p.intrinsic.0 as usize);
                if name.starts_with("__par")
                    || name.starts_with("__q_")
                    || name.starts_with("__lock")
                    || name.starts_with("__tx")
                {
                    return Err(ExecError::ParallelIntrinsicInSequential {
                        name: name.to_string(),
                    });
                }
                let base = module.intrinsics.sig(p.intrinsic.0 as usize).base_cost;
                let out = registry.call(name, world, &p.args);
                sim_time += factor * (base + out.extra_cost);
                vm.resolve_special(out.value);
            }
            StepOutcome::Finished(result) => {
                return Ok(SeqOutcome {
                    result,
                    sim_time,
                    insts,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commset_ir::{lower_program, IntrinsicTable};
    use commset_lang::ast::Type;
    use commset_runtime::intrinsics::IntrinsicOutcome;

    #[test]
    fn runs_program_with_world_intrinsics() {
        let mut table = IntrinsicTable::new();
        table.register("bump", vec![Type::Int], Type::Int, &[], &["CTR"], 50);
        let unit = commset_lang::compile_unit(
            "extern int bump(int by); int main() { int last = 0; for (int i = 0; i < 5; i = i + 1) { last = bump(2); } return last; }",
        )
        .unwrap();
        let module = lower_program(&unit.program, table).unwrap();
        let mut registry = Registry::new();
        registry.register("bump", |world, args| {
            let c = world.get_mut::<i64>("ctr");
            *c += args[0].as_int();
            IntrinsicOutcome::value(*c).with_cost(7)
        });
        let mut world = World::new();
        world.install("ctr", 0i64);
        let out = run_sequential(
            &module,
            &registry,
            &mut world,
            &CostModel::default(),
            "main",
        )
        .unwrap();
        assert_eq!(out.result, Some(Value::Int(10)));
        assert_eq!(*world.get::<i64>("ctr"), 10);
        // 5 calls x (50 base + 7 extra) plus instruction time.
        assert!(out.sim_time >= 5 * 57);
        assert!(out.insts > 20);
    }

    #[test]
    fn tree_walk_engine_pays_the_dispatch_premium() {
        let unit = commset_lang::compile_unit(
            "int main() { int s = 0; for (int i = 0; i < 50; i = i + 1) { s += i; } return s; }",
        )
        .unwrap();
        let module = lower_program(&unit.program, IntrinsicTable::new()).unwrap();
        let registry = Registry::new();
        let cm = CostModel::default();
        let mut w1 = World::new();
        let mut w2 = World::new();
        let fast = run_sequential_with(&module, &registry, &mut w1, &cm, "main", Engine::Bytecode)
            .unwrap();
        let slow = run_sequential_with(&module, &registry, &mut w2, &cm, "main", Engine::TreeWalk)
            .unwrap();
        assert_eq!(fast.result, slow.result);
        // A sequential run is pure program work, so the ratio is exactly
        // the calibrated dispatch penalty.
        assert_eq!(slow.sim_time, cm.interp_penalty * fast.sim_time);
        // Auto is the compiled backend: same clock as explicit Bytecode.
        let mut w3 = World::new();
        let auto = run_sequential(&module, &registry, &mut w3, &cm, "main").unwrap();
        assert_eq!(auto.sim_time, fast.sim_time);
    }

    #[test]
    fn dynamic_error_surfaces_not_panics() {
        let unit = commset_lang::compile_unit("int main() { int x = 1; int y = 0; return x / y; }")
            .unwrap();
        let module = lower_program(&unit.program, IntrinsicTable::new()).unwrap();
        let registry = Registry::new();
        let mut world = World::new();
        let err = run_sequential(
            &module,
            &registry,
            &mut world,
            &CostModel::default(),
            "main",
        )
        .unwrap_err();
        assert_eq!(
            err,
            ExecError::DivisionByZero {
                func: "main".into()
            }
        );
    }

    #[test]
    fn unknown_entry_is_an_error() {
        let unit = commset_lang::compile_unit("int main() { return 0; }").unwrap();
        let module = lower_program(&unit.program, IntrinsicTable::new()).unwrap();
        let registry = Registry::new();
        let mut world = World::new();
        let err = run_sequential(
            &module,
            &registry,
            &mut world,
            &CostModel::default(),
            "nope",
        )
        .unwrap_err();
        assert_eq!(
            err,
            ExecError::UnknownFunction {
                name: "nope".into()
            }
        );
    }
}
