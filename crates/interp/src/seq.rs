//! The sequential executor — the evaluation baseline.

use crate::error::ExecError;
use crate::globals::PlainGlobals;
use crate::vm::{StepOutcome, Vm};
use commset_ir::Module;
use commset_runtime::{Registry, Value, World};
use commset_sim::CostModel;

/// Result of a sequential run.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqOutcome {
    /// `main`'s return value.
    pub result: Option<Value>,
    /// Total simulated time.
    pub sim_time: u64,
    /// Instructions retired.
    pub insts: u64,
}

/// Runs `entry` to completion on one simulated core.
///
/// # Errors
///
/// Returns [`ExecError::ParallelIntrinsicInSequential`] if the program
/// executes parallel-runtime intrinsics (`__par_invoke` etc.) — sequential
/// programs must be untransformed — and propagates any dynamic error from
/// [`Vm::step`] (division by zero, out-of-bounds indexing, ...).
pub fn run_sequential(
    module: &Module,
    registry: &Registry,
    world: &mut World,
    cm: &CostModel,
    entry: &str,
) -> Result<SeqOutcome, ExecError> {
    let mut globals = PlainGlobals::new(module);
    let mut vm = Vm::for_name(module, entry, &[])?;
    let mut sim_time: u64 = 0;
    let mut insts: u64 = 0;
    loop {
        match vm.step(&mut globals)? {
            StepOutcome::Ran { cost } => {
                sim_time += cost * cm.inst;
                insts += 1;
            }
            StepOutcome::Special(p) => {
                let name = module.intrinsics.name(p.intrinsic.0 as usize);
                if name.starts_with("__par")
                    || name.starts_with("__q_")
                    || name.starts_with("__lock")
                    || name.starts_with("__tx")
                {
                    return Err(ExecError::ParallelIntrinsicInSequential {
                        name: name.to_string(),
                    });
                }
                let base = module.intrinsics.sig(p.intrinsic.0 as usize).base_cost;
                let out = registry.call(name, world, &p.args);
                sim_time += base + out.extra_cost;
                vm.resolve_special(out.value);
            }
            StepOutcome::Finished(result) => {
                return Ok(SeqOutcome {
                    result,
                    sim_time,
                    insts,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commset_ir::{lower_program, IntrinsicTable};
    use commset_lang::ast::Type;
    use commset_runtime::intrinsics::IntrinsicOutcome;

    #[test]
    fn runs_program_with_world_intrinsics() {
        let mut table = IntrinsicTable::new();
        table.register("bump", vec![Type::Int], Type::Int, &[], &["CTR"], 50);
        let unit = commset_lang::compile_unit(
            "extern int bump(int by); int main() { int last = 0; for (int i = 0; i < 5; i = i + 1) { last = bump(2); } return last; }",
        )
        .unwrap();
        let module = lower_program(&unit.program, table).unwrap();
        let mut registry = Registry::new();
        registry.register("bump", |world, args| {
            let c = world.get_mut::<i64>("ctr");
            *c += args[0].as_int();
            IntrinsicOutcome::value(*c).with_cost(7)
        });
        let mut world = World::new();
        world.install("ctr", 0i64);
        let out = run_sequential(
            &module,
            &registry,
            &mut world,
            &CostModel::default(),
            "main",
        )
        .unwrap();
        assert_eq!(out.result, Some(Value::Int(10)));
        assert_eq!(*world.get::<i64>("ctr"), 10);
        // 5 calls x (50 base + 7 extra) plus instruction time.
        assert!(out.sim_time >= 5 * 57);
        assert!(out.insts > 20);
    }

    #[test]
    fn dynamic_error_surfaces_not_panics() {
        let unit = commset_lang::compile_unit("int main() { int x = 1; int y = 0; return x / y; }")
            .unwrap();
        let module = lower_program(&unit.program, IntrinsicTable::new()).unwrap();
        let registry = Registry::new();
        let mut world = World::new();
        let err = run_sequential(
            &module,
            &registry,
            &mut world,
            &CostModel::default(),
            "main",
        )
        .unwrap_err();
        assert_eq!(
            err,
            ExecError::DivisionByZero {
                func: "main".into()
            }
        );
    }

    #[test]
    fn unknown_entry_is_an_error() {
        let unit = commset_lang::compile_unit("int main() { return 0; }").unwrap();
        let module = lower_program(&unit.program, IntrinsicTable::new()).unwrap();
        let registry = Registry::new();
        let mut world = World::new();
        let err = run_sequential(
            &module,
            &registry,
            &mut world,
            &CostModel::default(),
            "nope",
        )
        .unwrap_err();
        assert_eq!(
            err,
            ExecError::UnknownFunction {
                name: "nope".into()
            }
        );
    }
}
