//! The simulated-parallel executor.
//!
//! Runs `main` sequentially until `__par_invoke(section)`, then executes
//! the section's workers as virtual threads under a discrete-event
//! scheduler: each worker VM owns a clock; lock, queue and transaction
//! interactions are resolved by `commset-sim`'s contention models; the
//! scheduler always advances the minimum-clock runnable worker, so shared
//! state mutates in simulated-time order and the whole run is
//! deterministic. Speedups reported by the benchmark harness are ratios of
//! the `sim_time` produced here.
//!
//! Robustness: every dynamic error and contract violation surfaces as an
//! [`ExecError`] (no panics); [`run_simulated_with`] additionally injects
//! an adversarial [`FaultPlan`](commset_runtime::FaultPlan) schedule and
//! runs the waits-for watchdog, whose report lands in [`SimStats`].

use crate::config::{ExecConfig, WorldMode};
use crate::engine::{prepare_engine, program_cost_factor, EngineVm};
use crate::error::ExecError;
use crate::globals::PlainGlobals;
use crate::metrics::MetricsLocal;
use crate::trace::{TraceEvent, TraceSink};
use crate::vm::{PendingSpecial, StepOutcome};
use commset_ir::Module;
use commset_runtime::{
    DeltaBuffer, DeltaSnapshot, FaultInjector, FaultStats, Registry, Value, Watchdog,
    WatchdogReport, World, DELTA_POISON_MSG,
};
use commset_sim::lock::AcquireOutcome;
use commset_sim::{
    pick_min_clock, CostModel, PopOutcome, PushOutcome, SimLock, SimLockKind, SimQueue, TmModel,
};
use commset_telemetry::{
    ClockUnit, JournalEvent, MetricsRegistry, RunCounters, RunReport, SectionMeta, SpanKind,
    SpanRecord, TelemetrySink,
};
use commset_transform::{ParallelPlan, SyncMode};
use std::collections::HashMap;

/// Statistics of one simulated run.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Per-lock (set name, contention ratio).
    pub lock_contention: Vec<(String, f64)>,
    /// Transactions committed.
    pub tm_commits: u64,
    /// Transactions aborted.
    pub tm_aborts: u64,
    /// Transactions that escalated to the modeled rank-0 global lock
    /// after exhausting their optimistic retry budget.
    pub tm_fallbacks: u64,
    /// Total queue pushes.
    pub queue_pushes: u64,
    /// Pops that found an empty queue (pipeline stall indicator).
    pub queue_stalls: u64,
    /// Faults delivered by the injection plan.
    pub fault: FaultStats,
    /// Waits-for watchdog findings (merged over all sections).
    pub watchdog: WatchdogReport,
    /// Delta-privatized activity (all zero unless [`WorldMode::Deltas`]
    /// routed calls into per-worker buffers).
    pub delta: DeltaSnapshot,
}

/// Result of a simulated run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// `main`'s return value.
    pub result: Option<Value>,
    /// Total simulated time (sequential sections + parallel sections).
    pub sim_time: u64,
    /// Statistics from the parallel sections.
    pub stats: SimStats,
    /// The unified profiling report, present iff [`ExecConfig::telemetry`]
    /// was on. Timestamps are deterministic logical ticks, so the report
    /// is bit-identical across runs.
    pub telemetry: Option<RunReport>,
    /// The merged metrics registry (opcode retires, hot-block ranks,
    /// lock/channel wait histograms, queue occupancy, delta merge
    /// sizes), present iff [`ExecConfig::metrics`] was on. Recording is
    /// passive — no modeled clock is touched — so `sim_time` is
    /// bit-identical with metrics on or off.
    pub metrics: Option<MetricsRegistry>,
}

/// Run-wide metrics accumulation: a no-op (one bool check per call) when
/// the metrics registry is off. The DES is single-threaded, so one local
/// accumulator serves every virtual worker and there is no sink.
struct SimMetrics {
    on: bool,
    reg: MetricsRegistry,
    local: MetricsLocal,
}

impl SimMetrics {
    fn retire(
        &mut self,
        bc: Option<&crate::bytecode::BcModule>,
        site: Option<(u32, u32)>,
        cost: u64,
    ) {
        if self.on {
            if let (Some(bc), Some(site)) = (bc, site) {
                self.local.retire(bc, site, cost);
            }
        }
    }

    fn observe(&mut self, name: &str, v: u64) {
        if self.on {
            self.reg.observe(name, v);
        }
    }
}

/// Per-section span collection: a no-op (one bool check per call) when
/// telemetry is off.
struct SectionTelemetry {
    on: bool,
    sec: usize,
    spans: Vec<SpanRecord>,
}

impl SectionTelemetry {
    fn span(&mut self, worker: usize, start: u64, end: u64, kind: SpanKind) {
        if self.on {
            self.spans.push(SpanRecord {
                section: self.sec,
                worker,
                start,
                end,
                kind,
            });
        }
    }
}

/// Deadline conversion for the DES: [`ExecConfig::deadline_ms`] becomes a
/// deterministic tick budget (1 ms = 1000 ticks, matching the thread
/// executor's microsecond-denominated injection costs).
const TICKS_PER_MS: u64 = 1000;

#[derive(Debug, Clone, Copy, PartialEq)]
enum WStatus {
    Ready,
    BlockedPop(usize),
    BlockedPush(usize),
    BlockedLock(usize),
    Done,
}

/// Runs the transformed program under the DES with the default
/// configuration (no faults, watchdog on).
///
/// `plans` must contain one plan per `__par_invoke` section in the
/// program, keyed by its `section` field.
///
/// # Errors
///
/// Returns an [`ExecError`] on executor-contract violations (unknown
/// section or queue, deadlock, nested parallel sections) and on VM
/// dynamic errors; worker errors are wrapped as
/// [`ExecError::WorkerFailed`] naming the stage function.
pub fn run_simulated(
    module: &Module,
    registry: &Registry,
    plans: &[ParallelPlan],
    world: &mut World,
    cm: &CostModel,
) -> Result<SimOutcome, ExecError> {
    run_simulated_with(module, registry, plans, world, cm, &ExecConfig::default())
}

/// [`run_simulated`] with explicit fault-injection, backoff and watchdog
/// configuration.
///
/// # Errors
///
/// As [`run_simulated`].
pub fn run_simulated_with(
    module: &Module,
    registry: &Registry,
    plans: &[ParallelPlan],
    world: &mut World,
    cm: &CostModel,
    cfg: &ExecConfig,
) -> Result<SimOutcome, ExecError> {
    let injector = FaultInjector::new(cfg.fault.clone());
    let bc = prepare_engine(module, cfg.engine);
    let factor = program_cost_factor(cfg.engine, cm);
    let mut globals = PlainGlobals::new(module);
    let mut vm = EngineVm::for_name(module, bc.as_ref(), "main", &[])?;
    let mut sim_time: u64 = 0;
    let mut stats = SimStats::default();
    let sink = cfg.telemetry.then(TelemetrySink::new);
    let mut mx = SimMetrics {
        on: cfg.metrics,
        reg: MetricsRegistry::new(),
        local: MetricsLocal::new(),
    };
    let mut metas: Vec<SectionMeta> = Vec::new();
    let mut next_ord = 0usize;
    loop {
        // Sampled before the step so a retired op attributes to the site
        // that produced it; `None` when metrics are off or the engine is
        // the tree-walk VM.
        let site = if mx.on { vm.bc_site() } else { None };
        match vm.step(&mut globals)? {
            StepOutcome::Ran { cost } => {
                sim_time += factor * cost * cm.inst;
                mx.retire(bc.as_ref(), site, cost);
            }
            StepOutcome::Special(p) => {
                let name = module.intrinsics.name(p.intrinsic.0 as usize);
                if name == "__par_invoke" {
                    let section = p.args[0].as_int();
                    let plan = plans
                        .iter()
                        .find(|pl| pl.section == section)
                        .ok_or(ExecError::UnknownSection { section })?;
                    let mut telem = SectionTelemetry {
                        on: sink.is_some(),
                        sec: next_ord,
                        spans: Vec::new(),
                    };
                    next_ord += 1;
                    if let Some(j) = &cfg.journal {
                        j.record(JournalEvent {
                            section: Some((next_ord - 1) as u64),
                            ..JournalEvent::new("section_start", sim_time)
                                .field("plan_section", section.to_string())
                                .field("workers", plan.workers.len().to_string())
                        });
                    }
                    let (end, section_stats, meta) = run_section(
                        module,
                        bc.as_ref(),
                        registry,
                        plan,
                        world,
                        &mut globals,
                        sim_time,
                        cm,
                        cfg,
                        &injector,
                        &mut telem,
                        &mut mx,
                    )?;
                    if let Some(j) = &cfg.journal {
                        j.record(JournalEvent {
                            section: Some((next_ord - 1) as u64),
                            ..JournalEvent::new("section_end", end)
                        });
                    }
                    sim_time = end;
                    merge_stats(&mut stats, section_stats);
                    if let (Some(s), Some(m)) = (sink.as_ref(), meta) {
                        s.record_batch(telem.spans);
                        metas.push(m);
                    }
                    vm.resolve_special(Value::Int(0));
                } else {
                    let base = module.intrinsics.sig(p.intrinsic.0 as usize).base_cost;
                    let out = registry.call(name, world, &p.args);
                    sim_time += factor * (base + out.extra_cost);
                    vm.resolve_special(out.value);
                }
            }
            StepOutcome::Finished(result) => {
                stats.fault = injector.stats();
                let telemetry = sink.map(|s| {
                    let counters = RunCounters {
                        fault: stats.fault,
                        watchdog_checks: stats.watchdog.checks,
                        watchdog_clean: stats.watchdog.is_clean(),
                        max_blocked: stats.watchdog.max_blocked,
                        // The DES has no sharded world and no SPSC rings:
                        // empty-pop counts stand in for empty spins.
                        shard: Default::default(),
                        delta: stats.delta,
                        tm_commits: stats.tm_commits,
                        tm_aborts: stats.tm_aborts,
                        tm_fallbacks: stats.tm_fallbacks,
                        queue_full_spins: 0,
                        queue_empty_spins: stats.queue_stalls,
                        queue_drained: 0,
                    };
                    RunReport::build(ClockUnit::Ticks, s.take(), metas, counters)
                });
                let metrics = mx.on.then(|| {
                    let mut reg = std::mem::take(&mut mx.reg);
                    if let Some(bcm) = bc.as_ref() {
                        mx.local.publish(module, bcm, &mut reg);
                    }
                    reg.inc("delta.applies", stats.delta.applies);
                    reg.inc("delta.coalesces", stats.delta.coalesces);
                    reg.inc("delta.merged_slots", stats.delta.merged_slots);
                    reg.inc("delta.lock_elisions", stats.delta.lock_elisions);
                    reg.inc("tm.commits", stats.tm_commits);
                    reg.inc("tm.aborts", stats.tm_aborts);
                    reg.inc("tm.fallbacks", stats.tm_fallbacks);
                    reg.inc("queue.pushes", stats.queue_pushes);
                    reg.inc("queue.empty_pops", stats.queue_stalls);
                    if let Some(j) = &cfg.journal {
                        j.record_metrics(sim_time, &reg);
                    }
                    reg
                });
                if let Some(j) = &cfg.journal {
                    j.record(
                        JournalEvent::new("sim_finished", sim_time)
                            .field("sim_time", sim_time.to_string()),
                    );
                }
                return Ok(SimOutcome {
                    result,
                    sim_time,
                    stats,
                    telemetry,
                    metrics,
                });
            }
        }
    }
}

fn merge_stats(into: &mut SimStats, from: SimStats) {
    into.lock_contention.extend(from.lock_contention);
    into.tm_commits += from.tm_commits;
    into.tm_aborts += from.tm_aborts;
    into.tm_fallbacks += from.tm_fallbacks;
    into.queue_pushes += from.queue_pushes;
    into.queue_stalls += from.queue_stalls;
    into.delta.absorb(from.delta);
    merge_watchdog(&mut into.watchdog, from.watchdog);
}

fn merge_watchdog(into: &mut WatchdogReport, from: WatchdogReport) {
    into.checks += from.checks;
    for c in from.cycles {
        if !into.cycles.contains(&c) {
            into.cycles.push(c);
        }
    }
    for v in from.rank_violations {
        if !into.rank_violations.contains(&v) {
            into.rank_violations.push(v);
        }
    }
    into.max_blocked = into.max_blocked.max(from.max_blocked);
}

struct Worker<'m> {
    vm: EngineVm<'m>,
    clock: u64,
    status: WStatus,
    tx: Option<commset_sim::tm::TxRecord>,
    /// Modeled optimistic aborts of the in-flight transaction (drives the
    /// starvation fallback to the rank-0 global lock).
    tx_aborts: u64,
    /// True when retrying a lock acquisition after having blocked on it
    /// (pays the contention penalty).
    lock_retry: bool,
    /// Telemetry: clock at which the current blocking wait began (a worker
    /// blocks on at most one lock or queue endpoint at a time).
    block_start: Option<u64>,
    /// Telemetry: lock rank -> grant tick of the currently held lock.
    lock_held: HashMap<usize, u64>,
    /// Telemetry: tick at which the in-flight transaction began.
    tx_begin_t: u64,
    /// Telemetry: open commutative-region instances (enter seen, exit
    /// pending), as (func, enter tick).
    region_stack: Vec<(String, u64)>,
}

/// Executes one parallel section; returns (end time, stats, telemetry
/// metadata).
#[allow(clippy::too_many_arguments)]
fn run_section<'m>(
    module: &'m Module,
    bc: Option<&'m crate::bytecode::BcModule>,
    registry: &Registry,
    plan: &ParallelPlan,
    world: &mut World,
    globals: &mut PlainGlobals,
    start: u64,
    cm: &CostModel,
    cfg: &ExecConfig,
    injector: &FaultInjector,
    telem: &mut SectionTelemetry,
    mx: &mut SimMetrics,
) -> Result<(u64, SimStats, Option<SectionMeta>), ExecError> {
    let lock_kind = match plan.sync {
        SyncMode::Spin => SimLockKind::Spin,
        _ => SimLockKind::Mutex,
    };
    let mut locks: Vec<SimLock> = plan
        .locks
        .iter()
        .map(|_| {
            let mut l = SimLock::new(lock_kind);
            l.free_at = start;
            l
        })
        .collect();
    // Queue ids may be sparse in principle; map id -> index.
    let mut queue_index: HashMap<i64, usize> = HashMap::new();
    let mut queues: Vec<SimQueue> = Vec::new();
    for q in &plan.queues {
        queue_index.insert(q.id, queues.len());
        queues.push(SimQueue::new(injector.clamp_capacity(q.capacity)));
    }
    let mut tm = TmModel::new();
    let watchdog = cfg.watchdog.then(Watchdog::new);
    // The virtual world is internally thread-safe (the paper's "Lib"
    // discipline): each intrinsic execution serializes on the channels it
    // writes, and readers wait for in-flight writers. This is what makes
    // I/O-channel saturation emerge at high thread counts.
    let mut channel_free: HashMap<u32, u64> = HashMap::new();
    // Delta privatization: merge-covered calls run against per-worker
    // buffers with no channel serialization at all (the modeled analogue
    // of taking no shard lock); the buffers fold back into the world in
    // worker-index order at the section end. Pipeline sections (queues
    // present) keep the serialized discipline.
    let delta_on =
        matches!(cfg.world, WorldMode::Deltas) && registry.has_merges() && plan.queues.is_empty();
    let mut delta_bufs: Vec<DeltaBuffer> = if delta_on {
        (0..plan.workers.len())
            .map(|_| DeltaBuffer::new())
            .collect()
    } else {
        Vec::new()
    };
    // Static lock elision: a CommSet region lock whose guarded intrinsics
    // are all delta-covered serializes nothing — every effect in the
    // region lands in a worker-private buffer, invisible to siblings
    // until the barrier, and the declared merges make the coalesce order
    // immaterial. Synthetic locks (`__reduction`) have no members and are
    // never elided.
    let elided: Vec<bool> = plan
        .locks
        .iter()
        .map(|ls| {
            delta_on
                && !ls.members.is_empty()
                && ls.members.iter().all(|m| registry.delta_covered(m))
        })
        .collect();

    let factor = program_cost_factor(cfg.engine, cm);
    let spawn_t = start + cm.par_spawn;
    let mut workers: Vec<Worker<'m>> = Vec::with_capacity(plan.workers.len());
    for w in &plan.workers {
        let mut vm =
            EngineVm::for_name(module, bc, &w.func, &[Value::Int(w.tid), Value::Int(w.nt)])?;
        if cfg.trace.is_some() || telem.on {
            vm.watch_calls_matching("__commset_region_");
        }
        workers.push(Worker {
            vm,
            clock: spawn_t,
            status: WStatus::Ready,
            tx: None,
            tx_aborts: 0,
            lock_retry: false,
            block_start: None,
            lock_held: HashMap::new(),
            tx_begin_t: 0,
            region_stack: Vec::new(),
        });
    }

    loop {
        let clocks: Vec<u64> = workers.iter().map(|w| w.clock).collect();
        let runnable: Vec<bool> = workers.iter().map(|w| w.status == WStatus::Ready).collect();
        let Some(i) = pick_min_clock(&clocks, &runnable) else {
            if workers.iter().all(|w| w.status == WStatus::Done) {
                break;
            }
            return Err(ExecError::Deadlock {
                section: plan.section,
                waiting: workers
                    .iter()
                    .enumerate()
                    .map(|(k, w)| {
                        format!(
                            "{k}:{:?}@{}({})",
                            w.status,
                            w.clock,
                            w.vm.current_function()
                        )
                    })
                    .collect(),
            });
        };
        // Deterministic deadline: once the earliest runnable worker's
        // clock is past the section's tick budget, the section has
        // overrun under *every* schedule of the model — report the
        // overrun instead of scheduling further work.
        if let Some(ms) = cfg.deadline_ms {
            if workers[i].clock.saturating_sub(start) > ms.saturating_mul(TICKS_PER_MS) {
                return Err(ExecError::DeadlineExceeded {
                    section: plan.section,
                    deadline_ms: ms,
                });
            }
        }
        // Step worker i until it blocks, finishes, or completes one special.
        let site = if mx.on { workers[i].vm.bc_site() } else { None };
        let step = workers[i]
            .vm
            .step(globals)
            .map_err(|e| ExecError::WorkerFailed {
                stage: plan.workers[i].func.clone(),
                cause: e.to_string(),
            })?;
        match step {
            StepOutcome::Ran { cost } => {
                workers[i].clock += factor * cost * cm.inst;
                mx.retire(bc, site, cost);
            }
            StepOutcome::Finished(_) => {
                workers[i].status = WStatus::Done;
            }
            StepOutcome::Special(p) => {
                handle_special(
                    module,
                    registry,
                    world,
                    plan,
                    &mut workers,
                    i,
                    &p,
                    &mut locks,
                    &mut queues,
                    &queue_index,
                    &mut tm,
                    &mut channel_free,
                    &mut delta_bufs,
                    &elided,
                    cm,
                    cfg,
                    injector,
                    watchdog.as_ref(),
                    telem,
                    mx,
                )?;
            }
        }
        if cfg.trace.is_some() || telem.on {
            drain_region_events(cfg.trace.as_ref(), telem, i, &mut workers[i]);
        }
    }

    // Delta coalesce: fold the per-worker buffers into the world in
    // worker-index order (then slot-name order inside each buffer). The
    // DES has no panic containment, so an injected poison surfaces as the
    // same structured error the thread executor's containment produces.
    let mut delta = DeltaSnapshot::default();
    for buf in delta_bufs.drain(..) {
        delta.lock_elisions += buf.lock_elisions;
        if buf.is_empty() {
            continue;
        }
        if injector.delta_poison_now() {
            return Err(ExecError::WorkerFailed {
                stage: "__delta_coalesce".into(),
                cause: DELTA_POISON_MSG.into(),
            });
        }
        delta.coalesces += 1;
        delta.applies += buf.applies;
        let mut buf_slots = 0u64;
        for (slot, d) in buf.drain() {
            buf_slots += 1;
            let spec = registry
                .merge_of(&slot)
                .expect("delta-routed slot has a merge spec");
            delta.merged_slots += 1;
            match world.take_boxed(&slot) {
                Some(mut base) => {
                    spec.apply(base.as_mut(), d);
                    world.install_boxed(slot, base);
                }
                None => world.install_boxed(slot, d),
            }
        }
        mx.observe("delta.merge_slots", buf_slots);
    }

    let end = workers
        .iter()
        .map(|w| w.clock)
        .max()
        .unwrap_or(start)
        .max(start)
        + cm.par_spawn;
    let meta = if telem.on {
        for (k, w) in workers.iter().enumerate() {
            telem.span(k, spawn_t, w.clock, SpanKind::Worker);
        }
        Some(SectionMeta {
            section: telem.sec,
            stage_desc: plan.stage_desc.clone(),
            worker_stage: plan.workers.iter().map(|w| w.stage).collect(),
            locks: plan.locks.iter().map(|l| l.set.clone()).collect(),
            queues: plan.queues.iter().map(|q| (q.id, q.what.clone())).collect(),
            // The DES has no SPSC rings: empty-pop counts stand in for
            // empty spins, the full side has no modeled counter.
            queue_spins: queues.iter().map(|q| (0, q.empty_pops)).collect(),
            span: (start, end),
        })
    } else {
        None
    };
    let stats = SimStats {
        lock_contention: plan
            .locks
            .iter()
            .zip(&locks)
            .map(|(spec, l)| (spec.set.clone(), l.contention_ratio()))
            .collect(),
        tm_commits: tm.commits,
        tm_aborts: tm.aborts,
        tm_fallbacks: tm.fallbacks,
        queue_pushes: queues.iter().map(|q| q.pushes).sum(),
        queue_stalls: queues.iter().map(|q| q.empty_pops).sum(),
        fault: FaultStats::default(),
        watchdog: watchdog.map(|wd| wd.report()).unwrap_or_default(),
        delta,
    };
    Ok((end, stats, meta))
}

/// Converts a worker VM's buffered call-boundary events into trace
/// records and telemetry region spans at the worker's current clock.
fn drain_region_events(
    trace: Option<&TraceSink>,
    telem: &mut SectionTelemetry,
    i: usize,
    w: &mut Worker<'_>,
) {
    let clock = w.clock;
    for ev in w.vm.drain_call_events() {
        if telem.on {
            if ev.enter {
                w.region_stack.push((ev.func.clone(), clock));
            } else if let Some((f, t0)) = w.region_stack.pop() {
                telem.span(i, t0, clock, SpanKind::Region { func: f });
            }
        }
        if let Some(tr) = trace {
            let event = if ev.enter {
                TraceEvent::RegionEnter {
                    func: ev.func,
                    args: ev.args,
                }
            } else {
                TraceEvent::RegionExit { func: ev.func }
            };
            tr.record(i, clock, event);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_special(
    module: &Module,
    registry: &Registry,
    world: &mut World,
    plan: &ParallelPlan,
    workers: &mut [Worker<'_>],
    i: usize,
    p: &PendingSpecial,
    locks: &mut [SimLock],
    queues: &mut [SimQueue],
    queue_index: &HashMap<i64, usize>,
    tm: &mut TmModel,
    channel_free: &mut HashMap<u32, u64>,
    delta_bufs: &mut [DeltaBuffer],
    elided: &[bool],
    cm: &CostModel,
    cfg: &ExecConfig,
    injector: &FaultInjector,
    watchdog: Option<&Watchdog>,
    telem: &mut SectionTelemetry,
    mx: &mut SimMetrics,
) -> Result<(), ExecError> {
    // Borrowed, not cloned: this runs once per special, on the hot path.
    let name = module.intrinsics.name(p.intrinsic.0 as usize);
    let factor = program_cost_factor(cfg.engine, cm);
    let qidx = |args: &[Value]| -> Result<usize, ExecError> {
        let id = args[0].as_int();
        queue_index
            .get(&id)
            .copied()
            .ok_or(ExecError::UnknownQueue { id })
    };
    // A stalled worker pauses at its synchronization events; a slow
    // worker pays its drag at every one of them.
    let stall =
        injector.worker_stall(plan.workers[i].tid) + injector.slow_worker(plan.workers[i].tid);
    workers[i].clock += stall;
    match name {
        "__lock_acquire" => {
            let l = p.args[0].as_int() as usize;
            if elided.get(l).copied().unwrap_or(false) {
                // Delta privatization covers everything this lock guards:
                // grant immediately with no lock state touched.
                if let Some(buf) = delta_bufs.get_mut(i) {
                    buf.lock_elisions += 1;
                }
                workers[i].vm.resolve_special(Value::Int(0));
                return Ok(());
            }
            let t = workers[i].clock;
            let was_blocked = workers[i].lock_retry;
            if let Some(wd) = watchdog {
                wd.acquiring(i, l);
            }
            match locks[l].try_acquire(t, was_blocked, cm) {
                AcquireOutcome::Granted(grant) => {
                    if was_blocked {
                        locks[l].pending = locks[l].pending.saturating_sub(1);
                        workers[i].lock_retry = false;
                    }
                    if let Some(wd) = watchdog {
                        wd.acquired(i, l);
                    }
                    let wait_from = workers[i].block_start.take().unwrap_or(t);
                    if grant > wait_from {
                        if telem.on {
                            telem.span(i, wait_from, grant, SpanKind::LockWait { rank: l });
                        }
                        if mx.on {
                            mx.observe(
                                &format!("lock_wait.{}", plan.locks[l].set),
                                grant - wait_from,
                            );
                        }
                    }
                    workers[i].clock = grant + injector.lock_grant_delay();
                    if telem.on {
                        let held_from = workers[i].clock;
                        workers[i].lock_held.insert(l, held_from);
                    }
                    workers[i].vm.resolve_special(Value::Int(0));
                    if let Some(tr) = &cfg.trace {
                        tr.record(i, workers[i].clock, TraceEvent::LockAcquire { lock: l });
                    }
                }
                AcquireOutcome::Held => {
                    if !was_blocked {
                        locks[l].pending += 1;
                        workers[i].lock_retry = true;
                        if telem.on || mx.on {
                            workers[i].block_start = Some(t);
                        }
                    }
                    workers[i].vm.retry_special_later();
                    workers[i].status = WStatus::BlockedLock(l);
                }
            }
        }
        "__lock_release" => {
            let l = p.args[0].as_int() as usize;
            if elided.get(l).copied().unwrap_or(false) {
                workers[i].vm.resolve_special(Value::Int(0));
                return Ok(());
            }
            let t = workers[i].clock;
            if telem.on {
                if let Some(t0) = workers[i].lock_held.remove(&l) {
                    telem.span(i, t0, t, SpanKind::LockHold { rank: l });
                }
            }
            workers[i].clock = locks[l].release(t, cm);
            if let Some(wd) = watchdog {
                wd.released(i, l);
            }
            workers[i].vm.resolve_special(Value::Int(0));
            if let Some(tr) = &cfg.trace {
                tr.record(i, workers[i].clock, TraceEvent::LockRelease { lock: l });
            }
            // Wake the blocked requesters; the scheduler grants in clock
            // order, the rest re-block.
            for w in workers.iter_mut() {
                if w.status == WStatus::BlockedLock(l) {
                    w.status = WStatus::Ready;
                }
            }
        }
        "__q_push" | "__q_push_f" => {
            let q = qidx(&p.args)?;
            let bits = p.args[1].to_bits();
            workers[i].clock += injector.queue_stall_delay();
            let attempt = workers[i].clock;
            match queues[q].push(workers[i].clock, bits, cm) {
                PushOutcome::Pushed(t) => {
                    workers[i].clock = t;
                    if telem.on {
                        let qid = p.args[0].as_int();
                        if let Some(bs) = workers[i].block_start.take() {
                            telem.span(i, bs, attempt, SpanKind::QueuePushWait { queue: qid });
                        }
                        telem.span(i, t, t, SpanKind::QueuePush { queue: qid });
                    }
                    if mx.on {
                        mx.observe(
                            &format!("queue_occupancy.{}", p.args[0].as_int()),
                            queues[q].len() as u64,
                        );
                    }
                    workers[i].vm.resolve_special(Value::Int(0));
                    if let Some(tr) = &cfg.trace {
                        tr.record(
                            i,
                            workers[i].clock,
                            TraceEvent::QueuePush {
                                queue: p.args[0].as_int(),
                            },
                        );
                    }
                    // Wake a consumer blocked on this queue.
                    for w in workers.iter_mut() {
                        if w.status == WStatus::BlockedPop(q) {
                            w.status = WStatus::Ready;
                        }
                    }
                }
                PushOutcome::Full => {
                    if telem.on && workers[i].block_start.is_none() {
                        workers[i].block_start = Some(attempt);
                    }
                    workers[i].vm.retry_special_later();
                    workers[i].status = WStatus::BlockedPush(q);
                }
            }
        }
        "__q_pop" | "__q_pop_f" => {
            let q = qidx(&p.args)?;
            workers[i].clock += injector.queue_stall_delay();
            let attempt = workers[i].clock;
            match queues[q].pop(workers[i].clock, cm) {
                PopOutcome::Popped(bits, t) => {
                    workers[i].clock = t;
                    if telem.on {
                        let qid = p.args[0].as_int();
                        if let Some(bs) = workers[i].block_start.take() {
                            telem.span(i, bs, attempt, SpanKind::QueuePopWait { queue: qid });
                        }
                        telem.span(i, t, t, SpanKind::QueuePop { queue: qid });
                    }
                    if mx.on {
                        mx.observe(
                            &format!("queue_occupancy.{}", p.args[0].as_int()),
                            queues[q].len() as u64,
                        );
                    }
                    let v = Value::from_bits(bits, name == "__q_pop_f");
                    workers[i].vm.resolve_special(v);
                    if let Some(tr) = &cfg.trace {
                        tr.record(
                            i,
                            workers[i].clock,
                            TraceEvent::QueuePop {
                                queue: p.args[0].as_int(),
                            },
                        );
                    }
                    for w in workers.iter_mut() {
                        if w.status == WStatus::BlockedPush(q) {
                            w.status = WStatus::Ready;
                        }
                    }
                }
                PopOutcome::Empty => {
                    if telem.on && workers[i].block_start.is_none() {
                        workers[i].block_start = Some(attempt);
                    }
                    workers[i].vm.retry_special_later();
                    workers[i].status = WStatus::BlockedPop(q);
                }
            }
        }
        "__tx_begin" => {
            let t = workers[i].clock;
            workers[i].clock = t + cm.tx_begin;
            workers[i].tx = Some(tm.begin(t, cm));
            workers[i].tx_aborts = 0;
            workers[i].tx_begin_t = t;
            workers[i].vm.resolve_special(Value::Int(0));
        }
        "__tx_commit" => {
            let mut tx = workers[i]
                .tx
                .take()
                .ok_or(ExecError::TxCommitWithoutBegin)?;
            loop {
                let t = workers[i].clock;
                // A starving transaction escalates to the modeled rank-0
                // global lock: pessimistic but guaranteed to commit.
                if workers[i].tx_aborts > u64::from(cfg.backoff.max_aborts) {
                    workers[i].clock = tm.commit_pessimistic(&tx, t, cm);
                    break;
                }
                let outcome = if injector.force_stm_abort() {
                    Err(tm.forced_abort(&tx, t, cm))
                } else {
                    tm.commit(&tx, t, cm)
                };
                match outcome {
                    Ok(done) => {
                        workers[i].clock = done;
                        break;
                    }
                    Err(wasted) => {
                        workers[i].tx_aborts += 1;
                        // Back off (modeled as spin cycles), then redo the
                        // transaction's work after the wasted time.
                        let backoff =
                            u64::from(cfg.backoff.base_spins) << workers[i].tx_aborts.min(8);
                        workers[i].clock = t + wasted + backoff + tx.work;
                        tx.start = workers[i].clock;
                    }
                }
            }
            if telem.on {
                let aborts = workers[i].tx_aborts;
                let t0 = workers[i].tx_begin_t;
                let t1 = workers[i].clock;
                telem.span(i, t0, t1, SpanKind::Tx { aborts });
            }
            workers[i].tx_aborts = 0;
            workers[i].vm.resolve_special(Value::Int(0));
        }
        "__par_invoke" => return Err(ExecError::NestedParallelSection),
        _ => {
            // Ordinary world intrinsic: readers wait for in-flight writers
            // of their channels, and the execution holds its write channels
            // for its duration (the internally-thread-safe world).
            let sig = module.intrinsics.sig(p.intrinsic.0 as usize);
            let base = sig.base_cost;
            // Delta fast path: a merge-covered call runs against the
            // worker-private buffer with no channel serialization — the
            // whole cost overlaps across cores.
            if !delta_bufs.is_empty() {
                if let Some(slots) = registry.delta_route(name, &p.args) {
                    let out = delta_bufs[i].apply(registry, name, &p.args, &slots);
                    let done = workers[i].clock + factor * (base + out.extra_cost);
                    if telem.on {
                        telem.span(
                            i,
                            workers[i].clock,
                            done,
                            SpanKind::WorldCall {
                                intrinsic: name.to_string(),
                            },
                        );
                    }
                    workers[i].clock = done;
                    if let Some(tr) = &cfg.trace {
                        tr.record(
                            i,
                            done,
                            TraceEvent::WorldCall {
                                intrinsic: name.to_string(),
                                args: p.args.clone(),
                            },
                        );
                    }
                    workers[i].vm.resolve_special(out.value);
                    return Ok(());
                }
            }
            let out = registry.call(name, world, &p.args);
            let raw = base + out.extra_cost;
            // Application work executed by the engine pays the engine's
            // dispatch factor; the serialized/parallel split keeps its
            // proportions.
            let cost = factor * raw;
            // Private compute overlaps across cores; only the serialized
            // portion holds the intrinsic's write channels (readers wait
            // for in-flight writers).
            let ser = (factor * out.serialized_cost.unwrap_or(raw)).min(cost);
            let par = cost - ser;
            let mut start = workers[i].clock + par;
            let base_start = start;
            // Instance-partitioned channels hold per-instance state: their
            // accesses do not serialize across workers (each instance is
            // its own cache lines).
            for c in sig.reads.iter().chain(&sig.writes) {
                if module.intrinsics.is_per_instance(*c) {
                    continue;
                }
                start = start.max(channel_free.get(&c.0).copied().unwrap_or(0));
            }
            // Per-channel contention attribution: how long each serialized
            // channel alone would have delayed this call past its ready
            // point (passive — `start` is already settled above).
            if mx.on && start > base_start {
                let mut seen: Vec<u32> = Vec::new();
                for c in sig.reads.iter().chain(&sig.writes) {
                    if module.intrinsics.is_per_instance(*c) || seen.contains(&c.0) {
                        continue;
                    }
                    seen.push(c.0);
                    let free = channel_free.get(&c.0).copied().unwrap_or(0);
                    if free > base_start {
                        mx.observe(
                            &format!("channel_wait.{}", module.intrinsics.channels.name(*c)),
                            free - base_start,
                        );
                    }
                }
            }
            let done = start + ser;
            if ser > 0 {
                for c in &sig.writes {
                    if module.intrinsics.is_per_instance(*c) {
                        continue;
                    }
                    channel_free.insert(c.0, done);
                }
            }
            if telem.on {
                telem.span(
                    i,
                    workers[i].clock,
                    done,
                    SpanKind::WorldCall {
                        intrinsic: name.to_string(),
                    },
                );
            }
            workers[i].clock = done;
            if let Some(tr) = &cfg.trace {
                tr.record(
                    i,
                    done,
                    TraceEvent::WorldCall {
                        intrinsic: name.to_string(),
                        args: p.args.clone(),
                    },
                );
            }
            if let Some(tx) = &mut workers[i].tx {
                tx.work += cost;
                for c in &sig.reads {
                    tx.reads
                        .insert(module.intrinsics.channels.name(*c).to_string());
                }
                for c in &sig.writes {
                    tx.writes
                        .insert(module.intrinsics.channels.name(*c).to_string());
                }
            }
            workers[i].vm.resolve_special(out.value);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use commset_analysis::depanalysis::analyze_commutativity;
    use commset_analysis::effects::summarize;
    use commset_analysis::hotloop::find_hot_loop;
    use commset_analysis::metadata::manage;
    use commset_analysis::pdg::Pdg;
    use commset_analysis::scc::dag_scc;
    use commset_ir::{lower_program, IntrinsicTable};
    use commset_lang::ast::Type;
    use commset_runtime::intrinsics::IntrinsicOutcome;
    use commset_runtime::FaultPlan;
    use commset_transform::{doall, dswp};
    use std::collections::BTreeSet;

    fn table() -> IntrinsicTable {
        let mut t = IntrinsicTable::new();
        t.register("add_acc", vec![Type::Int], Type::Void, &[], &["ACC"], 20);
        t.register("emit", vec![Type::Int], Type::Void, &[], &["OUT"], 30);
        t.register("heavy", vec![Type::Int], Type::Int, &[], &[], 400);
        t
    }

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register("add_acc", |world, args| {
            *world.get_mut::<i64>("acc") += args[0].as_int();
            IntrinsicOutcome::unit()
        });
        r.register("emit", |world, args| {
            world.get_mut::<Vec<i64>>("out").push(args[0].as_int());
            IntrinsicOutcome::unit()
        });
        r.register("heavy", |_, args| {
            IntrinsicOutcome::value(args[0].as_int() * 2)
        });
        r
    }

    /// Heavy pure compute per iteration plus a small commutative update to
    /// shared state — the shape every scalable workload has.
    const DOALL_SRC: &str = r#"
        extern int heavy(int x);
        extern void add_acc(int v);
        int main() {
            int n = 64;
            for (int i = 0; i < n; i = i + 1) {
                int w = heavy(i);
                #pragma CommSet(SELF)
                { add_acc(i); }
            }
            return 0;
        }
    "#;

    fn compile_doall(nthreads: usize, sync: SyncMode) -> (Module, ParallelPlan) {
        let table = table();
        let unit = commset_lang::compile_unit(DOALL_SRC).unwrap();
        let managed = manage(unit).unwrap();
        let summaries = summarize(&managed.program, &table);
        let hot = find_hot_loop(&managed, &summaries, &table, "main").unwrap();
        let mut pdg = Pdg::build(&hot);
        analyze_commutativity(&mut pdg, &managed, &hot);
        let pp = doall::apply_doall(
            &managed,
            &hot,
            &pdg,
            &summaries,
            &BTreeSet::new(),
            nthreads,
            sync,
            0,
        )
        .unwrap();
        let module = lower_program(&pp.program, table).unwrap();
        (module, pp.plan)
    }

    #[test]
    fn doall_produces_correct_sum_and_speedup() {
        // Sequential baseline.
        let table = table();
        let unit = commset_lang::compile_unit(DOALL_SRC).unwrap();
        let managed = manage(unit).unwrap();
        let seq_module = lower_program(&managed.program, table).unwrap();
        let mut world = World::new();
        world.install("acc", 0i64);
        let cm = CostModel::default();
        let seq =
            crate::seq::run_sequential(&seq_module, &registry(), &mut world, &cm, "main").unwrap();
        assert_eq!(*world.get::<i64>("acc"), (0..64).sum::<i64>());
        // Parallel on 4 virtual cores.
        let (module, plan) = compile_doall(4, SyncMode::Spin);
        let mut world4 = World::new();
        world4.install("acc", 0i64);
        let par = run_simulated(&module, &registry(), &[plan], &mut world4, &cm).unwrap();
        assert_eq!(*world4.get::<i64>("acc"), (0..64).sum::<i64>());
        let speedup = seq.sim_time as f64 / par.sim_time as f64;
        assert!(
            speedup > 2.0,
            "DOALL x4 should speed up ~4x, got {speedup:.2} (seq={} par={})",
            seq.sim_time,
            par.sim_time
        );
        assert!(par.stats.watchdog.is_clean(), "{:?}", par.stats.watchdog);
        let _ = par.result;
    }

    #[test]
    fn doall_is_deterministic() {
        let cm = CostModel::default();
        let (module, plan) = compile_doall(3, SyncMode::Mutex);
        let run = || {
            let mut world = World::new();
            world.install("acc", 0i64);
            let out = run_simulated(
                &module,
                &registry(),
                std::slice::from_ref(&plan),
                &mut world,
                &cm,
            )
            .unwrap();
            (out.sim_time, *world.get::<i64>("acc"))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn missing_plan_is_an_unknown_section_error() {
        let cm = CostModel::default();
        let (module, plan) = compile_doall(2, SyncMode::Spin);
        let mut world = World::new();
        world.install("acc", 0i64);
        let err = run_simulated(&module, &registry(), &[], &mut world, &cm).unwrap_err();
        assert_eq!(
            err,
            ExecError::UnknownSection {
                section: plan.section
            }
        );
    }

    #[test]
    fn abort_storm_drives_fallbacks_yet_preserves_output() {
        let cm = CostModel::default();
        let (module, plan) = compile_doall(4, SyncMode::Tm);
        let run = |cfg: &ExecConfig| {
            let mut world = World::new();
            world.install("acc", 0i64);
            let out = run_simulated_with(
                &module,
                &registry(),
                std::slice::from_ref(&plan),
                &mut world,
                &cm,
                cfg,
            )
            .unwrap();
            (*world.get::<i64>("acc"), out.stats)
        };
        let (quiet_acc, quiet) = run(&ExecConfig::default());
        assert_eq!(quiet_acc, (0..64).sum::<i64>());
        assert_eq!(quiet.fault.stm_aborts, 0, "no faults without a plan");
        assert_eq!(quiet.tm_fallbacks, 0, "no starvation without a storm");
        // Every commit attempt is forced to abort: only the rank-0
        // fallback lets transactions through, and the answer still holds.
        let mut cfg = ExecConfig::with_fault(FaultPlan {
            stm_abort_every: 1,
            ..FaultPlan::abort_storm(11)
        });
        cfg.backoff.max_aborts = 3;
        let (storm_acc, storm) = run(&cfg);
        assert_eq!(storm_acc, quiet_acc);
        assert!(storm.fault.stm_aborts > 0, "{:?}", storm.fault);
        assert!(storm.tm_fallbacks > 0, "{storm:?}");
        assert!(storm.watchdog.is_clean(), "{:?}", storm.watchdog);
    }

    #[test]
    fn lock_delay_and_stall_preserve_output_and_determinism() {
        let cm = CostModel::default();
        let (module, plan) = compile_doall(3, SyncMode::Mutex);
        let run = |cfg: &ExecConfig| {
            let mut world = World::new();
            world.install("acc", 0i64);
            let out = run_simulated_with(
                &module,
                &registry(),
                std::slice::from_ref(&plan),
                &mut world,
                &cm,
                cfg,
            )
            .unwrap();
            (*world.get::<i64>("acc"), out.sim_time, out.stats.fault)
        };
        for fault in [
            FaultPlan::lock_delay(5, 800),
            FaultPlan::worker_stall(5, 1, 1200),
        ] {
            let cfg = ExecConfig::with_fault(fault);
            let (acc, time, stats) = run(&cfg);
            assert_eq!(acc, (0..64).sum::<i64>());
            assert_eq!(
                run(&cfg),
                (acc, time, stats),
                "fault runs are deterministic"
            );
            assert!(stats.lock_delays + stats.stalls > 0, "{stats:?}");
        }
    }

    #[test]
    fn trace_records_regions_locks_and_world_calls_deterministically() {
        let cm = CostModel::default();
        let (module, plan) = compile_doall(2, SyncMode::Spin);
        let run = || {
            let sink = crate::trace::TraceSink::new();
            let cfg = ExecConfig::with_trace(sink.clone());
            let mut world = World::new();
            world.install("acc", 0i64);
            run_simulated_with(
                &module,
                &registry(),
                std::slice::from_ref(&plan),
                &mut world,
                &cm,
                &cfg,
            )
            .unwrap();
            sink.take()
        };
        let recs = run();
        let enters = recs
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::RegionEnter { .. }))
            .count();
        let exits = recs
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::RegionExit { .. }))
            .count();
        assert_eq!(enters, 64, "one region instance per iteration");
        assert_eq!(exits, 64);
        assert!(
            recs.iter()
                .any(|r| matches!(r.event, TraceEvent::LockAcquire { .. })),
            "spin mode rank locks must appear"
        );
        assert!(recs.iter().any(
            |r| matches!(&r.event, TraceEvent::WorldCall { intrinsic, .. } if intrinsic == "add_acc")
        ));
        // Region enters carry the instance arguments.
        let args: Vec<i64> = recs
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::RegionEnter { args, .. } => Some(args[0].as_int()),
                _ => None,
            })
            .collect();
        let mut sorted = args.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<i64>>());
        // The DES trace is fully deterministic.
        assert_eq!(recs, run());
    }

    const PIPE_SRC: &str = r#"
        extern int heavy(int x);
        extern void emit(int y);
        int main() {
            int n = 40;
            for (int i = 0; i < n; i = i + 1) {
                int y = heavy(i);
                emit(y);
            }
            return 0;
        }
    "#;

    fn compile_pipeline(nthreads: usize) -> (Module, ParallelPlan) {
        let table = table();
        let unit = commset_lang::compile_unit(PIPE_SRC).unwrap();
        let managed = manage(unit).unwrap();
        let summaries = summarize(&managed.program, &table);
        let hot = find_hot_loop(&managed, &summaries, &table, "main").unwrap();
        let mut pdg = Pdg::build(&hot);
        analyze_commutativity(&mut pdg, &managed, &hot);
        let dag = dag_scc(&pdg);
        let pp = dswp::apply_ps_dswp(
            &managed,
            &hot,
            &pdg,
            &dag,
            &summaries,
            &["OUT".to_string()].into(),
            nthreads,
            SyncMode::Lib,
            0,
        )
        .unwrap();
        let module = lower_program(&pp.program, table).unwrap();
        (module, pp.plan)
    }

    #[test]
    fn ps_dswp_preserves_output_order() {
        let (module, plan) = compile_pipeline(5);
        let mut world = World::new();
        world.install("out", Vec::<i64>::new());
        let cm = CostModel::default();
        let out = run_simulated(&module, &registry(), &[plan], &mut world, &cm).unwrap();
        let produced = world.get::<Vec<i64>>("out");
        let expected: Vec<i64> = (0..40).map(|i| i * 2).collect();
        assert_eq!(
            produced, &expected,
            "sequential output stage preserves order"
        );
        assert!(out.stats.queue_pushes > 0);
    }

    #[test]
    fn telemetry_is_deterministic_and_does_not_perturb_the_model() {
        let cm = CostModel::default();
        let (module, plan) = compile_pipeline(4);
        let run = |telemetry: bool| {
            let mut world = World::new();
            world.install("out", Vec::<i64>::new());
            let cfg = ExecConfig {
                telemetry,
                ..ExecConfig::default()
            };
            run_simulated_with(
                &module,
                &registry(),
                std::slice::from_ref(&plan),
                &mut world,
                &cm,
                &cfg,
            )
            .unwrap()
        };
        let off = run(false);
        assert!(off.telemetry.is_none(), "telemetry must be opt-in");
        let on = run(true);
        assert_eq!(
            on.sim_time, off.sim_time,
            "telemetry must not change simulated time"
        );
        let report = on.telemetry.unwrap();
        assert_eq!(report.sections.len(), 1);
        let s = &report.sections[0];
        assert!(s.stages.len() >= 2, "pipeline has >= 2 stages: {s:?}");
        assert!(s.queues.iter().any(|q| q.pushes > 0), "{:?}", s.queues);
        assert!(s.workers.iter().any(|w| w.blocked > 0 || w.idle > 0));
        // Tick-based reports are bit-identical across runs.
        let again = run(true).telemetry.unwrap();
        assert_eq!(report.render_text(), again.render_text());
        assert_eq!(
            commset_telemetry::chrome_trace_json(&report),
            commset_telemetry::chrome_trace_json(&again)
        );
    }

    #[test]
    fn metrics_and_journal_do_not_perturb_the_sim_clock() {
        let cm = CostModel::default();
        let (module, plan) = compile_pipeline(4);
        let run = |metrics: bool, journal: Option<commset_telemetry::Journal>| {
            let mut world = World::new();
            world.install("out", Vec::<i64>::new());
            let cfg = ExecConfig {
                metrics,
                journal,
                ..ExecConfig::default()
            };
            run_simulated_with(
                &module,
                &registry(),
                std::slice::from_ref(&plan),
                &mut world,
                &cm,
                &cfg,
            )
            .unwrap()
        };
        let off = run(false, None);
        assert!(off.metrics.is_none(), "metrics must be opt-in");
        let j = commset_telemetry::Journal::new(7);
        let on = run(true, Some(j.clone()));
        assert_eq!(
            on.sim_time, off.sim_time,
            "metrics + journal must not change simulated time"
        );
        let reg = on.metrics.expect("metrics were enabled");
        assert!(!reg.opcodes().is_empty(), "opcode retires recorded");
        assert!(
            reg.blocks().keys().all(|b| b.contains(":bb")),
            "hot blocks carry func:bbN names: {:?}",
            reg.blocks().keys().collect::<Vec<_>>()
        );
        assert!(
            reg.hists()
                .keys()
                .any(|k| k.starts_with("queue_occupancy.")),
            "pipeline queues recorded occupancy: {:?}",
            reg.hists().keys().collect::<Vec<_>>()
        );
        let jsonl = j.to_jsonl();
        assert!(jsonl.contains("\"kind\":\"section_start\""), "{jsonl}");
        assert!(jsonl.contains("\"kind\":\"section_end\""));
        assert!(jsonl.contains("\"kind\":\"metrics\""));
        // The registry is fully deterministic across runs.
        let again = run(true, None);
        assert_eq!(reg, again.metrics.unwrap());
    }

    #[test]
    fn queue_pushback_preserves_pipeline_order() {
        let (module, plan) = compile_pipeline(4);
        let cm = CostModel::default();
        let mut world = World::new();
        world.install("out", Vec::<i64>::new());
        let cfg = ExecConfig::with_fault(FaultPlan::queue_pushback(3));
        let out = run_simulated_with(&module, &registry(), &[plan], &mut world, &cm, &cfg).unwrap();
        let expected: Vec<i64> = (0..40).map(|i| i * 2).collect();
        assert_eq!(world.get::<Vec<i64>>("out"), &expected);
        // Capacity-1 queues force the producer into the full-queue path.
        assert!(out.stats.queue_pushes >= 40);
        assert!(out.stats.watchdog.is_clean());
    }
}
