//! The self-healing execution supervisor.
//!
//! [`run_supervised`] wraps the parallel executors in a recovery policy:
//!
//! 1. **Deadlines.** Each attempt runs under `ExecConfig::deadline_ms`
//!    (the policy can impose one); the executors escalate through the
//!    watchdog and cancel cooperatively, surfacing
//!    [`ExecError::DeadlineExceeded`].
//! 2. **Transient retry.** Failures are classified by
//!    [`ExecError::is_transient`]: schedule-dependent errors (deadline,
//!    deadlock, watchdog violation, cancellation, non-deterministic worker
//!    failures such as an injected panic) are retried on the same rung
//!    with bounded exponential backoff plus deterministic jitter.
//!    Deterministic program errors (division by zero, out-of-bounds, …)
//!    skip the retries — the same input produces the same error — but
//!    still descend, because the *sequential baseline is always a correct
//!    fallback* (the COMMSET contract) and the bottom rung decides whether
//!    the error is real.
//! 3. **Degradation ladder.** When a rung is exhausted the supervisor
//!    descends: delta privatization → sharded world → single lock (same
//!    thread count), then
//!    thread count halving N → N/2 → … → 1, then the sequential executor.
//!    Thread counts are baked into compiled modules, so each rung
//!    recompiles via [`ProgramSource`]. Every degraded success is
//!    re-validated against the lazily-computed sequential oracle before it
//!    is accepted — degradation may cost speed, never semantics.
//! 4. **Failure bundles.** The first failure (and the terminal one, if
//!    different) is captured as a replayable [`FailureBundle`]
//!    (`.repro.json`) when the policy names a bundle directory;
//!    `commsetc replay` re-executes it deterministically.
//!
//! The whole journey is recorded in a
//! [`commset_telemetry::RecoveryReport`] carried on the outcome.

use crate::bundle::FailureBundle;
use crate::config::{ExecConfig, WorldMode};
use crate::error::ExecError;
use crate::seq::run_sequential;
use crate::sim_exec::run_simulated_with;
use crate::thread_exec::run_threaded_with;
use commset_ir::Module;
use commset_runtime::rng::SplitMix64;
use commset_runtime::{Registry, Value, World};
use commset_sim::CostModel;
use commset_telemetry::{JournalEvent, RecoveryReport, RunReport};
use commset_transform::ParallelPlan;
use std::path::PathBuf;

/// Which executor the supervisor drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The real-thread executor (`run_threaded_with`).
    Threads,
    /// The deterministic discrete-event executor (`run_simulated_with`).
    Sim,
}

/// A compiled parallel program for one thread count.
pub struct CompiledProgram {
    /// The transformed module.
    pub module: Module,
    /// Its parallel plans (one per section).
    pub plans: Vec<ParallelPlan>,
}

/// Provenance recorded into failure bundles.
#[derive(Debug, Clone, Default)]
pub struct ProgramDesc {
    /// Path of the program on disk (informational).
    pub path: String,
    /// The Cmm source text, inline.
    pub source: String,
    /// The effects sidecar text, inline (empty when none).
    pub effects: String,
    /// Scheme name (`doall`, `dswp`, `ps-dswp`).
    pub scheme: String,
    /// Sync mode name (`lib`, `spin`, `mutex`, `tm`).
    pub sync: String,
}

/// How the supervisor obtains executable artifacts for each ladder rung.
///
/// Thread counts are baked into compiled modules (worker functions are
/// generated per `nthreads`), so descending the ladder requires
/// recompilation — the supervisor cannot be handed one `Module` up front.
/// `commset-core` provides a `Compiler`-backed implementation; the
/// workload harness provides another.
pub trait ProgramSource {
    /// Compiles the program for `threads` workers.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic when the scheme is inapplicable at this thread
    /// count; the supervisor skips the rung and keeps descending.
    fn parallel(&self, threads: usize) -> Result<CompiledProgram, String>;

    /// Compiles the untransformed sequential program (the bottom rung and
    /// the validation oracle).
    ///
    /// # Errors
    ///
    /// Returns a diagnostic if sequential compilation fails.
    fn sequential(&self) -> Result<Module, String>;

    /// A fresh world for one attempt (attempts never share state).
    fn fresh_world(&self) -> World;

    /// The intrinsic registry.
    fn registry(&self) -> &Registry;

    /// Provenance for failure bundles.
    fn describe(&self) -> ProgramDesc;
}

/// Validates a degraded result against the sequential oracle's world.
/// Receives `(candidate, oracle)`; workloads compare their output slots.
pub type Validator = dyn Fn(&World, &World) -> Result<(), String> + Sync;

/// The supervisor's knob set.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Same-rung retries allowed for transient failures (default 2).
    pub max_retries: u32,
    /// Deadline imposed on every attempt; `None` leaves
    /// `ExecConfig::deadline_ms` as the caller set it.
    pub deadline_ms: Option<u64>,
    /// First backoff sleep in milliseconds (default 1).
    pub base_backoff_ms: u64,
    /// Backoff cap in milliseconds (default 50).
    pub max_backoff_ms: u64,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
    /// Walk the degradation ladder; `false` retries the initial rung only
    /// (plus the sequential fallback).
    pub ladder: bool,
    /// Where to write `.repro.json` failure bundles; `None` disables
    /// capture.
    pub bundle_dir: Option<PathBuf>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            deadline_ms: None,
            base_backoff_ms: 1,
            max_backoff_ms: 50,
            seed: 0x5eed_c0de,
            ladder: true,
            bundle_dir: None,
        }
    }
}

/// A successful supervised run.
#[derive(Debug)]
pub struct SupervisedOutcome {
    /// `main`'s return value from the final (accepted) attempt.
    pub result: Option<Value>,
    /// The world after the accepted attempt.
    pub world: World,
    /// What the supervisor did to get here.
    pub recovery: RecoveryReport,
    /// Telemetry from the accepted attempt, when enabled and the rung was
    /// parallel.
    pub telemetry: Option<RunReport>,
}

/// A terminally failed supervised run: the error that ended it plus the
/// full recovery journey (including the bundle path, if captured).
pub struct SupervisedFailure {
    /// The last error (from the deepest rung reached).
    pub error: ExecError,
    /// What the supervisor tried before giving up.
    pub recovery: RecoveryReport,
}

impl std::fmt::Debug for SupervisedFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SupervisedFailure({})", self.error)
    }
}

/// One rung of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rung {
    Parallel { mode: WorldMode, threads: usize },
    Sequential,
}

impl Rung {
    fn describe(self, backend: Backend) -> String {
        match self {
            Rung::Sequential => "sequential".to_string(),
            Rung::Parallel { mode, threads } => match backend {
                Backend::Sim => match mode {
                    WorldMode::Deltas => format!("sim(deltas, {threads})"),
                    _ => format!("sim({threads})"),
                },
                Backend::Threads => format!(
                    "threads({}, {threads})",
                    match mode {
                        WorldMode::Deltas => "deltas",
                        WorldMode::Sharded => "sharded",
                        WorldMode::SingleLock => "single-lock",
                        WorldMode::Auto => "auto",
                    }
                ),
            },
        }
    }
}

/// Builds the ladder: initial rung, then (threads backend, sharded start)
/// the single-lock world at full width, then thread halving, then the
/// sequential fallback. With `ladder` off only the initial rung and the
/// sequential fallback remain.
fn build_ladder(
    backend: Backend,
    start_mode: WorldMode,
    threads: usize,
    registry: &Registry,
    ladder: bool,
) -> Vec<Rung> {
    let resolved = match start_mode {
        WorldMode::Auto => {
            if registry.has_bindings() {
                WorldMode::Sharded
            } else {
                WorldMode::SingleLock
            }
        }
        m => m,
    };
    let mut rungs = vec![Rung::Parallel {
        mode: resolved,
        threads,
    }];
    if ladder {
        if resolved == WorldMode::Deltas {
            // A poisoned delta coalesce degrades to the lock-mediated
            // sharded world at full width before giving up any threads.
            rungs.push(Rung::Parallel {
                mode: WorldMode::Sharded,
                threads,
            });
            if backend == Backend::Threads {
                rungs.push(Rung::Parallel {
                    mode: WorldMode::SingleLock,
                    threads,
                });
            }
        } else if backend == Backend::Threads && resolved == WorldMode::Sharded {
            rungs.push(Rung::Parallel {
                mode: WorldMode::SingleLock,
                threads,
            });
        }
        let degraded_mode = match backend {
            Backend::Threads => WorldMode::SingleLock,
            Backend::Sim => {
                if resolved == WorldMode::Deltas {
                    WorldMode::Sharded
                } else {
                    resolved
                }
            }
        };
        let mut t = threads;
        while t > 1 {
            t /= 2;
            rungs.push(Rung::Parallel {
                mode: degraded_mode,
                threads: t,
            });
        }
    }
    rungs.push(Rung::Sequential);
    rungs
}

enum AttemptError {
    /// The executor failed; subject to transient-retry classification.
    Exec(ExecError),
    /// The rung could not even be compiled (e.g. DSWP at one thread);
    /// deterministic, so never retried on the same rung.
    Compile(String),
    /// The rung produced a result that disagrees with the sequential
    /// oracle; deterministically rejected.
    Diverged(String),
}

impl AttemptError {
    fn transient(&self) -> bool {
        match self {
            AttemptError::Exec(e) => e.is_transient(),
            AttemptError::Compile(_) | AttemptError::Diverged(_) => false,
        }
    }

    fn render(&self) -> String {
        match self {
            AttemptError::Exec(e) => e.to_string(),
            AttemptError::Compile(d) => format!("compile failed: {d}"),
            AttemptError::Diverged(d) => format!("degraded result diverged from oracle: {d}"),
        }
    }
}

struct Attempt {
    result: Option<Value>,
    world: World,
    telemetry: Option<RunReport>,
}

fn run_rung(
    src: &dyn ProgramSource,
    backend: Backend,
    rung: Rung,
    cfg: &ExecConfig,
) -> Result<Attempt, AttemptError> {
    match rung {
        Rung::Sequential => {
            let module = src.sequential().map_err(AttemptError::Compile)?;
            let mut world = src.fresh_world();
            let out = crate::seq::run_sequential_with(
                &module,
                src.registry(),
                &mut world,
                &CostModel::default(),
                "main",
                cfg.engine,
            )
            .map_err(AttemptError::Exec)?;
            Ok(Attempt {
                result: out.result,
                world,
                telemetry: None,
            })
        }
        Rung::Parallel { mode, threads } => {
            let prog = src.parallel(threads).map_err(AttemptError::Compile)?;
            let mut cfg = cfg.clone();
            cfg.world = mode;
            match backend {
                Backend::Threads => {
                    let out = run_threaded_with(
                        &prog.module,
                        src.registry(),
                        &prog.plans,
                        src.fresh_world(),
                        &cfg,
                    )
                    .map_err(AttemptError::Exec)?;
                    Ok(Attempt {
                        result: out.result,
                        world: out.world,
                        telemetry: out.telemetry,
                    })
                }
                Backend::Sim => {
                    let mut world = src.fresh_world();
                    let out = run_simulated_with(
                        &prog.module,
                        src.registry(),
                        &prog.plans,
                        &mut world,
                        &CostModel::default(),
                        &cfg,
                    )
                    .map_err(AttemptError::Exec)?;
                    Ok(Attempt {
                        result: out.result,
                        world,
                        telemetry: out.telemetry,
                    })
                }
            }
        }
    }
}

/// Captures a failure bundle for `err` if `policy.bundle_dir` is set and
/// none has been written yet; records the path in `report`.
#[allow(clippy::too_many_arguments)]
fn capture_bundle(
    src: &dyn ProgramSource,
    backend: Backend,
    rung: Rung,
    cfg: &ExecConfig,
    policy: &RecoveryPolicy,
    report: &mut RecoveryReport,
    err: &AttemptError,
    epoch: std::time::Instant,
) {
    let Some(dir) = &policy.bundle_dir else {
        return;
    };
    if report.bundle.is_some() {
        return;
    }
    let desc = src.describe();
    let (threads, world_mode) = match rung {
        Rung::Parallel { mode, threads } => (
            threads,
            match mode {
                WorldMode::Auto => "auto",
                WorldMode::SingleLock => "single-lock",
                WorldMode::Sharded => "sharded",
                WorldMode::Deltas => "deltas",
            },
        ),
        Rung::Sequential => (1, "single-lock"),
    };
    let bundle = FailureBundle {
        version: 1,
        program_path: desc.path,
        source: desc.source,
        effects: desc.effects,
        scheme: desc.scheme,
        sync: desc.sync,
        threads,
        backend: match (backend, rung) {
            (_, Rung::Sequential) => "sequential",
            (Backend::Threads, _) => "threads",
            (Backend::Sim, _) => "sim",
        }
        .to_string(),
        world_mode: world_mode.to_string(),
        queue_batch: cfg.queue_batch,
        watchdog: cfg.watchdog,
        deadline_ms: policy.deadline_ms.or(cfg.deadline_ms),
        fault: cfg.fault.clone(),
        error: err.render(),
        rung: rung.describe(backend),
        attempt: report.attempts,
        history: report.errors.clone(),
        run_id: cfg.journal.as_ref().map_or(0, |j| j.run_id()),
    };
    match bundle.write(dir) {
        Ok(path) => {
            if let Some(j) = &cfg.journal {
                j.record(JournalEvent {
                    attempt: Some(u64::from(report.attempts)),
                    rung: Some(rung.describe(backend)),
                    ..JournalEvent::new("bundle_captured", epoch.elapsed().as_nanos() as u64)
                        .field("path", path.display().to_string())
                });
            }
            report.bundle = Some(path.display().to_string());
        }
        Err(e) => report.errors.push(format!("bundle capture failed: {e}")),
    }
}

/// Runs the program under the recovery policy.
///
/// `threads` is the initial worker count; `base_cfg` supplies the fault
/// plan, trace/telemetry flags and starting world mode. When `validate` is
/// given, every *degraded* success (any rung below the first) is checked
/// against the sequential oracle — result values must match and the
/// validator must accept the worlds — before it is returned.
///
/// # Errors
///
/// Returns [`SupervisedFailure`] when the ladder is exhausted — including
/// when the sequential fallback itself fails, which is the program's true
/// (deterministic) error.
pub fn run_supervised(
    src: &dyn ProgramSource,
    backend: Backend,
    threads: usize,
    base_cfg: &ExecConfig,
    policy: &RecoveryPolicy,
    validate: Option<&Validator>,
) -> Result<SupervisedOutcome, Box<SupervisedFailure>> {
    let mut cfg = base_cfg.clone();
    if policy.deadline_ms.is_some() {
        cfg.deadline_ms = policy.deadline_ms;
    }
    let rungs = build_ladder(backend, cfg.world, threads, src.registry(), policy.ladder);
    let mut report = RecoveryReport::default();
    let mut rng = SplitMix64::new(policy.seed);
    let mut oracle: Option<(Option<Value>, World)> = None;
    let mut last_error: Option<ExecError> = None;
    let epoch = std::time::Instant::now();
    let now = || epoch.elapsed().as_nanos() as u64;
    if let Some(j) = &cfg.journal {
        j.record(
            JournalEvent::new("run_start", now())
                .field(
                    "backend",
                    match backend {
                        Backend::Threads => "threads",
                        Backend::Sim => "sim",
                    },
                )
                .field("threads", threads.to_string())
                .field("rungs", rungs.len().to_string()),
        );
    }

    for (ri, &rung) in rungs.iter().enumerate() {
        report.rungs.push(rung.describe(backend));
        let mut tries_left = policy.max_retries;
        loop {
            report.attempts += 1;
            if let Some(j) = &cfg.journal {
                j.record(JournalEvent {
                    attempt: Some(u64::from(report.attempts)),
                    rung: Some(rung.describe(backend)),
                    ..JournalEvent::new("attempt_start", now())
                });
            }
            let attempt = run_rung(src, backend, rung, &cfg).and_then(|a| {
                // Degraded parallel successes must preserve semantics.
                if ri > 0 && rung != Rung::Sequential {
                    if let Some(v) = validate {
                        if oracle.is_none() {
                            oracle = Some(run_oracle(src)?);
                        }
                        let (oracle_result, oracle_world) =
                            oracle.as_ref().expect("oracle just computed");
                        if &a.result != oracle_result {
                            return Err(AttemptError::Diverged(format!(
                                "result {:?} != oracle {:?}",
                                a.result, oracle_result
                            )));
                        }
                        v(&a.world, oracle_world).map_err(AttemptError::Diverged)?;
                    }
                }
                Ok(a)
            });
            match attempt {
                Ok(a) => {
                    report.final_mode = rung.describe(backend);
                    report.recovered = !report.errors.is_empty();
                    report.degraded = ri > 0;
                    if let Some(j) = &cfg.journal {
                        j.record(JournalEvent {
                            attempt: Some(u64::from(report.attempts)),
                            rung: Some(report.final_mode.clone()),
                            ..JournalEvent::new("run_end", now())
                                .field("degraded", report.degraded.to_string())
                                .field("recovered", report.recovered.to_string())
                        });
                    }
                    return Ok(SupervisedOutcome {
                        result: a.result,
                        world: a.world,
                        recovery: report,
                        telemetry: a.telemetry,
                    });
                }
                Err(e) => {
                    report.errors.push(e.render());
                    if let Some(j) = &cfg.journal {
                        j.record(JournalEvent {
                            attempt: Some(u64::from(report.attempts)),
                            rung: Some(rung.describe(backend)),
                            ..JournalEvent::new("attempt_error", now())
                                .field("error", e.render())
                                .field("transient", e.transient().to_string())
                        });
                    }
                    capture_bundle(src, backend, rung, &cfg, policy, &mut report, &e, epoch);
                    if let AttemptError::Exec(err) = &e {
                        last_error = Some(err.clone());
                    }
                    if e.transient() && tries_left > 0 {
                        tries_left -= 1;
                        report.retries += 1;
                        let retry_no = policy.max_retries - tries_left;
                        let slept = backoff_sleep(policy, retry_no, &mut rng);
                        report.backoff_ms += slept;
                        if let Some(j) = &cfg.journal {
                            j.record(JournalEvent {
                                attempt: Some(u64::from(report.attempts)),
                                rung: Some(rung.describe(backend)),
                                ..JournalEvent::new("retry", now())
                                    .field("backoff_ms", slept.to_string())
                            });
                        }
                        continue;
                    }
                    break; // descend to the next rung
                }
            }
        }
    }

    report.final_mode = "exhausted".to_string();
    if let Some(j) = &cfg.journal {
        j.record(JournalEvent::new("run_end", now()).field("final_mode", "exhausted"));
    }
    let error = last_error.unwrap_or(ExecError::Canceled {
        stage: "<supervisor>".to_string(),
    });
    Err(Box::new(SupervisedFailure {
        error,
        recovery: report,
    }))
}

/// Runs the sequential oracle once (for validating degraded results).
fn run_oracle(src: &dyn ProgramSource) -> Result<(Option<Value>, World), AttemptError> {
    let module = src.sequential().map_err(AttemptError::Compile)?;
    let mut world = src.fresh_world();
    let out = run_sequential(
        &module,
        src.registry(),
        &mut world,
        &CostModel::default(),
        "main",
    )
    .map_err(AttemptError::Exec)?;
    Ok((out.result, world))
}

/// Sleeps the bounded-exponential backoff with deterministic jitter;
/// returns the slept milliseconds.
fn backoff_sleep(policy: &RecoveryPolicy, retry_no: u32, rng: &mut SplitMix64) -> u64 {
    let base = policy
        .base_backoff_ms
        .max(1)
        .saturating_mul(1u64 << retry_no.min(10))
        .min(policy.max_backoff_ms.max(1));
    // ±50% jitter, deterministic per (seed, retry ordinal).
    let ms = base / 2 + rng.next_below(base / 2 + base % 2 + 1);
    std::thread::sleep(std::time::Duration::from_millis(ms));
    ms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_descends_sharded_singlelock_halving_sequential() {
        let registry = Registry::new();
        let rungs = build_ladder(Backend::Threads, WorldMode::Sharded, 8, &registry, true);
        let names: Vec<String> = rungs.iter().map(|r| r.describe(Backend::Threads)).collect();
        assert_eq!(
            names,
            vec![
                "threads(sharded, 8)",
                "threads(single-lock, 8)",
                "threads(single-lock, 4)",
                "threads(single-lock, 2)",
                "threads(single-lock, 1)",
                "sequential",
            ]
        );
    }

    #[test]
    fn deltas_ladder_descends_through_sharded_first() {
        let registry = Registry::new();
        let rungs = build_ladder(Backend::Threads, WorldMode::Deltas, 8, &registry, true);
        let names: Vec<String> = rungs.iter().map(|r| r.describe(Backend::Threads)).collect();
        assert_eq!(
            names,
            vec![
                "threads(deltas, 8)",
                "threads(sharded, 8)",
                "threads(single-lock, 8)",
                "threads(single-lock, 4)",
                "threads(single-lock, 2)",
                "threads(single-lock, 1)",
                "sequential",
            ]
        );
        let sim = build_ladder(Backend::Sim, WorldMode::Deltas, 4, &registry, true);
        let names: Vec<String> = sim.iter().map(|r| r.describe(Backend::Sim)).collect();
        assert_eq!(
            names,
            vec!["sim(deltas, 4)", "sim(4)", "sim(2)", "sim(1)", "sequential",]
        );
    }

    #[test]
    fn auto_without_bindings_starts_single_lock() {
        let registry = Registry::new();
        let rungs = build_ladder(Backend::Threads, WorldMode::Auto, 4, &registry, true);
        assert_eq!(
            rungs[0].describe(Backend::Threads),
            "threads(single-lock, 4)"
        );
        assert_eq!(
            rungs.last().unwrap().describe(Backend::Threads),
            "sequential"
        );
    }

    #[test]
    fn ladder_off_keeps_only_first_rung_and_sequential() {
        let registry = Registry::new();
        let rungs = build_ladder(Backend::Sim, WorldMode::Auto, 8, &registry, false);
        assert_eq!(rungs.len(), 2);
        assert_eq!(rungs[0].describe(Backend::Sim), "sim(8)");
        assert_eq!(rungs[1].describe(Backend::Sim), "sequential");
    }

    #[test]
    fn backoff_is_bounded_and_deterministic() {
        let policy = RecoveryPolicy {
            base_backoff_ms: 1,
            max_backoff_ms: 4,
            ..Default::default()
        };
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for retry in 1..6 {
            let x = backoff_sleep(&policy, retry, &mut a);
            let y = backoff_sleep(&policy, retry, &mut b);
            assert_eq!(x, y, "jitter must be deterministic per seed");
            assert!(x <= 6, "cap plus jitter stays bounded, got {x}");
        }
    }
}
