//! The real-thread executor.
//!
//! Workers run on OS threads with the runtime's lock-free SPSC queues and
//! raw locks; globals live in a shared atomic store and the world behind a
//! mutex. On this reproduction's single-core host it cannot demonstrate
//! speedups — it exists so the correctness tests can validate that the
//! compiled parallel code computes the same results under genuinely
//! concurrent execution. TM mode falls back to a single global mutex here
//! (pessimistic but correct); the simulated executor models optimism.
//!
//! Robustness: a worker that hits a dynamic error — or *panics* inside a
//! registry intrinsic — no longer takes the process down. The failure is
//! contained (`catch_unwind` plus join-handle inspection), a shared cancel
//! flag unblocks every sibling parked in a queue or lock wait, the SPSC
//! queues are drained, and the run reports
//! [`ExecError::WorkerFailed`] naming the stage and cause.

use crate::config::{ExecConfig, WorldMode};
use crate::engine::{prepare_engine, EngineVm};
use crate::error::ExecError;
use crate::globals::{AtomicGlobals, SharedGlobals};
use crate::metrics::MetricsLocal;
use crate::trace::{TraceEvent, TraceSink};
use crate::vm::StepOutcome;
use commset_ir::Module;
use commset_runtime::intrinsics::IntrinsicOutcome;
use commset_runtime::lock::{LockKind, RawLock};
use commset_runtime::sharded::{ShardObserver, ShardStatsSnapshot, ShardedWorld, WORLD_STRIPES};
use commset_runtime::sync::Mutex;
use commset_runtime::world::SlotError;
use commset_runtime::{
    DeltaBuffer, DeltaSnapshot, FaultInjector, FaultStats, Registry, SpscQueue, Value, Watchdog,
    WatchdogReport, World, DELTA_POISON_MSG,
};
use commset_telemetry::{
    ClockUnit, JournalEvent, MetricsRegistry, MetricsSink, RunCounters, RunReport, SectionMeta,
    SpanKind, SpanRecord, TelemetrySink,
};
use commset_transform::{ParallelPlan, SyncMode};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Runtime statistics of a threaded run.
#[derive(Debug, Clone, Default)]
pub struct ThreadStats {
    /// Faults delivered by the injection plan.
    pub fault: FaultStats,
    /// Waits-for watchdog findings (merged over all sections).
    pub watchdog: WatchdogReport,
    /// Values drained from pipeline queues during teardown (non-zero only
    /// after a failure cut a pipeline short).
    pub queue_drained: u64,
    /// Shard-lock contention counters (all zero under the single-lock
    /// world).
    pub shard: ShardStatsSnapshot,
    /// Pushes that found a pipeline queue full (producer-side pressure).
    pub queue_full_spins: u64,
    /// Pops that found a pipeline queue empty (consumer-side starvation).
    pub queue_empty_spins: u64,
    /// Delta-privatized activity (all zero unless [`WorldMode::Deltas`]
    /// routed calls into per-worker buffers).
    pub delta: DeltaSnapshot,
}

/// The shared world behind one of the two locking disciplines the
/// executor supports: the historical whole-world mutex, or the
/// rank-ordered sharded world routed by the registry's slot bindings.
enum WorldStore {
    Single(Mutex<World>),
    Sharded(ShardedWorld),
}

impl WorldStore {
    fn new(world: World, mode: WorldMode, registry: &Registry) -> Self {
        let sharded = match mode {
            WorldMode::SingleLock => false,
            // Deltas rides on the sharded world: main-thread calls and
            // calls without full merge coverage behave exactly as Sharded.
            WorldMode::Sharded | WorldMode::Deltas => true,
            WorldMode::Auto => registry.has_bindings(),
        };
        if sharded {
            WorldStore::Sharded(ShardedWorld::partition(world, WORLD_STRIPES))
        } else {
            WorldStore::Single(Mutex::new(world))
        }
    }

    /// Executes one world intrinsic under the store's locking discipline.
    fn call(
        &self,
        registry: &Registry,
        name: &str,
        args: &[Value],
        obs: &ShardObserver<'_>,
    ) -> IntrinsicOutcome {
        match self {
            WorldStore::Single(m) => registry.call(name, &mut m.lock(), args),
            WorldStore::Sharded(s) => s.call(registry, name, args, obs),
        }
    }

    fn snapshot(&self) -> ShardStatsSnapshot {
        match self {
            WorldStore::Single(_) => ShardStatsSnapshot::default(),
            WorldStore::Sharded(s) => s.stats(),
        }
    }

    fn into_world(self) -> World {
        match self {
            WorldStore::Single(m) => m.into_inner(),
            WorldStore::Sharded(s) => s.into_world(),
        }
    }
}

/// Result of a threaded run.
#[derive(Debug)]
pub struct ThreadOutcome {
    /// `main`'s return value.
    pub result: Option<Value>,
    /// Wall-clock duration.
    pub wall: Duration,
    /// The world after execution.
    pub world: World,
    /// Fault/watchdog statistics.
    pub stats: ThreadStats,
    /// The unified profiling report, present iff [`ExecConfig::telemetry`]
    /// was on. Timestamps are monotonic nanoseconds since the run's start.
    pub telemetry: Option<RunReport>,
    /// The merged metrics registry (opcode retires, hot-block ranks,
    /// lock/channel wait histograms, queue occupancy, delta merge
    /// sizes), present iff [`ExecConfig::metrics`] was on. Each worker
    /// records into private local state and publishes once at exit.
    pub metrics: Option<MetricsRegistry>,
}

/// Runs the transformed program on real threads with the default
/// configuration (no faults, watchdog on).
///
/// # Errors
///
/// Returns an [`ExecError`] on executor-contract violations (unknown
/// section or queue, nested sections) and on any worker failure — a VM
/// dynamic error or a panic inside an intrinsic handler — as
/// [`ExecError::WorkerFailed`]. Siblings of a failed worker are canceled
/// and report nothing; the process survives.
pub fn run_threaded(
    module: &Module,
    registry: &Registry,
    plans: &[ParallelPlan],
    world: World,
) -> Result<ThreadOutcome, ExecError> {
    run_threaded_with(module, registry, plans, world, &ExecConfig::default())
}

/// [`run_threaded`] with explicit fault-injection and watchdog
/// configuration (delays and stalls are realized as microsecond sleeps).
///
/// # Errors
///
/// As [`run_threaded`].
pub fn run_threaded_with(
    module: &Module,
    registry: &Registry,
    plans: &[ParallelPlan],
    world: World,
    cfg: &ExecConfig,
) -> Result<ThreadOutcome, ExecError> {
    let start = Instant::now();
    let injector = FaultInjector::new(cfg.fault.clone());
    let bc = prepare_engine(module, cfg.engine);
    let shared_globals = AtomicGlobals::new(module);
    let world = WorldStore::new(world, cfg.world, registry);
    let mut globals = SharedGlobals::new(Arc::clone(&shared_globals));
    let mut vm = EngineVm::for_name(module, bc.as_ref(), "main", &[])?;
    let mut stats = ThreadStats::default();
    let sink = cfg.telemetry.then(TelemetrySink::new);
    let msink = cfg.metrics.then(MetricsSink::new);
    let mut mlocal = cfg.metrics.then(MetricsLocal::new);
    let mut metas: Vec<SectionMeta> = Vec::new();
    let mut next_ord = 0usize;
    let result = loop {
        // Sampled before the step so a retired op attributes to the site
        // that produced it (main-thread sequential work).
        let site = if mlocal.is_some() { vm.bc_site() } else { None };
        match vm.step(&mut globals)? {
            StepOutcome::Ran { cost } => {
                if let (Some(ml), Some(site), Some(bcm)) = (mlocal.as_mut(), site, bc.as_ref()) {
                    ml.retire(bcm, site, cost);
                }
            }
            StepOutcome::Special(p) => {
                let name = module.intrinsics.name(p.intrinsic.0 as usize);
                if name == "__par_invoke" {
                    let section = p.args[0].as_int();
                    let plan = plans
                        .iter()
                        .find(|pl| pl.section == section)
                        .ok_or(ExecError::UnknownSection { section })?;
                    let ord = next_ord;
                    next_ord += 1;
                    if let Some(j) = &cfg.journal {
                        j.record(JournalEvent {
                            section: Some(ord as u64),
                            ..JournalEvent::new("section_start", start.elapsed().as_nanos() as u64)
                                .field("plan_section", section.to_string())
                                .field("workers", plan.workers.len().to_string())
                        });
                    }
                    let section_out = run_section(
                        module,
                        bc.as_ref(),
                        registry,
                        plan,
                        &shared_globals,
                        &world,
                        cfg,
                        &injector,
                        sink.as_ref(),
                        msink.as_ref(),
                        start,
                        ord,
                    )?;
                    if let Some(j) = &cfg.journal {
                        j.record(JournalEvent {
                            section: Some(ord as u64),
                            ..JournalEvent::new("section_end", start.elapsed().as_nanos() as u64)
                        });
                    }
                    merge_watchdog(&mut stats.watchdog, section_out.watchdog);
                    stats.queue_drained += section_out.drained;
                    stats.queue_full_spins += section_out.full_spins;
                    stats.queue_empty_spins += section_out.empty_spins;
                    stats.delta.absorb(section_out.delta);
                    if let Some(m) = section_out.meta {
                        metas.push(m);
                    }
                    vm.resolve_special(Value::Int(0));
                } else if name.starts_with("__lock")
                    || name.starts_with("__q_")
                    || name.starts_with("__tx")
                {
                    // Synchronization intrinsics outside a section are a
                    // transform bug, not something to forward to the world.
                    return Err(ExecError::ParallelIntrinsicInSequential {
                        name: name.to_string(),
                    });
                } else {
                    // A bad intrinsic on the main thread (wrong slot type,
                    // missing slot, handler bug) is contained exactly like
                    // a worker failure instead of aborting the process.
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        world.call(registry, name, &p.args, &ShardObserver::silent())
                    }))
                    .map_err(|payload| ExecError::WorkerFailed {
                        stage: "main".into(),
                        cause: panic_message(&*payload),
                    })?;
                    vm.resolve_special(out.value);
                }
            }
            StepOutcome::Finished(v) => break v,
        }
    };
    stats.fault = injector.stats();
    stats.shard = world.snapshot();
    let telemetry = sink.map(|s| {
        let spans = s.take();
        // The thread executor's TM mode is pessimistic (one global lock):
        // every Tx span is a commit, no optimistic aborts exist here.
        let tm_commits = spans
            .iter()
            .filter(|sp| matches!(sp.kind, SpanKind::Tx { .. }))
            .count() as u64;
        let counters = RunCounters {
            fault: stats.fault,
            watchdog_checks: stats.watchdog.checks,
            watchdog_clean: stats.watchdog.is_clean(),
            max_blocked: stats.watchdog.max_blocked,
            shard: stats.shard,
            delta: stats.delta,
            tm_commits,
            tm_aborts: 0,
            tm_fallbacks: 0,
            queue_full_spins: stats.queue_full_spins,
            queue_empty_spins: stats.queue_empty_spins,
            queue_drained: stats.queue_drained,
        };
        RunReport::build(ClockUnit::Nanos, spans, metas, counters)
    });
    let metrics = msink.map(|ms| {
        let mut reg = ms.take();
        if let (Some(ml), Some(bcm)) = (mlocal.as_ref(), bc.as_ref()) {
            ml.publish(module, bcm, &mut reg);
        }
        reg.inc("shard.fast_acquires", stats.shard.fast_acquires);
        reg.inc("shard.fast_waits", stats.shard.fast_waits);
        reg.inc("shard.multi_acquires", stats.shard.multi_acquires);
        reg.inc("shard.whole_acquires", stats.shard.whole_acquires);
        reg.inc("queue.full_spins", stats.queue_full_spins);
        reg.inc("queue.empty_spins", stats.queue_empty_spins);
        reg.inc("queue.drained", stats.queue_drained);
        reg.inc("delta.applies", stats.delta.applies);
        reg.inc("delta.coalesces", stats.delta.coalesces);
        reg.inc("delta.merged_slots", stats.delta.merged_slots);
        reg.inc("delta.lock_elisions", stats.delta.lock_elisions);
        if let Some(j) = &cfg.journal {
            j.record_metrics(start.elapsed().as_nanos() as u64, &reg);
        }
        reg
    });
    Ok(ThreadOutcome {
        result,
        wall: start.elapsed(),
        world: world.into_world(),
        stats,
        telemetry,
        metrics,
    })
}

fn merge_watchdog(into: &mut WatchdogReport, from: WatchdogReport) {
    into.checks += from.checks;
    for c in from.cycles {
        if !into.cycles.contains(&c) {
            into.cycles.push(c);
        }
    }
    for v in from.rank_violations {
        if !into.rank_violations.contains(&v) {
            into.rank_violations.push(v);
        }
    }
    into.max_blocked = into.max_blocked.max(from.max_blocked);
}

/// Shared, immutable context for one section's worker threads.
struct SectionCtx<'a> {
    module: &'a Module,
    /// Compiled bytecode when the run's engine is the compiled backend;
    /// `None` runs workers on the tree-walk VM.
    bc: Option<&'a crate::bytecode::BcModule>,
    registry: &'a Registry,
    world: &'a WorldStore,
    locks: &'a [RawLock],
    tm_lock: &'a RawLock,
    queues: &'a [SpscQueue<u64>],
    queue_index: &'a HashMap<i64, usize>,
    cancel: &'a AtomicBool,
    injector: &'a FaultInjector,
    /// True when this section privatizes merge-covered world calls into
    /// per-worker delta buffers ([`WorldMode::Deltas`], merge declarations
    /// present, and the plan has no cross-worker queues — pipeline stages
    /// pass handles through queues, so they keep the sharded discipline).
    delta: bool,
    /// Per-lock elision decisions (indexed by lock rank): true when every
    /// intrinsic the lock guards is delta-covered, so the region needs no
    /// mutual exclusion at all — privatized effects are invisible to
    /// siblings until the barrier. Empty unless `delta` is set.
    elided: &'a [bool],
    /// Finished per-worker buffers, pushed at worker exit and coalesced by
    /// the section in worker-index order.
    delta_out: &'a Mutex<Vec<(usize, DeltaBuffer)>>,
    watchdog: Option<&'a Watchdog>,
    trace: Option<&'a TraceSink>,
    queue_batch: usize,
    /// Span sink when [`ExecConfig::telemetry`] is on.
    telemetry: Option<&'a TelemetrySink>,
    /// Metrics sink when [`ExecConfig::metrics`] is on. Workers record
    /// into private state and publish once at exit.
    metrics: Option<&'a MetricsSink>,
    /// CommSet set names indexed by lock rank — the `lock_wait.<SET>`
    /// histogram keys.
    lock_sets: &'a [String],
    /// The run's epoch: span and trace timestamps are nanoseconds since
    /// this instant.
    epoch: Instant,
    /// Ordinal of this section within the run (execution order) — the
    /// span/report section key.
    section_ord: usize,
}

/// What one parallel section reports back to the run.
struct SectionOutcome {
    watchdog: WatchdogReport,
    /// Queue slots drained during teardown.
    drained: u64,
    /// Pushes that found a queue full.
    full_spins: u64,
    /// Pops that found a queue empty.
    empty_spins: u64,
    /// Plan-derived naming + per-queue spins for the report builder
    /// (present iff telemetry is on).
    meta: Option<SectionMeta>,
    /// Delta-privatized activity of this section.
    delta: DeltaSnapshot,
}

/// Executes one parallel section; returns the watchdog report, teardown
/// drain count and queue contention counters.
#[allow(clippy::too_many_arguments)]
fn run_section(
    module: &Module,
    bc: Option<&crate::bytecode::BcModule>,
    registry: &Registry,
    plan: &ParallelPlan,
    shared_globals: &Arc<AtomicGlobals>,
    world: &WorldStore,
    cfg: &ExecConfig,
    injector: &FaultInjector,
    sink: Option<&TelemetrySink>,
    msink: Option<&MetricsSink>,
    epoch: Instant,
    section_ord: usize,
) -> Result<SectionOutcome, ExecError> {
    let sec_start = epoch.elapsed().as_nanos() as u64;
    let lock_kind = match plan.sync {
        SyncMode::Spin => LockKind::Spin,
        _ => LockKind::Mutex,
    };
    let locks: Vec<RawLock> = plan.locks.iter().map(|_| RawLock::new(lock_kind)).collect();
    // TM fallback: one global pessimistic lock.
    let tm_lock = RawLock::new(LockKind::Mutex);
    let mut queue_index: HashMap<i64, usize> = HashMap::new();
    let mut queues: Vec<SpscQueue<u64>> = Vec::new();
    for q in &plan.queues {
        queue_index.insert(q.id, queues.len());
        queues.push(SpscQueue::new(injector.clamp_capacity(q.capacity)));
    }
    let cancel = AtomicBool::new(false);
    let watchdog = cfg.watchdog.then(Watchdog::new);
    let delta_on =
        matches!(cfg.world, WorldMode::Deltas) && registry.has_merges() && plan.queues.is_empty();
    let delta_out: Mutex<Vec<(usize, DeltaBuffer)>> = Mutex::new(Vec::new());
    // Static lock elision (DESIGN.md §14): a CommSet region lock whose
    // guarded intrinsics are all delta-covered serializes nothing under
    // delta privatization. Synthetic locks (`__reduction`) have no
    // members and are never elided.
    let elided: Vec<bool> = plan
        .locks
        .iter()
        .map(|ls| {
            delta_on
                && !ls.members.is_empty()
                && ls.members.iter().all(|m| registry.delta_covered(m))
        })
        .collect();
    let lock_sets: Vec<String> = plan.locks.iter().map(|l| l.set.clone()).collect();
    let ctx = SectionCtx {
        module,
        bc,
        registry,
        world,
        locks: &locks,
        tm_lock: &tm_lock,
        queues: &queues,
        queue_index: &queue_index,
        cancel: &cancel,
        injector,
        delta: delta_on,
        elided: &elided,
        delta_out: &delta_out,
        watchdog: watchdog.as_ref(),
        trace: cfg.trace.as_ref(),
        queue_batch: cfg.queue_batch.max(1),
        telemetry: sink,
        metrics: msink,
        lock_sets: &lock_sets,
        epoch,
        section_ord,
    };

    // Deadline enforcement: a monitor thread (spawned inside the scope,
    // below) waits out `cfg.deadline_ms`, escalates to the watchdog for a
    // diagnosis, then trips the cooperative cancel flag — the same flag a
    // failed sibling uses, so every canceling wait unblocks.
    let deadline_fired = AtomicBool::new(false);
    let workers_done = AtomicBool::new(false);
    let results: Vec<Result<(), ExecError>> = std::thread::scope(|scope| {
        let ctx = &ctx;
        if let Some(ms) = cfg.deadline_ms {
            let fired = &deadline_fired;
            let done = &workers_done;
            let wd = watchdog.as_ref();
            let cancel = &cancel;
            scope.spawn(move || {
                let deadline = Duration::from_millis(ms);
                let t0 = Instant::now();
                while !done.load(Ordering::Relaxed) {
                    let elapsed = t0.elapsed();
                    if elapsed >= deadline {
                        // Escalation order: ask the watchdog whether the
                        // overrun is a cycle (its findings land in the
                        // section report), then cancel cooperatively.
                        if let Some(wd) = wd {
                            wd.check();
                        }
                        fired.store(true, Ordering::SeqCst);
                        cancel.store(true, Ordering::SeqCst);
                        break;
                    }
                    std::thread::sleep((deadline - elapsed).min(Duration::from_millis(1)));
                }
            });
        }
        let journal = cfg.journal.as_ref();
        let handles: Vec<_> = plan
            .workers
            .iter()
            .enumerate()
            .map(|(widx, w)| {
                let globals = SharedGlobals::new(Arc::clone(shared_globals));
                let func = w.func.clone();
                let (tid, nt) = (w.tid, w.nt);
                scope.spawn(move || {
                    let w_start = ctx.epoch.elapsed().as_nanos() as u64;
                    let mut spans: Vec<SpanRecord> = Vec::new();
                    let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        worker_loop(ctx, widx, &func, tid, nt, globals, &mut spans)
                    }));
                    if let Some(sink) = ctx.telemetry {
                        // The lifetime span is recorded here (not inside the
                        // loop) so spans of panicked/failed workers still
                        // reach the sink.
                        spans.push(SpanRecord {
                            section: ctx.section_ord,
                            worker: widx,
                            start: w_start,
                            end: ctx.epoch.elapsed().as_nanos() as u64,
                            kind: SpanKind::Worker,
                        });
                        sink.record_batch(std::mem::take(&mut spans));
                    }
                    let outcome = match body {
                        Ok(r) => r,
                        Err(payload) => Err(ExecError::WorkerFailed {
                            stage: func.clone(),
                            cause: panic_message(&*payload),
                        }),
                    };
                    if outcome.is_err() {
                        // Unblock every sibling parked in a queue or lock.
                        ctx.cancel.store(true, Ordering::SeqCst);
                    }
                    if let Some(j) = journal {
                        j.record(JournalEvent {
                            section: Some(ctx.section_ord as u64),
                            worker: Some(widx as u64),
                            ..JournalEvent::new(
                                "worker_done",
                                ctx.epoch.elapsed().as_nanos() as u64,
                            )
                            .field("stage", func.clone())
                            .field("ok", outcome.is_ok().to_string())
                        });
                    }
                    outcome
                })
            })
            .collect();
        let results: Vec<Result<(), ExecError>> = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                // catch_unwind already contained worker panics; this arm
                // only fires for panics outside it (defensive).
                Err(payload) => Err(ExecError::WorkerFailed {
                    stage: "<worker>".into(),
                    cause: panic_message(&*payload),
                }),
            })
            .collect();
        // Workers joined: release the deadline monitor (it polls this
        // flag at millisecond granularity, so the scope exits promptly).
        workers_done.store(true, Ordering::Relaxed);
        results
    });

    // All workers are joined: snapshot the contention counters (before
    // the teardown drain perturbs them), then drain abandoned pipeline
    // values so a failed run does not leak queue slots.
    let (mut full_spins, mut empty_spins) = (0u64, 0u64);
    let mut queue_spins: Vec<(u64, u64)> = Vec::with_capacity(queues.len());
    for q in &queues {
        let (f, e) = q.contention();
        full_spins += f;
        empty_spins += e;
        queue_spins.push((f, e));
    }
    let drained: u64 = queues.iter().map(|q| q.drain() as u64).sum();

    // Report the most informative failure: a real WorkerFailed beats the
    // Canceled noise of its siblings.
    let mut first: Option<ExecError> = None;
    for (w, r) in plan.workers.iter().zip(results) {
        let Err(e) = r else { continue };
        let wrapped = match e {
            ExecError::WorkerFailed { .. } | ExecError::Canceled { .. } => e,
            other => ExecError::WorkerFailed {
                stage: w.func.clone(),
                cause: other.to_string(),
            },
        };
        match (&first, &wrapped) {
            (None, _) => first = Some(wrapped),
            (Some(ExecError::Canceled { .. }), ExecError::WorkerFailed { .. }) => {
                first = Some(wrapped)
            }
            _ => {}
        }
    }
    if let Some(e) = first {
        // When the deadline monitor tripped the cancel flag, the workers'
        // Canceled noise *is* the deadline overrun; a genuine
        // WorkerFailed that raced the deadline still wins (it carries the
        // root cause).
        if deadline_fired.load(Ordering::SeqCst) {
            if let ExecError::Canceled { .. } = e {
                return Err(ExecError::DeadlineExceeded {
                    section: plan.section,
                    deadline_ms: cfg.deadline_ms.unwrap_or(0),
                });
            }
        }
        return Err(e);
    }

    // Delta coalesce: fold the finished per-worker buffers into the
    // shared shards, in worker-index order (then slot-name order inside
    // each buffer) — the deterministic fold DESIGN.md §14 specifies. A
    // poisoned or panicking merge is contained exactly like a worker
    // panic so the supervisor can descend the ladder to plain Sharded.
    let mut delta = DeltaSnapshot::default();
    if delta_on {
        let mut bufs = delta_out.into_inner();
        bufs.sort_by_key(|(w, _)| *w);
        let mut merge_sizes: Vec<u64> = Vec::new();
        if let WorldStore::Sharded(sw) = world {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                for (_, buf) in bufs {
                    delta.lock_elisions += buf.lock_elisions;
                    if buf.is_empty() {
                        continue;
                    }
                    if injector.delta_poison_now() {
                        panic!("{DELTA_POISON_MSG}");
                    }
                    delta.coalesces += 1;
                    delta.applies += buf.applies;
                    let slots = sw.coalesce_delta(registry, buf);
                    delta.merged_slots += slots;
                    merge_sizes.push(slots);
                }
            }))
            .map_err(|payload| ExecError::WorkerFailed {
                stage: "__delta_coalesce".into(),
                cause: panic_message(&*payload),
            })?;
        }
        if let Some(ms) = msink {
            let mut reg = MetricsRegistry::new();
            for slots in merge_sizes {
                reg.observe("delta.merge_slots", slots);
            }
            ms.publish(&reg);
        }
    }
    let meta = sink.map(|_| SectionMeta {
        section: section_ord,
        stage_desc: plan.stage_desc.clone(),
        worker_stage: plan.workers.iter().map(|w| w.stage).collect(),
        locks: plan.locks.iter().map(|l| l.set.clone()).collect(),
        queues: plan.queues.iter().map(|q| (q.id, q.what.clone())).collect(),
        queue_spins,
        span: (sec_start, epoch.elapsed().as_nanos() as u64),
    });
    Ok(SectionOutcome {
        watchdog: watchdog.map(|wd| wd.report()).unwrap_or_default(),
        drained,
        full_spins,
        empty_spins,
        meta,
        delta,
    })
}

/// Round-robin flush of every staged queue push. Never parks on one full
/// queue while another staged queue could make progress (a consumer
/// blocked on queue B must not be starved by our full queue A), so the
/// staging layer cannot introduce cross-queue deadlocks. Returns `false`
/// when the section was canceled mid-flush.
fn flush_staged(ctx: &SectionCtx<'_>, staged: &mut [Vec<u64>]) -> bool {
    loop {
        let mut remaining = false;
        for (q, buf) in staged.iter_mut().enumerate() {
            if buf.is_empty() {
                continue;
            }
            let sent = ctx.queues[q].push_n(buf);
            if sent > 0 {
                buf.drain(..sent);
            }
            remaining |= !buf.is_empty();
        }
        if !remaining {
            return true;
        }
        if ctx.cancel.load(Ordering::Relaxed) {
            return false;
        }
        std::thread::yield_now();
    }
}

/// One worker's execution; every failure mode returns an error.
///
/// When telemetry is on, timed spans accumulate into the caller-owned
/// `spans` buffer (published by the spawn wrapper with one batch, even
/// when this loop errors or panics).
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    ctx: &SectionCtx<'_>,
    widx: usize,
    func: &str,
    tid: i64,
    nt: i64,
    mut globals: SharedGlobals,
    spans: &mut Vec<SpanRecord>,
) -> Result<(), ExecError> {
    let canceled = || ExecError::Canceled { stage: func.into() };
    let mut vm = EngineVm::for_name(ctx.module, ctx.bc, func, &[Value::Int(tid), Value::Int(nt)])?;
    let telemetry_on = ctx.telemetry.is_some();
    // Metrics accumulate into worker-private state and publish once at
    // normal exit; failed/canceled workers drop their partial metrics
    // (exactly like their partial delta buffers).
    let metrics_on = ctx.metrics.is_some();
    let mut mloc = metrics_on.then(MetricsLocal::new);
    let mut mreg = metrics_on.then(MetricsRegistry::new);
    if ctx.trace.is_some() || telemetry_on {
        vm.watch_calls_matching("__commset_region_");
    }
    // Monotonic timestamps for trace records and telemetry spans:
    // nanoseconds since the run's epoch. Only evaluated at event sites,
    // and only when tracing or telemetry is on.
    let now = || ctx.epoch.elapsed().as_nanos() as u64;
    let sec = ctx.section_ord;
    let span = |worker_spans: &mut Vec<SpanRecord>, start: u64, end: u64, kind: SpanKind| {
        worker_spans.push(SpanRecord {
            section: sec,
            worker: widx,
            start,
            end,
            kind,
        });
    };
    // Open commutative-region instances (enter seen, exit pending).
    let mut region_stack: Vec<(String, u64)> = Vec::new();
    // Lock rank -> grant timestamp of the currently held lock.
    let mut lock_held: HashMap<usize, u64> = HashMap::new();
    let mut tx_start: u64 = 0;
    let mut in_tx = false;
    // DSWP queue batching: producer-side staging buffers (published with
    // one `push_n` per batch) and consumer-side refill buffers (refilled
    // with one `pop_n` per batch). Invariant: *all* staged pushes are
    // flushed before this worker enters any blocking wait — a lock
    // acquisition, a TM begin, a blocking pop, or its own exit — so no
    // sibling can wait forever on a value parked in our staging buffer.
    let batch = ctx.queue_batch;
    // Delta privatization: merge-covered world calls land here instead of
    // taking any shard lock; the buffer is handed to the section barrier
    // at exit for the deterministic coalesce.
    let mut delta_buf = ctx.delta.then(DeltaBuffer::new);
    let mut staged: Vec<Vec<u64>> = (0..ctx.queues.len()).map(|_| Vec::new()).collect();
    let mut refill: Vec<VecDeque<u64>> = (0..ctx.queues.len()).map(|_| VecDeque::new()).collect();
    let mut scratch: Vec<u64> = Vec::new();
    loop {
        if ctx.cancel.load(Ordering::Relaxed) {
            return Err(canceled());
        }
        // Sampled before the step so a retired op attributes to the site
        // that produced it.
        let site = if metrics_on { vm.bc_site() } else { None };
        let step = vm.step(&mut globals)?;
        if ctx.trace.is_some() || telemetry_on {
            for ev in vm.drain_call_events() {
                let t = now();
                if ev.enter {
                    if telemetry_on {
                        region_stack.push((ev.func.clone(), t));
                    }
                    if let Some(tr) = ctx.trace {
                        tr.record(
                            widx,
                            t,
                            TraceEvent::RegionEnter {
                                func: ev.func,
                                args: ev.args,
                            },
                        );
                    }
                } else {
                    if telemetry_on {
                        if let Some((f, t0)) = region_stack.pop() {
                            span(spans, t0, t, SpanKind::Region { func: f });
                        }
                    }
                    if let Some(tr) = ctx.trace {
                        tr.record(widx, t, TraceEvent::RegionExit { func: ev.func });
                    }
                }
            }
        }
        match step {
            StepOutcome::Ran { cost } => {
                if let (Some(ml), Some(site), Some(bcm)) = (mloc.as_mut(), site, ctx.bc) {
                    ml.retire(bcm, site, cost);
                }
            }
            StepOutcome::Finished(_) => {
                // Publish any staged queue values before exiting.
                if !flush_staged(ctx, &mut staged) {
                    return Err(canceled());
                }
                // Hand the private delta buffer to the section barrier.
                // Failed/canceled workers never get here, so their partial
                // deltas are dropped with the failed section.
                if let Some(buf) = delta_buf.take() {
                    if !buf.is_empty() || buf.lock_elisions > 0 {
                        ctx.delta_out.lock().push((widx, buf));
                    }
                }
                // Publish this worker's metrics in one batch.
                if let Some(ms) = ctx.metrics {
                    let mut reg = mreg.take().unwrap_or_default();
                    if let (Some(ml), Some(bcm)) = (mloc.as_ref(), ctx.bc) {
                        ml.publish(ctx.module, bcm, &mut reg);
                    }
                    ms.publish(&reg);
                }
                return Ok(());
            }
            StepOutcome::Special(p) => {
                let name = ctx.module.intrinsics.name(p.intrinsic.0 as usize);
                // Periodic stalls plus the persistent slow-worker drag.
                let stall = ctx.injector.worker_stall(tid) + ctx.injector.slow_worker(tid);
                if stall > 0 {
                    std::thread::sleep(Duration::from_micros(stall));
                }
                match name {
                    "__lock_acquire" => {
                        let l = p.args[0].as_int() as usize;
                        if ctx.elided.get(l).copied().unwrap_or(false) {
                            // Delta privatization covers everything this
                            // lock guards: proceed without touching it.
                            if let Some(buf) = delta_buf.as_mut() {
                                buf.lock_elisions += 1;
                            }
                            vm.resolve_special(Value::Int(0));
                            continue;
                        }
                        // Blocking wait ahead: publish staged values first.
                        if !flush_staged(ctx, &mut staged) {
                            return Err(canceled());
                        }
                        if let Some(wd) = ctx.watchdog {
                            wd.acquiring(widx, l);
                        }
                        let t0 = if telemetry_on || metrics_on { now() } else { 0 };
                        if !ctx.locks[l].acquire_canceling(ctx.cancel) {
                            if let Some(wd) = ctx.watchdog {
                                wd.wait_abandoned(widx);
                            }
                            return Err(canceled());
                        }
                        if telemetry_on || metrics_on {
                            let t1 = now();
                            if telemetry_on {
                                span(spans, t0, t1, SpanKind::LockWait { rank: l });
                            }
                            if let Some(mr) = mreg.as_mut() {
                                mr.observe(
                                    &format!("lock_wait.{}", ctx.lock_sets[l]),
                                    t1.saturating_sub(t0),
                                );
                            }
                        }
                        if let Some(wd) = ctx.watchdog {
                            wd.acquired(widx, l);
                        }
                        let delay = ctx.injector.lock_grant_delay();
                        if delay > 0 {
                            std::thread::sleep(Duration::from_micros(delay));
                        }
                        if telemetry_on {
                            lock_held.insert(l, now());
                        }
                        vm.resolve_special(Value::Int(0));
                        if let Some(tr) = ctx.trace {
                            tr.record(widx, now(), TraceEvent::LockAcquire { lock: l });
                        }
                    }
                    "__lock_release" => {
                        let l = p.args[0].as_int() as usize;
                        if ctx.elided.get(l).copied().unwrap_or(false) {
                            vm.resolve_special(Value::Int(0));
                            continue;
                        }
                        if telemetry_on {
                            if let Some(t0) = lock_held.remove(&l) {
                                span(spans, t0, now(), SpanKind::LockHold { rank: l });
                            }
                        }
                        ctx.locks[l].release();
                        if let Some(wd) = ctx.watchdog {
                            wd.released(widx, l);
                        }
                        vm.resolve_special(Value::Int(0));
                        if let Some(tr) = ctx.trace {
                            tr.record(widx, now(), TraceEvent::LockRelease { lock: l });
                        }
                    }
                    "__q_push" | "__q_push_f" => {
                        let id = p.args[0].as_int();
                        let q = *ctx
                            .queue_index
                            .get(&id)
                            .ok_or(ExecError::UnknownQueue { id })?;
                        let qs = ctx.injector.queue_stall_delay();
                        if qs > 0 {
                            std::thread::sleep(Duration::from_micros(qs));
                        }
                        staged[q].push(p.args[1].to_bits());
                        if staged[q].len() >= batch {
                            let t0 = if telemetry_on { now() } else { 0 };
                            if !flush_staged(ctx, &mut staged) {
                                return Err(canceled());
                            }
                            if telemetry_on {
                                let t1 = now();
                                if t1 > t0 {
                                    span(spans, t0, t1, SpanKind::QueuePushWait { queue: id });
                                }
                            }
                        }
                        if telemetry_on {
                            let t = now();
                            span(spans, t, t, SpanKind::QueuePush { queue: id });
                        }
                        if let Some(mr) = mreg.as_mut() {
                            mr.observe(
                                &format!("queue_occupancy.{id}"),
                                ctx.queues[q].len() as u64,
                            );
                        }
                        vm.resolve_special(Value::Int(0));
                        if let Some(tr) = ctx.trace {
                            tr.record(widx, now(), TraceEvent::QueuePush { queue: id });
                        }
                    }
                    "__q_pop" | "__q_pop_f" => {
                        let id = p.args[0].as_int();
                        let q = *ctx
                            .queue_index
                            .get(&id)
                            .ok_or(ExecError::UnknownQueue { id })?;
                        let qs = ctx.injector.queue_stall_delay();
                        if qs > 0 {
                            std::thread::sleep(Duration::from_micros(qs));
                        }
                        let bits = match refill[q].pop_front() {
                            Some(b) => b,
                            None => {
                                // Blocking wait ahead: publish staged
                                // values first, then take one value
                                // (blocking) and opportunistically batch
                                // up whatever else is already there.
                                let t0 = if telemetry_on { now() } else { 0 };
                                if !flush_staged(ctx, &mut staged) {
                                    return Err(canceled());
                                }
                                let Some(first) = ctx.queues[q].pop_canceling(ctx.cancel) else {
                                    return Err(canceled());
                                };
                                if telemetry_on {
                                    let t1 = now();
                                    if t1 > t0 {
                                        span(spans, t0, t1, SpanKind::QueuePopWait { queue: id });
                                    }
                                }
                                if batch > 1 {
                                    scratch.clear();
                                    ctx.queues[q].pop_n(&mut scratch, batch - 1);
                                    refill[q].extend(scratch.drain(..));
                                }
                                first
                            }
                        };
                        if telemetry_on {
                            let t = now();
                            span(spans, t, t, SpanKind::QueuePop { queue: id });
                        }
                        if let Some(mr) = mreg.as_mut() {
                            mr.observe(
                                &format!("queue_occupancy.{id}"),
                                ctx.queues[q].len() as u64,
                            );
                        }
                        vm.resolve_special(Value::from_bits(bits, name == "__q_pop_f"));
                        if let Some(tr) = ctx.trace {
                            tr.record(widx, now(), TraceEvent::QueuePop { queue: id });
                        }
                    }
                    "__tx_begin" => {
                        // Blocking wait ahead: publish staged values first.
                        if !flush_staged(ctx, &mut staged) {
                            return Err(canceled());
                        }
                        if !ctx.tm_lock.acquire_canceling(ctx.cancel) {
                            return Err(canceled());
                        }
                        if telemetry_on {
                            tx_start = now();
                        }
                        in_tx = true;
                        vm.resolve_special(Value::Int(0));
                    }
                    "__tx_commit" => {
                        if !in_tx {
                            return Err(ExecError::TxCommitWithoutBegin);
                        }
                        if telemetry_on {
                            // Pessimistic TM: the window commits, no aborts.
                            span(spans, tx_start, now(), SpanKind::Tx { aborts: 0 });
                        }
                        if let Some(mr) = mreg.as_mut() {
                            // Pessimistic TM here: every window commits.
                            mr.inc("tm.commits", 1);
                        }
                        ctx.tm_lock.release();
                        in_tx = false;
                        vm.resolve_special(Value::Int(0));
                    }
                    "__par_invoke" => return Err(ExecError::NestedParallelSection),
                    _ => {
                        // Delta fast path: a call whose entire slot
                        // footprint is merge-declared runs against the
                        // worker-private buffer — no shard lock, no STM.
                        if let Some(buf) = delta_buf.as_mut() {
                            if let Some(slots) = ctx.registry.delta_route(name, &p.args) {
                                let t0 = if telemetry_on || metrics_on { now() } else { 0 };
                                let out = buf.apply(ctx.registry, name, &p.args, &slots);
                                if telemetry_on || metrics_on {
                                    let t1 = now();
                                    if telemetry_on {
                                        span(
                                            spans,
                                            t0,
                                            t1,
                                            SpanKind::WorldCall {
                                                intrinsic: name.to_string(),
                                            },
                                        );
                                    }
                                    if let Some(mr) = mreg.as_mut() {
                                        mr.observe(
                                            &format!("world_call.{name}"),
                                            t1.saturating_sub(t0),
                                        );
                                    }
                                }
                                vm.resolve_special(out.value);
                                if let Some(tr) = ctx.trace {
                                    tr.record(
                                        widx,
                                        now(),
                                        TraceEvent::WorldCall {
                                            intrinsic: name.to_string(),
                                            args: p.args.clone(),
                                        },
                                    );
                                }
                                continue;
                            }
                        }
                        // World calls never wait on queues (handlers only
                        // touch world slots), so staged pushes can stay
                        // parked across them: shard/world locks are leaf
                        // locks and cannot be held by a sibling that is
                        // blocked on one of our queues.
                        let obs = ShardObserver {
                            watchdog: ctx.watchdog,
                            worker: widx,
                            rank_base: ctx.locks.len(),
                            injector: Some(ctx.injector),
                        };
                        let t0 = if telemetry_on || metrics_on { now() } else { 0 };
                        let out = ctx.world.call(ctx.registry, name, &p.args, &obs);
                        if telemetry_on || metrics_on {
                            let t1 = now();
                            if telemetry_on {
                                span(
                                    spans,
                                    t0,
                                    t1,
                                    SpanKind::WorldCall {
                                        intrinsic: name.to_string(),
                                    },
                                );
                            }
                            if let Some(mr) = mreg.as_mut() {
                                mr.observe(&format!("world_call.{name}"), t1.saturating_sub(t0));
                            }
                        }
                        vm.resolve_special(out.value);
                        if let Some(tr) = ctx.trace {
                            tr.record(
                                widx,
                                now(),
                                TraceEvent::WorldCall {
                                    intrinsic: name.to_string(),
                                    args: p.args.clone(),
                                },
                            );
                        }
                    }
                }
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(e) = payload.downcast_ref::<SlotError>() {
        // World wiring bugs unwind with a typed payload (see
        // `commset_runtime::world`): surface the structured message.
        e.to_string()
    } else {
        "worker panicked (non-string payload)".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commset_analysis::depanalysis::analyze_commutativity;
    use commset_analysis::effects::summarize;
    use commset_analysis::hotloop::find_hot_loop;
    use commset_analysis::metadata::manage;
    use commset_analysis::pdg::Pdg;
    use commset_analysis::scc::dag_scc;
    use commset_ir::{lower_program, IntrinsicTable};
    use commset_lang::ast::Type;
    use commset_runtime::intrinsics::IntrinsicOutcome;
    use commset_runtime::FaultPlan;
    use commset_transform::{doall, dswp};
    use std::collections::BTreeSet;

    fn table() -> IntrinsicTable {
        let mut t = IntrinsicTable::new();
        t.register("add_acc", vec![Type::Int], Type::Void, &[], &["ACC"], 50);
        t.register("double", vec![Type::Int], Type::Int, &[], &[], 50);
        t.register("emit", vec![Type::Int], Type::Void, &[], &["OUT"], 20);
        t
    }

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register("add_acc", |world, args| {
            *world.get_mut::<i64>("acc") += args[0].as_int();
            IntrinsicOutcome::unit()
        });
        r.register("double", |_, args| {
            IntrinsicOutcome::value(args[0].as_int() * 2)
        });
        r.register("emit", |world, args| {
            world.get_mut::<Vec<i64>>("out").push(args[0].as_int());
            IntrinsicOutcome::unit()
        });
        r
    }

    fn compile_doall(src: &str, nthreads: usize, sync: SyncMode) -> (Module, ParallelPlan) {
        let table = table();
        let unit = commset_lang::compile_unit(src).unwrap();
        let managed = manage(unit).unwrap();
        let summaries = summarize(&managed.program, &table);
        let hot = find_hot_loop(&managed, &summaries, &table, "main").unwrap();
        let mut pdg = Pdg::build(&hot);
        analyze_commutativity(&mut pdg, &managed, &hot);
        let pp = doall::apply_doall(
            &managed,
            &hot,
            &pdg,
            &summaries,
            &BTreeSet::new(),
            nthreads,
            sync,
            0,
        )
        .unwrap();
        let module = lower_program(&pp.program, table).unwrap();
        (module, pp.plan)
    }

    const SUM_SRC: &str = r#"
        extern void add_acc(int v);
        int main() {
            int n = 200;
            for (int i = 0; i < n; i = i + 1) {
                #pragma CommSet(SELF)
                { add_acc(i); }
            }
            return 0;
        }
    "#;

    #[test]
    fn threaded_doall_sums_correctly() {
        let (module, plan) = compile_doall(SUM_SRC, 4, SyncMode::Spin);
        let mut world = World::new();
        world.install("acc", 0i64);
        let out = run_threaded(&module, &registry(), &[plan], world).unwrap();
        assert_eq!(*out.world.get::<i64>("acc"), (0..200).sum::<i64>());
        assert!(out.stats.watchdog.is_clean(), "{:?}", out.stats.watchdog);
    }

    #[test]
    fn threaded_pipeline_preserves_order() {
        let src = r#"
            extern int double(int x);
            extern void emit(int y);
            int main() {
                int n = 100;
                for (int i = 0; i < n; i = i + 1) {
                    int y = double(i);
                    emit(y);
                }
                return 0;
            }
        "#;
        let table = table();
        let unit = commset_lang::compile_unit(src).unwrap();
        let managed = manage(unit).unwrap();
        let summaries = summarize(&managed.program, &table);
        let hot = find_hot_loop(&managed, &summaries, &table, "main").unwrap();
        let mut pdg = Pdg::build(&hot);
        analyze_commutativity(&mut pdg, &managed, &hot);
        let dag = dag_scc(&pdg);
        let pp = dswp::apply_ps_dswp(
            &managed,
            &hot,
            &pdg,
            &dag,
            &summaries,
            &["OUT".to_string()].into(),
            4,
            SyncMode::Lib,
            0,
        )
        .unwrap();
        let module = lower_program(&pp.program, table).unwrap();
        let mut world = World::new();
        world.install("out", Vec::<i64>::new());
        let out = run_threaded(&module, &registry(), &[pp.plan], world).unwrap();
        let produced = out.world.get::<Vec<i64>>("out");
        let expected: Vec<i64> = (0..100).map(|i| i * 2).collect();
        assert_eq!(produced, &expected);
    }

    #[test]
    fn threaded_trace_observes_every_region_instance() {
        let (module, plan) = compile_doall(SUM_SRC, 3, SyncMode::Spin);
        let mut world = World::new();
        world.install("acc", 0i64);
        let sink = crate::trace::TraceSink::new();
        let cfg = ExecConfig::with_trace(sink.clone());
        let out = run_threaded_with(&module, &registry(), &[plan], world, &cfg).unwrap();
        assert_eq!(*out.world.get::<i64>("acc"), (0..200).sum::<i64>());
        let recs = sink.take();
        let enters: Vec<&crate::trace::TraceRecord> = recs
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::RegionEnter { .. }))
            .collect();
        assert_eq!(enters.len(), 200, "one region instance per iteration");
        // Per-worker times strictly increase: the per-worker subsequence
        // is a valid logical order.
        for w in 0..3 {
            let times: Vec<u64> = recs
                .iter()
                .filter(|r| r.worker == w)
                .map(|r| r.time)
                .collect();
            assert!(
                times.windows(2).all(|p| p[0] <= p[1]),
                "worker {w}: {times:?}"
            );
        }
        assert!(recs
            .iter()
            .any(|r| matches!(r.event, TraceEvent::LockAcquire { .. })));
    }

    #[test]
    fn telemetry_attaches_report_and_stays_opt_in() {
        let (module, plan) = compile_doall(SUM_SRC, 3, SyncMode::Spin);
        let mut world = World::new();
        world.install("acc", 0i64);
        let cfg = ExecConfig {
            telemetry: true,
            ..ExecConfig::default()
        };
        let out = run_threaded_with(&module, &registry(), &[plan], world, &cfg).unwrap();
        assert_eq!(*out.world.get::<i64>("acc"), (0..200).sum::<i64>());
        let report = out.telemetry.expect("telemetry on must attach a report");
        assert_eq!(report.sections.len(), 1);
        let s = &report.sections[0];
        assert_eq!(s.workers.len(), 3);
        assert_eq!(
            s.workers.iter().map(|w| w.regions).sum::<u64>(),
            200,
            "every region instance must be spanned"
        );
        assert!(s.locks[0].acquires > 0, "{:?}", s.locks);
        assert!(s.workers.iter().all(|w| w.total > 0));
        // Off by default: no report, no span cost.
        let (module2, plan2) = compile_doall(SUM_SRC, 3, SyncMode::Spin);
        let mut world2 = World::new();
        world2.install("acc", 0i64);
        let out2 = run_threaded(&module2, &registry(), &[plan2], world2).unwrap();
        assert!(out2.telemetry.is_none());
    }

    #[test]
    fn metrics_and_journal_attach_and_stay_opt_in() {
        let (module, plan) = compile_doall(SUM_SRC, 3, SyncMode::Spin);
        let mut world = World::new();
        world.install("acc", 0i64);
        let journal = commset_telemetry::Journal::new(42);
        let cfg = ExecConfig {
            metrics: true,
            journal: Some(journal.clone()),
            ..ExecConfig::default()
        };
        let out = run_threaded_with(&module, &registry(), &[plan], world, &cfg).unwrap();
        assert_eq!(*out.world.get::<i64>("acc"), (0..200).sum::<i64>());
        let reg = out.metrics.expect("metrics on must attach a registry");
        assert!(!reg.opcodes().is_empty(), "opcode retires recorded");
        assert!(
            reg.blocks().keys().all(|k| k.contains(":bb")),
            "{:?}",
            reg.blocks()
        );
        assert!(
            reg.hists().keys().any(|k| k.starts_with("lock_wait.")),
            "lock waits observed: {:?}",
            reg.hists().keys().collect::<Vec<_>>()
        );
        let jsonl = journal.to_jsonl();
        for kind in ["section_start", "worker_done", "section_end", "metrics"] {
            assert!(jsonl.contains(&format!("\"kind\":\"{kind}\"")), "{jsonl}");
        }
        // Off by default: no registry attached.
        let (module2, plan2) = compile_doall(SUM_SRC, 3, SyncMode::Spin);
        let mut world2 = World::new();
        world2.install("acc", 0i64);
        let out2 = run_threaded(&module2, &registry(), &[plan2], world2).unwrap();
        assert!(out2.metrics.is_none());
    }

    #[test]
    fn worker_dynamic_error_is_contained_and_named() {
        // Division by zero at i == 50 inside one worker's slice.
        let src = r#"
            extern void add_acc(int v);
            int main() {
                int n = 200;
                for (int i = 0; i < n; i = i + 1) {
                    int z = 100 / (50 - i);
                    #pragma CommSet(SELF)
                    { add_acc(z); }
                }
                return 0;
            }
        "#;
        let (module, plan) = compile_doall(src, 4, SyncMode::Spin);
        let mut world = World::new();
        world.install("acc", 0i64);
        let err = run_threaded(&module, &registry(), &[plan], world).unwrap_err();
        match err {
            ExecError::WorkerFailed { stage, cause } => {
                assert!(stage.starts_with("__par"), "stage: {stage}");
                assert!(cause.contains("division by zero"), "cause: {cause}");
            }
            other => panic!("expected WorkerFailed, got {other}"),
        }
    }

    #[test]
    fn intrinsic_panic_is_contained_and_siblings_cancel() {
        // The panicking intrinsic fires mid-pipeline, leaving the consumer
        // blocked on its queue: cancellation must unblock it and the run
        // must report the panic message, not abort the process.
        let src = r#"
            extern int double(int x);
            extern void emit(int y);
            int main() {
                int n = 100;
                for (int i = 0; i < n; i = i + 1) {
                    int y = double(i);
                    emit(y);
                }
                return 0;
            }
        "#;
        let table = table();
        let unit = commset_lang::compile_unit(src).unwrap();
        let managed = manage(unit).unwrap();
        let summaries = summarize(&managed.program, &table);
        let hot = find_hot_loop(&managed, &summaries, &table, "main").unwrap();
        let mut pdg = Pdg::build(&hot);
        analyze_commutativity(&mut pdg, &managed, &hot);
        let dag = dag_scc(&pdg);
        let pp = dswp::apply_ps_dswp(
            &managed,
            &hot,
            &pdg,
            &dag,
            &summaries,
            &["OUT".to_string()].into(),
            4,
            SyncMode::Lib,
            0,
        )
        .unwrap();
        let module = lower_program(&pp.program, table).unwrap();
        let mut reg = Registry::new();
        reg.register("double", |_, args| {
            let x = args[0].as_int();
            if x == 30 {
                panic!("intrinsic blew up at 30");
            }
            IntrinsicOutcome::value(x * 2)
        });
        reg.register("emit", |world, args| {
            world.get_mut::<Vec<i64>>("out").push(args[0].as_int());
            IntrinsicOutcome::unit()
        });
        let mut world = World::new();
        world.install("out", Vec::<i64>::new());
        let err = run_threaded(&module, &reg, &[pp.plan], world).unwrap_err();
        match err {
            ExecError::WorkerFailed { cause, .. } => {
                assert!(cause.contains("intrinsic blew up at 30"), "cause: {cause}");
            }
            other => panic!("expected WorkerFailed, got {other}"),
        }
    }

    #[test]
    fn missing_world_slot_maps_to_worker_failed_not_abort() {
        // The registry expects "acc" but the world never installs it: the
        // SlotError panic must surface as a structured WorkerFailed from
        // the failing stage, with the slot named in the cause.
        let (module, plan) = compile_doall(SUM_SRC, 2, SyncMode::Spin);
        let err = run_threaded(&module, &registry(), &[plan], World::new()).unwrap_err();
        match err {
            ExecError::WorkerFailed { cause, .. } => {
                assert!(
                    cause.contains("world slot `acc` is not installed"),
                    "cause: {cause}"
                );
            }
            other => panic!("expected WorkerFailed, got {other}"),
        }
    }

    #[test]
    fn main_thread_slot_error_maps_to_worker_failed() {
        // A sequential (outside-section) intrinsic with a bad slot must be
        // contained on the main thread too.
        let src = r#"
            extern void add_acc(int v);
            int main() {
                add_acc(1);
                return 0;
            }
        "#;
        let table = table();
        let unit = commset_lang::compile_unit(src).unwrap();
        let managed = manage(unit).unwrap();
        let module = lower_program(&managed.program, table).unwrap();
        // Wrong type: "acc" holds a String, the handler wants i64.
        let mut world = World::new();
        world.install("acc", String::from("oops"));
        let err = run_threaded(&module, &registry(), &[], world).unwrap_err();
        match err {
            ExecError::WorkerFailed { stage, cause } => {
                assert_eq!(stage, "main");
                assert!(
                    cause.contains("world slot `acc` has an unexpected type"),
                    "cause: {cause}"
                );
            }
            other => panic!("expected WorkerFailed, got {other}"),
        }
    }

    #[test]
    fn sharded_world_matches_single_lock_results() {
        use commset_runtime::SlotBinding;
        for mode in [WorldMode::SingleLock, WorldMode::Sharded] {
            let (module, plan) = compile_doall(SUM_SRC, 4, SyncMode::Spin);
            let mut reg = registry();
            reg.bind("add_acc", vec![SlotBinding::Fixed("acc".into())]);
            let mut world = World::new();
            world.install("acc", 0i64);
            let cfg = ExecConfig {
                world: mode,
                ..ExecConfig::default()
            };
            let out = run_threaded_with(&module, &reg, &[plan], world, &cfg).unwrap();
            assert_eq!(
                *out.world.get::<i64>("acc"),
                (0..200).sum::<i64>(),
                "{mode:?}"
            );
            assert!(out.stats.watchdog.is_clean(), "{:?}", out.stats.watchdog);
            match mode {
                WorldMode::Sharded => assert!(
                    out.stats.shard.fast_acquires > 0,
                    "bound intrinsic must use the fast path: {:?}",
                    out.stats.shard
                ),
                _ => assert_eq!(out.stats.shard, ShardStatsSnapshot::default()),
            }
        }
    }

    #[test]
    fn auto_mode_picks_sharded_when_bindings_exist() {
        use commset_runtime::SlotBinding;
        let (module, plan) = compile_doall(SUM_SRC, 3, SyncMode::Spin);
        let mut reg = registry();
        reg.bind("add_acc", vec![SlotBinding::Fixed("acc".into())]);
        let mut world = World::new();
        world.install("acc", 0i64);
        let out = run_threaded(&module, &reg, &[plan], world).unwrap();
        assert_eq!(*out.world.get::<i64>("acc"), (0..200).sum::<i64>());
        assert!(out.stats.shard.fast_acquires > 0, "{:?}", out.stats.shard);
        // Without bindings, Auto stays on the single lock.
        let (module2, plan2) = compile_doall(SUM_SRC, 3, SyncMode::Spin);
        let mut world2 = World::new();
        world2.install("acc", 0i64);
        let out2 = run_threaded(&module2, &registry(), &[plan2], world2).unwrap();
        assert_eq!(out2.stats.shard, ShardStatsSnapshot::default());
    }

    #[test]
    fn pipeline_results_hold_across_queue_batch_sizes() {
        let src = r#"
            extern int double(int x);
            extern void emit(int y);
            int main() {
                int n = 100;
                for (int i = 0; i < n; i = i + 1) {
                    int y = double(i);
                    emit(y);
                }
                return 0;
            }
        "#;
        let expected: Vec<i64> = (0..100).map(|i| i * 2).collect();
        for qb in [1usize, 2, 8, 64] {
            let table = table();
            let unit = commset_lang::compile_unit(src).unwrap();
            let managed = manage(unit).unwrap();
            let summaries = summarize(&managed.program, &table);
            let hot = find_hot_loop(&managed, &summaries, &table, "main").unwrap();
            let mut pdg = Pdg::build(&hot);
            analyze_commutativity(&mut pdg, &managed, &hot);
            let dag = dag_scc(&pdg);
            let pp = dswp::apply_ps_dswp(
                &managed,
                &hot,
                &pdg,
                &dag,
                &summaries,
                &["OUT".to_string()].into(),
                4,
                SyncMode::Lib,
                0,
            )
            .unwrap();
            let module = lower_program(&pp.program, table).unwrap();
            let mut world = World::new();
            world.install("out", Vec::<i64>::new());
            let cfg = ExecConfig {
                queue_batch: qb,
                ..ExecConfig::default()
            };
            let out = run_threaded_with(&module, &registry(), &[pp.plan], world, &cfg).unwrap();
            assert_eq!(
                out.world.get::<Vec<i64>>("out"),
                &expected,
                "queue_batch = {qb}"
            );
        }
    }

    #[test]
    fn fault_plans_leave_threaded_results_intact() {
        for fault in [
            FaultPlan::lock_delay(9, 40),
            FaultPlan::worker_stall(9, 1, 60),
            FaultPlan::queue_pushback(9),
        ] {
            let (module, plan) = compile_doall(SUM_SRC, 3, SyncMode::Mutex);
            let mut world = World::new();
            world.install("acc", 0i64);
            let cfg = ExecConfig::with_fault(fault.clone());
            let out = run_threaded_with(&module, &registry(), &[plan], world, &cfg).unwrap();
            assert_eq!(
                *out.world.get::<i64>("acc"),
                (0..200).sum::<i64>(),
                "fault {fault:?} must not change results"
            );
            assert!(out.stats.watchdog.is_clean(), "{:?}", out.stats.watchdog);
        }
    }
}
