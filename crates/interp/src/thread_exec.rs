//! The real-thread executor.
//!
//! Workers run on OS threads with the runtime's lock-free SPSC queues and
//! raw locks; globals live in a shared atomic store and the world behind a
//! mutex. On this reproduction's single-core host it cannot demonstrate
//! speedups — it exists so the correctness tests can validate that the
//! compiled parallel code computes the same results under genuinely
//! concurrent execution. TM mode falls back to a single global mutex here
//! (pessimistic but correct); the simulated executor models optimism.

use crate::globals::{AtomicGlobals, SharedGlobals};
use crate::vm::{StepOutcome, Vm};
use commset_ir::Module;
use commset_runtime::lock::{LockKind, RawLock};
use commset_runtime::{Registry, SpscQueue, Value, World};
use commset_transform::{ParallelPlan, SyncMode};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of a threaded run.
#[derive(Debug)]
pub struct ThreadOutcome {
    /// `main`'s return value.
    pub result: Option<Value>,
    /// Wall-clock duration.
    pub wall: Duration,
    /// The world after execution.
    pub world: World,
}

/// Runs the transformed program on real threads.
///
/// # Panics
///
/// Panics on executor-contract violations (unknown section id) and on VM
/// dynamic errors in any worker.
pub fn run_threaded(
    module: &Module,
    registry: &Registry,
    plans: &[ParallelPlan],
    world: World,
) -> ThreadOutcome {
    let start = Instant::now();
    let shared_globals = AtomicGlobals::new(module);
    let world = Arc::new(Mutex::new(world));
    let mut globals = SharedGlobals::new(Arc::clone(&shared_globals));
    let mut vm = Vm::for_name(module, "main", &[]);
    let result = loop {
        match vm.step(&mut globals) {
            StepOutcome::Ran { .. } => {}
            StepOutcome::Special(p) => {
                let name = module.intrinsics.name(p.intrinsic.0 as usize);
                if name == "__par_invoke" {
                    let section = p.args[0].as_int();
                    let plan = plans
                        .iter()
                        .find(|pl| pl.section == section)
                        .unwrap_or_else(|| panic!("no plan for section {section}"));
                    run_section(module, registry, plan, &shared_globals, &world);
                    vm.resolve_special(Value::Int(0));
                } else {
                    let out = registry.call(name, &mut world.lock(), &p.args);
                    vm.resolve_special(out.value);
                }
            }
            StepOutcome::Finished(v) => break v,
        }
    };
    let world = Arc::try_unwrap(world)
        .expect("all workers joined")
        .into_inner();
    ThreadOutcome {
        result,
        wall: start.elapsed(),
        world,
    }
}

fn run_section(
    module: &Module,
    registry: &Registry,
    plan: &ParallelPlan,
    shared_globals: &Arc<AtomicGlobals>,
    world: &Arc<Mutex<World>>,
) {
    let lock_kind = match plan.sync {
        SyncMode::Spin => LockKind::Spin,
        _ => LockKind::Mutex,
    };
    let locks: Arc<Vec<RawLock>> =
        Arc::new(plan.locks.iter().map(|_| RawLock::new(lock_kind)).collect());
    // TM fallback: one global pessimistic lock.
    let tm_lock = Arc::new(RawLock::new(LockKind::Mutex));
    let mut queue_index: HashMap<i64, usize> = HashMap::new();
    let mut queue_vec: Vec<SpscQueue<u64>> = Vec::new();
    for q in &plan.queues {
        queue_index.insert(q.id, queue_vec.len());
        queue_vec.push(SpscQueue::new(q.capacity));
    }
    let queues = Arc::new(queue_vec);
    let queue_index = Arc::new(queue_index);

    crossbeam::thread::scope(|scope| {
        for w in &plan.workers {
            let locks = Arc::clone(&locks);
            let tm_lock = Arc::clone(&tm_lock);
            let queues = Arc::clone(&queues);
            let queue_index = Arc::clone(&queue_index);
            let world = Arc::clone(world);
            let shared_globals = Arc::clone(shared_globals);
            scope.spawn(move |_| {
                let mut globals = SharedGlobals::new(shared_globals);
                let mut vm =
                    Vm::for_name(module, &w.func, &[Value::Int(w.tid), Value::Int(w.nt)]);
                loop {
                    match vm.step(&mut globals) {
                        StepOutcome::Ran { .. } => {}
                        StepOutcome::Finished(_) => break,
                        StepOutcome::Special(p) => {
                            let name =
                                module.intrinsics.name(p.intrinsic.0 as usize);
                            match name {
                                "__lock_acquire" => {
                                    locks[p.args[0].as_int() as usize].acquire();
                                    vm.resolve_special(Value::Int(0));
                                }
                                "__lock_release" => {
                                    locks[p.args[0].as_int() as usize].release();
                                    vm.resolve_special(Value::Int(0));
                                }
                                "__q_push" | "__q_push_f" => {
                                    let q = queue_index[&p.args[0].as_int()];
                                    queues[q].push_blocking(p.args[1].to_bits());
                                    vm.resolve_special(Value::Int(0));
                                }
                                "__q_pop" | "__q_pop_f" => {
                                    let q = queue_index[&p.args[0].as_int()];
                                    let bits = queues[q].pop_blocking();
                                    vm.resolve_special(Value::from_bits(
                                        bits,
                                        name == "__q_pop_f",
                                    ));
                                }
                                "__tx_begin" => {
                                    tm_lock.acquire();
                                    vm.resolve_special(Value::Int(0));
                                }
                                "__tx_commit" => {
                                    tm_lock.release();
                                    vm.resolve_special(Value::Int(0));
                                }
                                "__par_invoke" => {
                                    panic!("nested parallel sections are not supported")
                                }
                                _ => {
                                    let out = {
                                        let mut w = world.lock();
                                        registry.call(name, &mut w, &p.args)
                                    };
                                    vm.resolve_special(out.value);
                                }
                            }
                        }
                    }
                }
            });
        }
    })
    .expect("worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use commset_analysis::depanalysis::analyze_commutativity;
    use commset_analysis::effects::summarize;
    use commset_analysis::hotloop::find_hot_loop;
    use commset_analysis::metadata::manage;
    use commset_analysis::pdg::Pdg;
    use commset_analysis::scc::dag_scc;
    use commset_ir::{lower_program, IntrinsicTable};
    use commset_lang::ast::Type;
    use commset_runtime::intrinsics::IntrinsicOutcome;
    use commset_transform::{doall, dswp};
    use std::collections::BTreeSet;

    fn table() -> IntrinsicTable {
        let mut t = IntrinsicTable::new();
        t.register("add_acc", vec![Type::Int], Type::Void, &[], &["ACC"], 50);
        t.register("double", vec![Type::Int], Type::Int, &[], &[], 50);
        t.register("emit", vec![Type::Int], Type::Void, &[], &["OUT"], 20);
        t
    }

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register("add_acc", |world, args| {
            *world.get_mut::<i64>("acc") += args[0].as_int();
            IntrinsicOutcome::unit()
        });
        r.register("double", |_, args| {
            IntrinsicOutcome::value(args[0].as_int() * 2)
        });
        r.register("emit", |world, args| {
            world.get_mut::<Vec<i64>>("out").push(args[0].as_int());
            IntrinsicOutcome::unit()
        });
        r
    }

    #[test]
    fn threaded_doall_sums_correctly() {
        let src = r#"
            extern void add_acc(int v);
            int main() {
                int n = 200;
                for (int i = 0; i < n; i = i + 1) {
                    #pragma CommSet(SELF)
                    { add_acc(i); }
                }
                return 0;
            }
        "#;
        let table = table();
        let unit = commset_lang::compile_unit(src).unwrap();
        let managed = manage(unit).unwrap();
        let summaries = summarize(&managed.program, &table);
        let hot = find_hot_loop(&managed, &summaries, &table, "main").unwrap();
        let mut pdg = Pdg::build(&hot);
        analyze_commutativity(&mut pdg, &managed, &hot);
        let pp = doall::apply_doall(
            &managed,
            &hot,
            &pdg,
            &summaries,
            &BTreeSet::new(),
            4,
            SyncMode::Spin,
            0,
        )
        .unwrap();
        let module = lower_program(&pp.program, table).unwrap();
        let mut world = World::new();
        world.install("acc", 0i64);
        let out = run_threaded(&module, &registry(), &[pp.plan], world);
        assert_eq!(*out.world.get::<i64>("acc"), (0..200).sum::<i64>());
    }

    #[test]
    fn threaded_pipeline_preserves_order() {
        let src = r#"
            extern int double(int x);
            extern void emit(int y);
            int main() {
                int n = 100;
                for (int i = 0; i < n; i = i + 1) {
                    int y = double(i);
                    emit(y);
                }
                return 0;
            }
        "#;
        let table = table();
        let unit = commset_lang::compile_unit(src).unwrap();
        let managed = manage(unit).unwrap();
        let summaries = summarize(&managed.program, &table);
        let hot = find_hot_loop(&managed, &summaries, &table, "main").unwrap();
        let mut pdg = Pdg::build(&hot);
        analyze_commutativity(&mut pdg, &managed, &hot);
        let dag = dag_scc(&pdg);
        let pp = dswp::apply_ps_dswp(
            &managed,
            &hot,
            &pdg,
            &dag,
            &summaries,
            &["OUT".to_string()].into(),
            4,
            SyncMode::Lib,
            0,
        )
        .unwrap();
        let module = lower_program(&pp.program, table).unwrap();
        let mut world = World::new();
        world.install("out", Vec::<i64>::new());
        let out = run_threaded(&module, &registry(), &[pp.plan], world);
        let produced = out.world.get::<Vec<i64>>("out");
        let expected: Vec<i64> = (0..100).map(|i| i * 2).collect();
        assert_eq!(produced, &expected);
    }
}
