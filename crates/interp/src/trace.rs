//! Deterministic execution-trace recording.
//!
//! The checker (`commset-checker`) and the test suites need to *observe*
//! what a parallel run did: which commutative-region instances entered and
//! exited on which worker, which locks were taken at which rank, which
//! queue operations moved pipeline values, and which world intrinsics
//! fired. A [`TraceSink`] is a cloneable, thread-safe event log the
//! executors append to when [`crate::ExecConfig::trace`] is set; the cost
//! when unset is a single `Option` check per event site.
//!
//! Records carry a global sequence number (allocation order), the worker
//! index and a timestamp: the simulated executor uses its deterministic
//! logical clocks, the thread executor monotonic nanoseconds since the
//! run's start (the same epoch its telemetry spans use, so traces and
//! profiles align). Under the DES the full record stream is
//! deterministic; under real threads the *per-worker* subsequences are
//! monotonic.

use commset_runtime::sync::Mutex;
use commset_runtime::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One observable event of a parallel execution.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A watched (commutative-region) function was entered.
    RegionEnter {
        /// The outlined region function, e.g. `__commset_region_1`.
        func: String,
        /// The region instance arguments (the CommSet instance key).
        args: Vec<Value>,
    },
    /// A watched function returned.
    RegionExit {
        /// The outlined region function.
        func: String,
    },
    /// A rank-ordered lock was acquired.
    LockAcquire {
        /// Lock index (== rank in the section's plan).
        lock: usize,
    },
    /// A rank-ordered lock was released.
    LockRelease {
        /// Lock index.
        lock: usize,
    },
    /// A pipeline queue push completed.
    QueuePush {
        /// Queue id from the parallel plan.
        queue: i64,
    },
    /// A pipeline queue pop completed.
    QueuePop {
        /// Queue id from the parallel plan.
        queue: i64,
    },
    /// A world intrinsic executed.
    WorldCall {
        /// Intrinsic name.
        intrinsic: String,
        /// Evaluated arguments.
        args: Vec<Value>,
    },
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn args_str(args: &[Value]) -> String {
            args.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        }
        match self {
            TraceEvent::RegionEnter { func, args } => {
                write!(f, "enter {func}({})", args_str(args))
            }
            TraceEvent::RegionExit { func } => write!(f, "exit  {func}"),
            TraceEvent::LockAcquire { lock } => write!(f, "lock+ #{lock}"),
            TraceEvent::LockRelease { lock } => write!(f, "lock- #{lock}"),
            TraceEvent::QueuePush { queue } => write!(f, "push  q{queue}"),
            TraceEvent::QueuePop { queue } => write!(f, "pop   q{queue}"),
            TraceEvent::WorldCall { intrinsic, args } => {
                write!(f, "call  {intrinsic}({})", args_str(args))
            }
        }
    }
}

/// One timestamped trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Global allocation order (unique over the sink's lifetime).
    pub seq: u64,
    /// Worker index within the section (`usize::MAX` for the main thread).
    pub worker: usize,
    /// Worker-local logical time (simulated clock or operation count).
    pub time: u64,
    /// The event.
    pub event: TraceEvent,
}

/// A cloneable, thread-safe event log shared between an executor and its
/// observer. Clones share the same underlying buffer.
#[derive(Clone, Default)]
pub struct TraceSink {
    records: Arc<Mutex<Vec<TraceRecord>>>,
    seq: Arc<AtomicU64>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("records", &self.len())
            .finish()
    }
}

impl TraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// Appends one record, stamping the next sequence number.
    pub fn record(&self, worker: usize, time: u64, event: TraceEvent) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.records.lock().push(TraceRecord {
            seq,
            worker,
            time,
            event,
        });
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns all buffered records in sequence order.
    pub fn take(&self) -> Vec<TraceRecord> {
        let mut out = std::mem::take(&mut *self.records.lock());
        out.sort_by_key(|r| r.seq);
        out
    }

    /// A snapshot of the buffered records in sequence order.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let mut out = self.records.lock().clone();
        out.sort_by_key(|r| r.seq);
        out
    }
}

/// Pretty-prints a record stream, one event per line, for failure reports.
pub fn render(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let worker = if r.worker == usize::MAX {
            "main".to_string()
        } else {
            format!("w{}", r.worker)
        };
        out.push_str(&format!(
            "  [{seq:>4}] {worker:<5} t={time:<8} {event}\n",
            seq = r.seq,
            worker = worker,
            time = r.time,
            event = r.event
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_sequenced_and_takeable() {
        let sink = TraceSink::new();
        sink.record(0, 10, TraceEvent::LockAcquire { lock: 1 });
        sink.record(1, 20, TraceEvent::LockRelease { lock: 1 });
        assert_eq!(sink.len(), 2);
        let recs = sink.take();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, 0);
        assert_eq!(recs[1].seq, 1);
        assert!(sink.is_empty());
    }

    #[test]
    fn clones_share_the_buffer() {
        let a = TraceSink::new();
        let b = a.clone();
        b.record(
            2,
            5,
            TraceEvent::WorldCall {
                intrinsic: "emit".into(),
                args: vec![Value::Int(7)],
            },
        );
        assert_eq!(a.len(), 1);
        let r = a.snapshot();
        assert_eq!(r[0].worker, 2);
        assert_eq!(r[0].event.to_string(), "call  emit(7)");
    }

    #[test]
    fn render_is_stable() {
        let sink = TraceSink::new();
        sink.record(
            0,
            0,
            TraceEvent::RegionEnter {
                func: "__commset_region_1".into(),
                args: vec![Value::Int(3)],
            },
        );
        sink.record(
            0,
            4,
            TraceEvent::RegionExit {
                func: "__commset_region_1".into(),
            },
        );
        let text = render(&sink.snapshot());
        assert!(text.contains("enter __commset_region_1(3)"), "{text}");
        assert!(text.contains("exit  __commset_region_1"), "{text}");
    }
}
