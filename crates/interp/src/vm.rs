//! The resumable Cmm virtual machine.
//!
//! `step()` retires exactly one instruction (or terminator). Calls to
//! program functions push frames internally; calls to *intrinsics* pause
//! the machine with a [`StepOutcome::Special`] event — the executor
//! computes the result (world access, queue/lock interaction, blocking)
//! and resumes the machine with [`Vm::resolve_special`]. This design lets
//! the discrete-event executor interleave many machines deterministically
//! and lets the thread executor block on real primitives, with one VM
//! implementation.
//!
//! Dynamic errors the type system cannot rule out — division by zero,
//! out-of-bounds indexing, mixed-type operations — surface as
//! [`ExecError`] values carrying the current function as source context;
//! the machine never panics on program input.

use crate::error::ExecError;
use commset_ir::repr::{
    Arg, ArrRef, Block, Callee, Const, FuncId, Function, Inst, IntrinsicId, Module, Slot,
    Terminator,
};
use commset_lang::ast::{BinOp, Type, UnOp};
use commset_runtime::Value;

/// An out-of-bounds global-array access, reported by a [`GlobalMem`]
/// backend; the VM attaches function context and converts it to
/// [`ExecError::IndexOutOfBounds`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OobError {
    /// The offending index.
    pub index: i64,
    /// The array's length.
    pub len: usize,
}

/// Global-memory backend used by a VM.
pub trait GlobalMem {
    /// Reads a scalar global.
    fn load(&mut self, g: commset_ir::GlobalId) -> Value;
    /// Writes a scalar global.
    fn store(&mut self, g: commset_ir::GlobalId, v: Value);
    /// Reads a global array element.
    ///
    /// # Errors
    ///
    /// Returns [`OobError`] when `idx` is outside the array.
    fn load_elem(&mut self, g: commset_ir::GlobalId, idx: i64) -> Result<Value, OobError>;
    /// Writes a global array element.
    ///
    /// # Errors
    ///
    /// Returns [`OobError`] when `idx` is outside the array.
    fn store_elem(&mut self, g: commset_ir::GlobalId, idx: i64, v: Value) -> Result<(), OobError>;
}

/// One activation record.
#[derive(Debug)]
struct Frame {
    func: FuncId,
    block: usize,
    idx: usize,
    slots: Vec<Value>,
    arrays: Vec<Vec<Value>>,
    /// Where the caller wants this frame's return value.
    ret_dst: Option<Slot>,
    /// True when this frame belongs to a watched function (call-event
    /// recording, see [`Vm::watch_calls`]).
    watched: bool,
}

/// A call-boundary event of a *watched* function (see
/// [`Vm::watch_calls`]): the trace recorder uses these to observe
/// commutative-region entries and exits, which are ordinary program-function
/// calls invisible to the driving executor.
#[derive(Debug, Clone, PartialEq)]
pub struct CallEvent {
    /// True for an entry (frame push), false for an exit (frame pop).
    pub enter: bool,
    /// The watched function's name.
    pub func: String,
    /// Argument values at entry (empty for exits).
    pub args: Vec<Value>,
    /// Number of watched frames on the stack *after* the event.
    pub depth: usize,
}

#[derive(Debug, Default)]
struct WatchState {
    set: std::collections::BTreeSet<FuncId>,
    events: Vec<CallEvent>,
    depth: usize,
}

/// A pending intrinsic call awaiting its result.
#[derive(Debug, Clone)]
pub struct PendingSpecial {
    /// The intrinsic being called.
    pub intrinsic: IntrinsicId,
    /// Evaluated arguments (string literals become interned handles via
    /// `str_args`).
    pub args: Vec<Value>,
    /// String-literal arguments, position-paired with `args` slots holding
    /// a placeholder `Int(0)`.
    pub str_args: Vec<(usize, String)>,
}

/// What one `step()` did.
#[derive(Debug)]
pub enum StepOutcome {
    /// An instruction retired; `cost` abstract units were spent.
    Ran {
        /// Abstract cost units (the executor scales them).
        cost: u64,
    },
    /// The machine is paused on an intrinsic call; resolve it with
    /// [`Vm::resolve_special`].
    Special(PendingSpecial),
    /// The entry function returned.
    Finished(Option<Value>),
}

/// A resumable virtual machine executing one logical thread.
pub struct Vm<'m> {
    module: &'m Module,
    frames: Vec<Frame>,
    pending: bool,
    finished: bool,
    watch: Option<WatchState>,
}

impl std::fmt::Debug for Vm<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("depth", &self.frames.len())
            .field("pending", &self.pending)
            .field("finished", &self.finished)
            .finish()
    }
}

pub(crate) fn zero_of(ty: Type) -> Value {
    match ty {
        Type::Float => Value::Float(0.0),
        _ => Value::Int(0),
    }
}

fn new_frame(
    f: &Function,
    func: FuncId,
    args: &[Value],
    ret_dst: Option<Slot>,
) -> Result<Frame, ExecError> {
    if args.len() != f.param_count {
        return Err(ExecError::ArityMismatch {
            func: f.name.clone(),
            expected: f.param_count,
            got: args.len(),
        });
    }
    let mut slots: Vec<Value> = f.slots.iter().map(|s| zero_of(s.ty)).collect();
    slots[..args.len()].copy_from_slice(args);
    let arrays = f
        .arrays
        .iter()
        .map(|a| vec![zero_of(a.ty); a.len])
        .collect();
    Ok(Frame {
        func,
        block: 0,
        idx: 0,
        slots,
        arrays,
        ret_dst,
        watched: false,
    })
}

impl<'m> Vm<'m> {
    /// Creates a machine poised to run `func(args...)`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::ArityMismatch`] when `args` does not match the
    /// function's parameter count.
    pub fn new(module: &'m Module, func: FuncId, args: &[Value]) -> Result<Self, ExecError> {
        let f = module.func(func);
        Ok(Vm {
            module,
            frames: vec![new_frame(f, func, args, None)?],
            pending: false,
            finished: false,
            watch: None,
        })
    }

    /// Convenience: machine for a function by name.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnknownFunction`] when the function does not
    /// exist and [`ExecError::ArityMismatch`] on a bad argument count.
    pub fn for_name(module: &'m Module, name: &str, args: &[Value]) -> Result<Self, ExecError> {
        let id = module
            .func_id(name)
            .ok_or_else(|| ExecError::UnknownFunction {
                name: name.to_string(),
            })?;
        Vm::new(module, id, args)
    }

    /// True once the entry function has returned.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Starts recording [`CallEvent`]s for calls to the given functions.
    /// Unknown names are ignored. Calling again replaces the watch set but
    /// keeps undrained events.
    pub fn watch_calls<'a>(&mut self, funcs: impl IntoIterator<Item = &'a str>) {
        let mut set = std::collections::BTreeSet::new();
        for name in funcs {
            if let Some(id) = self.module.func_id(name) {
                set.insert(id);
            }
        }
        let st = self.watch.get_or_insert_with(WatchState::default);
        st.set = set;
    }

    /// Watches every module function whose name starts with `prefix` —
    /// the outlined commutative regions are `__commset_region_*`.
    pub fn watch_calls_matching(&mut self, prefix: &str) {
        let names: Vec<String> = self
            .module
            .funcs
            .iter()
            .filter(|f| f.name.starts_with(prefix))
            .map(|f| f.name.clone())
            .collect();
        self.watch_calls(names.iter().map(String::as_str));
    }

    /// Removes and returns the recorded call-boundary events.
    pub fn drain_call_events(&mut self) -> Vec<CallEvent> {
        match &mut self.watch {
            Some(st) => std::mem::take(&mut st.events),
            None => Vec::new(),
        }
    }

    /// Number of watched frames currently on the stack (`> 0` means the
    /// machine is inside a commutative region).
    pub fn watched_depth(&self) -> usize {
        self.watch.as_ref().map_or(0, |st| st.depth)
    }

    /// Name of the function currently on top of the stack (diagnostics).
    pub fn current_function(&self) -> &str {
        match self.frames.last() {
            Some(fr) => &self.module.func(fr.func).name,
            None => "<finished>",
        }
    }

    /// Supplies the result of the pending intrinsic call and advances.
    ///
    /// # Panics
    ///
    /// Panics if no special is pending — an executor bug, unreachable from
    /// program input.
    pub fn resolve_special(&mut self, value: Value) {
        assert!(self.pending, "no pending special");
        self.pending = false;
        let fr = self.frames.last_mut().expect("frame");
        let cur = &self.module.func(fr.func).blocks[fr.block];
        if let Inst::Call { dst: Some(d), .. } = &cur.insts[fr.idx].inst {
            fr.slots[d.0 as usize] = value;
        }
        fr.idx += 1;
    }

    /// Abandons the pending intrinsic call so it can be retried later
    /// (used by executors when a queue operation must block).
    pub fn retry_special_later(&mut self) {
        assert!(self.pending, "no pending special");
        self.pending = false;
    }

    /// Executes one instruction or terminator.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on dynamic errors the type system does not
    /// rule out (array index out of bounds, division by zero, mixed
    /// operand types), with the current function as source context.
    ///
    /// # Panics
    ///
    /// Panics when stepping a finished or pending machine — executor
    /// contract violations, unreachable from program input.
    pub fn step(&mut self, globals: &mut dyn GlobalMem) -> Result<StepOutcome, ExecError> {
        assert!(!self.pending, "resolve the pending special first");
        assert!(!self.finished, "machine already finished");
        let module = self.module;
        let fr = self.frames.last_mut().expect("frame");
        let func = module.func(fr.func);
        let fname = &func.name;
        let block: &Block = &func.blocks[fr.block];
        if fr.idx >= block.insts.len() {
            // Terminator.
            match &block.term {
                Terminator::Jump(b) => {
                    fr.block = b.0 as usize;
                    fr.idx = 0;
                }
                Terminator::Br {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let taken = fr.slots[cond.0 as usize].is_true();
                    fr.block = if taken {
                        then_bb.0 as usize
                    } else {
                        else_bb.0 as usize
                    };
                    fr.idx = 0;
                }
                Terminator::Ret(v) => {
                    let value = v.map(|s| fr.slots[s.0 as usize]);
                    let ret_dst = fr.ret_dst;
                    let popped = self.frames.pop().expect("frame");
                    if popped.watched {
                        if let Some(st) = &mut self.watch {
                            st.depth = st.depth.saturating_sub(1);
                            st.events.push(CallEvent {
                                enter: false,
                                func: module.func(popped.func).name.clone(),
                                args: Vec::new(),
                                depth: st.depth,
                            });
                        }
                    }
                    match self.frames.last_mut() {
                        Some(caller) => {
                            if let (Some(d), Some(v)) = (ret_dst, value) {
                                caller.slots[d.0 as usize] = v;
                            }
                            caller.idx += 1;
                        }
                        None => {
                            self.finished = true;
                            return Ok(StepOutcome::Finished(value));
                        }
                    }
                }
            }
            return Ok(StepOutcome::Ran { cost: 1 });
        }
        let inst = &block.insts[fr.idx].inst;
        match inst {
            Inst::Const { dst, value } => {
                fr.slots[dst.0 as usize] = match value {
                    Const::Int(v) => Value::Int(*v),
                    Const::Float(v) => Value::Float(*v),
                };
            }
            Inst::Copy { dst, src } => {
                fr.slots[dst.0 as usize] = fr.slots[src.0 as usize];
            }
            Inst::Un { dst, op, src } => {
                let v = fr.slots[src.0 as usize];
                fr.slots[dst.0 as usize] = eval_un(*op, v, fname)?;
            }
            Inst::Bin { dst, op, lhs, rhs } => {
                let a = fr.slots[lhs.0 as usize];
                let b = fr.slots[rhs.0 as usize];
                fr.slots[dst.0 as usize] = eval_bin(*op, a, b, fname)?;
            }
            Inst::Cast { dst, ty, src } => {
                let v = fr.slots[src.0 as usize];
                fr.slots[dst.0 as usize] = match (ty, v) {
                    (Type::Float, Value::Int(i)) => Value::Float(i as f64),
                    (Type::Int, Value::Float(f)) => Value::Int(f as i64),
                    _ => v,
                };
            }
            Inst::LoadG { dst, global } => {
                fr.slots[dst.0 as usize] = globals.load(*global);
            }
            Inst::StoreG { global, src } => {
                globals.store(*global, fr.slots[src.0 as usize]);
            }
            Inst::LoadElem { dst, arr, idx } => {
                let i = fr.slots[idx.0 as usize].as_int();
                fr.slots[dst.0 as usize] = match arr {
                    ArrRef::Local(a) => {
                        let arr = &fr.arrays[a.0 as usize];
                        match usize::try_from(i).ok().and_then(|i| arr.get(i)) {
                            Some(v) => *v,
                            None => {
                                return Err(ExecError::IndexOutOfBounds {
                                    func: fname.clone(),
                                    index: i,
                                    len: arr.len(),
                                    global: false,
                                })
                            }
                        }
                    }
                    ArrRef::Global(g) => {
                        globals
                            .load_elem(*g, i)
                            .map_err(|e| ExecError::IndexOutOfBounds {
                                func: fname.clone(),
                                index: e.index,
                                len: e.len,
                                global: true,
                            })?
                    }
                };
            }
            Inst::StoreElem { arr, idx, src } => {
                let i = fr.slots[idx.0 as usize].as_int();
                let v = fr.slots[src.0 as usize];
                match arr {
                    ArrRef::Local(a) => {
                        let arr = &mut fr.arrays[a.0 as usize];
                        let len = arr.len();
                        match usize::try_from(i).ok().and_then(|i| arr.get_mut(i)) {
                            Some(slot) => *slot = v,
                            None => {
                                return Err(ExecError::IndexOutOfBounds {
                                    func: fname.clone(),
                                    index: i,
                                    len,
                                    global: false,
                                })
                            }
                        }
                    }
                    ArrRef::Global(g) => {
                        globals
                            .store_elem(*g, i, v)
                            .map_err(|e| ExecError::IndexOutOfBounds {
                                func: fname.clone(),
                                index: e.index,
                                len: e.len,
                                global: true,
                            })?
                    }
                }
            }
            Inst::Call { dst, callee, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(match a {
                        Arg::Slot(s) => fr.slots[s.0 as usize],
                        Arg::Str(_) => Value::Int(0),
                    });
                }
                match callee {
                    Callee::Func(fid) => {
                        let callee_fn = module.func(*fid);
                        let mut frame = new_frame(callee_fn, *fid, &vals, *dst)?;
                        if let Some(st) = &mut self.watch {
                            if st.set.contains(fid) {
                                frame.watched = true;
                                st.depth += 1;
                                st.events.push(CallEvent {
                                    enter: true,
                                    func: callee_fn.name.clone(),
                                    args: vals.clone(),
                                    depth: st.depth,
                                });
                            }
                        }
                        self.frames.push(frame);
                        return Ok(StepOutcome::Ran { cost: 3 });
                    }
                    Callee::Intrinsic(iid) => {
                        // String literals only reach intrinsics, so the
                        // owned copies for `PendingSpecial` are made here
                        // rather than on every call instruction.
                        let str_args = args
                            .iter()
                            .enumerate()
                            .filter_map(|(i, a)| match a {
                                Arg::Str(s) => Some((i, s.clone())),
                                Arg::Slot(_) => None,
                            })
                            .collect();
                        // `dst` is re-read from the instruction when the
                        // executor resolves the call.
                        let _ = dst;
                        self.pending = true;
                        return Ok(StepOutcome::Special(PendingSpecial {
                            intrinsic: *iid,
                            args: vals,
                            str_args,
                        }));
                    }
                }
            }
        }
        fr.idx += 1;
        Ok(StepOutcome::Ran { cost: 1 })
    }
}

pub(crate) fn eval_un(op: UnOp, v: Value, func: &str) -> Result<Value, ExecError> {
    Ok(match (op, v) {
        (UnOp::Neg, Value::Int(i)) => Value::Int(i.wrapping_neg()),
        (UnOp::Neg, Value::Float(f)) => Value::Float(-f),
        (UnOp::Not, v) => Value::from(!v.is_true()),
        (UnOp::BitNot, Value::Int(i)) => Value::Int(!i),
        (UnOp::BitNot, Value::Float(_)) => {
            return Err(ExecError::TypeError {
                func: func.to_string(),
                detail: "bitwise not on float".to_string(),
            })
        }
    })
}

pub(crate) fn eval_bin(op: BinOp, a: Value, b: Value, func: &str) -> Result<Value, ExecError> {
    use BinOp::*;
    Ok(match (a, b) {
        (Value::Int(x), Value::Int(y)) => match op {
            Add => Value::Int(x.wrapping_add(y)),
            Sub => Value::Int(x.wrapping_sub(y)),
            Mul => Value::Int(x.wrapping_mul(y)),
            Div => {
                if y == 0 {
                    return Err(ExecError::DivisionByZero {
                        func: func.to_string(),
                    });
                }
                Value::Int(x.wrapping_div(y))
            }
            Rem => {
                if y == 0 {
                    return Err(ExecError::RemainderByZero {
                        func: func.to_string(),
                    });
                }
                Value::Int(x.wrapping_rem(y))
            }
            Shl => Value::Int(x.wrapping_shl(y as u32)),
            Shr => Value::Int(((x as u64) >> (y as u32 & 63)) as i64),
            Lt => Value::from(x < y),
            Le => Value::from(x <= y),
            Gt => Value::from(x > y),
            Ge => Value::from(x >= y),
            Eq => Value::from(x == y),
            Ne => Value::from(x != y),
            BitAnd => Value::Int(x & y),
            BitOr => Value::Int(x | y),
            BitXor => Value::Int(x ^ y),
            And => Value::from(x != 0 && y != 0),
            Or => Value::from(x != 0 || y != 0),
        },
        (Value::Float(x), Value::Float(y)) => match op {
            Add => Value::Float(x + y),
            Sub => Value::Float(x - y),
            Mul => Value::Float(x * y),
            Div => Value::Float(x / y),
            Lt => Value::from(x < y),
            Le => Value::from(x <= y),
            Gt => Value::from(x > y),
            Ge => Value::from(x >= y),
            Eq => Value::from(x == y),
            Ne => Value::from(x != y),
            other => {
                return Err(ExecError::TypeError {
                    func: func.to_string(),
                    detail: format!("operator {} on floats", other.as_str()),
                })
            }
        },
        (a, b) => {
            return Err(ExecError::TypeError {
                func: func.to_string(),
                detail: format!("mixed operand types: {a} {} {b}", op.as_str()),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::globals::PlainGlobals;
    use commset_ir::{lower_program, IntrinsicTable};

    fn module(src: &str) -> Module {
        let unit = commset_lang::compile_unit(src).unwrap();
        lower_program(&unit.program, IntrinsicTable::new()).unwrap()
    }

    fn try_main(src: &str) -> Result<Option<Value>, ExecError> {
        let m = module(src);
        let mut globals = PlainGlobals::new(&m);
        let mut vm = Vm::for_name(&m, "main", &[])?;
        loop {
            match vm.step(&mut globals)? {
                StepOutcome::Ran { .. } => {}
                StepOutcome::Finished(v) => return Ok(v),
                StepOutcome::Special(_) => panic!("unexpected intrinsic"),
            }
        }
    }

    fn run_main(src: &str) -> Option<Value> {
        try_main(src).expect("program must run")
    }

    #[test]
    fn arithmetic_and_loops() {
        let v = run_main(
            "int main() { int s = 0; for (int i = 0; i < 10; i = i + 1) { if (i % 2 == 0) s += i; } return s; }",
        );
        assert_eq!(v, Some(Value::Int(20)));
    }

    #[test]
    fn function_calls_and_recursion() {
        let v = run_main(
            "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); } int main() { return fib(10); }",
        );
        assert_eq!(v, Some(Value::Int(55)));
    }

    #[test]
    fn floats_and_casts() {
        let v = run_main(
            "int main() { float x = 1.5; float y = x * 2.0; return int(y) + int(float(3)); }",
        );
        assert_eq!(v, Some(Value::Int(6)));
    }

    #[test]
    fn globals_and_arrays() {
        let v = run_main(
            "int g = 5; int a[4]; int main() { a[0] = g; a[1] = a[0] * 2; int buf[2]; buf[1] = a[1] + 1; g = buf[1]; return g; }",
        );
        assert_eq!(v, Some(Value::Int(11)));
    }

    #[test]
    fn short_circuit_semantics() {
        // g() must not run when f() is false: detect via a global.
        let v = run_main(
            "int g = 0; int f() { return 0; } int h() { g = 1; return 1; } int main() { if (f() && h()) { return 9; } return g; }",
        );
        assert_eq!(v, Some(Value::Int(0)), "h() must not execute");
    }

    #[test]
    fn while_and_break_continue() {
        let v = run_main(
            "int main() { int s = 0; int i = 0; while (1) { i = i + 1; if (i > 10) break; if (i % 3 != 0) continue; s += i; } return s; }",
        );
        assert_eq!(v, Some(Value::Int(18)), "3 + 6 + 9");
    }

    #[test]
    fn intrinsic_pauses_machine() {
        let m = module("extern int ask(int x); int main() { return ask(21) * 2; }");
        let mut globals = PlainGlobals::new(&m);
        let mut vm = Vm::for_name(&m, "main", &[]).unwrap();
        loop {
            match vm.step(&mut globals).unwrap() {
                StepOutcome::Ran { .. } => {}
                StepOutcome::Special(p) => {
                    assert_eq!(p.args, vec![Value::Int(21)]);
                    vm.resolve_special(Value::Int(p.args[0].as_int() + 1));
                }
                StepOutcome::Finished(v) => {
                    assert_eq!(v, Some(Value::Int(44)));
                    break;
                }
            }
        }
    }

    #[test]
    fn division_by_zero_is_an_error_not_a_panic() {
        let err = try_main("int main() { int z = 0; return 1 / z; }").unwrap_err();
        assert_eq!(
            err,
            ExecError::DivisionByZero {
                func: "main".into()
            }
        );
    }

    #[test]
    fn remainder_by_zero_is_an_error() {
        let err = try_main("int main() { int z = 0; return 1 % z; }").unwrap_err();
        assert_eq!(
            err,
            ExecError::RemainderByZero {
                func: "main".into()
            }
        );
    }

    #[test]
    fn array_bounds_are_an_error_with_context() {
        let err = try_main("int main() { int a[2]; a[5] = 1; return 0; }").unwrap_err();
        assert_eq!(
            err,
            ExecError::IndexOutOfBounds {
                func: "main".into(),
                index: 5,
                len: 2,
                global: false,
            }
        );
    }

    #[test]
    fn negative_index_is_an_error() {
        let err = try_main("int main() { int a[2]; int i = 0 - 1; return a[i]; }").unwrap_err();
        assert!(
            matches!(err, ExecError::IndexOutOfBounds { index: -1, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn global_array_bounds_carry_context() {
        let err =
            try_main("int g[3]; int helper() { return g[7]; } int main() { return helper(); }")
                .unwrap_err();
        assert_eq!(
            err,
            ExecError::IndexOutOfBounds {
                func: "helper".into(),
                index: 7,
                len: 3,
                global: true,
            }
        );
    }

    #[test]
    fn watched_calls_record_entries_and_exits() {
        let m = module(
            "int helper(int x) { return x + 1; } int main() { int a = helper(1); return helper(a); }",
        );
        let mut globals = PlainGlobals::new(&m);
        let mut vm = Vm::for_name(&m, "main", &[]).unwrap();
        vm.watch_calls(["helper"]);
        assert_eq!(vm.watched_depth(), 0);
        let mut events = Vec::new();
        let mut max_depth = 0;
        loop {
            match vm.step(&mut globals).unwrap() {
                StepOutcome::Ran { .. } => {
                    max_depth = max_depth.max(vm.watched_depth());
                    events.extend(vm.drain_call_events());
                }
                StepOutcome::Finished(v) => {
                    assert_eq!(v, Some(Value::Int(3)));
                    break;
                }
                StepOutcome::Special(_) => panic!("unexpected intrinsic"),
            }
        }
        events.extend(vm.drain_call_events());
        assert_eq!(max_depth, 1, "helper frames are watched while active");
        assert_eq!(vm.watched_depth(), 0);
        let shape: Vec<(bool, &str)> = events.iter().map(|e| (e.enter, e.func.as_str())).collect();
        assert_eq!(
            shape,
            vec![
                (true, "helper"),
                (false, "helper"),
                (true, "helper"),
                (false, "helper"),
            ]
        );
        assert_eq!(events[0].args, vec![Value::Int(1)]);
        assert_eq!(events[2].args, vec![Value::Int(2)]);
    }

    #[test]
    fn unwatched_vm_records_nothing() {
        let m = module("int helper(int x) { return x; } int main() { return helper(4); }");
        let mut globals = PlainGlobals::new(&m);
        let mut vm = Vm::for_name(&m, "main", &[]).unwrap();
        loop {
            match vm.step(&mut globals).unwrap() {
                StepOutcome::Ran { .. } => {}
                StepOutcome::Finished(_) => break,
                StepOutcome::Special(_) => panic!("unexpected intrinsic"),
            }
        }
        assert!(vm.drain_call_events().is_empty());
    }

    #[test]
    fn unknown_entry_function_is_an_error() {
        let m = module("int main() { return 0; }");
        let err = Vm::for_name(&m, "nonexistent", &[]).err().unwrap();
        assert_eq!(
            err,
            ExecError::UnknownFunction {
                name: "nonexistent".into()
            }
        );
    }

    #[test]
    fn entry_arity_mismatch_is_an_error() {
        let m = module("int main() { return 0; }");
        let err = Vm::for_name(&m, "main", &[Value::Int(1)]).err().unwrap();
        assert!(
            matches!(
                err,
                ExecError::ArityMismatch {
                    expected: 0,
                    got: 1,
                    ..
                }
            ),
            "{err:?}"
        );
    }
}
