//! Mechanical construction of IR functions.

use crate::repr::*;
use commset_lang::ast::{StmtId, Type};

/// Incrementally builds a [`Function`]: blocks are created, filled with
/// instructions (tagged with the current source statement) and sealed with
/// terminators.
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    param_count: usize,
    ret: Type,
    slots: Vec<SlotDecl>,
    arrays: Vec<ArrayDecl>,
    blocks: Vec<Option<Block>>,
    pending: Vec<Option<Vec<InstNode>>>,
    current: BlockId,
    current_stmt: StmtId,
    temp_count: u32,
}

impl FunctionBuilder {
    /// Starts building a function with the given parameters (which become
    /// the first slots). The entry block is created and made current.
    pub fn new(name: impl Into<String>, params: &[(String, Type)], ret: Type) -> Self {
        let mut b = FunctionBuilder {
            name: name.into(),
            param_count: params.len(),
            ret,
            slots: params
                .iter()
                .map(|(n, t)| SlotDecl {
                    name: n.clone(),
                    ty: *t,
                })
                .collect(),
            arrays: Vec::new(),
            blocks: Vec::new(),
            pending: Vec::new(),
            current: BlockId(0),
            current_stmt: StmtId(0),
            temp_count: 0,
        };
        let entry = b.new_block();
        b.current = entry;
        b
    }

    /// Sets the statement all subsequently pushed instructions are
    /// attributed to.
    pub fn set_stmt(&mut self, stmt: StmtId) {
        self.current_stmt = stmt;
    }

    /// The current provenance statement.
    pub fn current_stmt(&self) -> StmtId {
        self.current_stmt
    }

    /// Parameter slots.
    pub fn param_slot(&self, i: usize) -> Slot {
        assert!(i < self.param_count);
        Slot(i as u32)
    }

    /// Declares a named scalar slot.
    pub fn new_slot(&mut self, name: impl Into<String>, ty: Type) -> Slot {
        let s = Slot(self.slots.len() as u32);
        self.slots.push(SlotDecl {
            name: name.into(),
            ty,
        });
        s
    }

    /// Declares an anonymous temporary slot.
    pub fn new_temp(&mut self, ty: Type) -> Slot {
        self.temp_count += 1;
        let name = format!("%t{}", self.temp_count);
        self.new_slot(name, ty)
    }

    /// The type of a slot.
    pub fn slot_ty(&self, s: Slot) -> Type {
        self.slots[s.0 as usize].ty
    }

    /// Declares a local array.
    pub fn new_array(&mut self, name: impl Into<String>, ty: Type, len: usize) -> ArrayId {
        let a = ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayDecl {
            name: name.into(),
            ty,
            len,
        });
        a
    }

    /// Creates a new, empty, unsealed block.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(None);
        self.pending.push(Some(Vec::new()));
        id
    }

    /// Makes `b` the current block.
    ///
    /// # Panics
    ///
    /// Panics if `b` is already sealed.
    pub fn switch_to(&mut self, b: BlockId) {
        assert!(
            self.pending[b.0 as usize].is_some(),
            "block {b} is already sealed"
        );
        self.current = b;
    }

    /// The current block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// True if the current block is still open (not terminated).
    pub fn current_open(&self) -> bool {
        self.pending[self.current.0 as usize].is_some()
    }

    /// Appends an instruction to the current block.
    ///
    /// # Panics
    ///
    /// Panics if the current block is sealed.
    pub fn push(&mut self, inst: Inst) {
        let stmt = self.current_stmt;
        self.pending[self.current.0 as usize]
            .as_mut()
            .expect("push into sealed block")
            .push(InstNode { inst, stmt });
    }

    /// Seals the current block with `term`.
    ///
    /// # Panics
    ///
    /// Panics if the current block is already sealed.
    pub fn terminate(&mut self, term: Terminator) {
        let idx = self.current.0 as usize;
        let insts = self.pending[idx].take().expect("double terminate");
        self.blocks[idx] = Some(Block {
            insts,
            term,
            term_stmt: self.current_stmt,
        });
    }

    /// Finishes the function.
    ///
    /// Any still-open block is sealed with a `Ret` of the zero value (this
    /// covers function bodies whose last statement is not a `return`, as in
    /// C).
    pub fn finish(mut self) -> Function {
        for idx in 0..self.blocks.len() {
            if self.blocks[idx].is_none() {
                let insts = self.pending[idx].take().unwrap();
                let term = if self.ret == Type::Void {
                    Terminator::Ret(None)
                } else {
                    // Implicit `return 0` / `return 0.0`.
                    let tmp = Slot(self.slots.len() as u32);
                    self.slots.push(SlotDecl {
                        name: "%implicit_ret".into(),
                        ty: self.ret,
                    });
                    let value = match self.ret {
                        Type::Float => Const::Float(0.0),
                        _ => Const::Int(0),
                    };
                    let mut insts = insts;
                    insts.push(InstNode {
                        inst: Inst::Const { dst: tmp, value },
                        stmt: self.current_stmt,
                    });
                    self.blocks[idx] = Some(Block {
                        insts,
                        term: Terminator::Ret(Some(tmp)),
                        term_stmt: self.current_stmt,
                    });
                    continue;
                };
                self.blocks[idx] = Some(Block {
                    insts,
                    term,
                    term_stmt: self.current_stmt,
                });
            }
        }
        Function {
            name: self.name,
            param_count: self.param_count,
            ret: self.ret,
            slots: self.slots,
            arrays: self.arrays,
            blocks: self.blocks.into_iter().map(Option::unwrap).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commset_lang::ast::BinOp;

    #[test]
    fn builds_straight_line_function() {
        let mut b = FunctionBuilder::new(
            "add",
            &[("a".into(), Type::Int), ("b".into(), Type::Int)],
            Type::Int,
        );
        let t = b.new_temp(Type::Int);
        b.push(Inst::Bin {
            dst: t,
            op: BinOp::Add,
            lhs: b.param_slot(0),
            rhs: b.param_slot(1),
        });
        b.terminate(Terminator::Ret(Some(t)));
        let f = b.finish();
        assert_eq!(f.param_count, 2);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].insts.len(), 1);
    }

    #[test]
    fn open_blocks_get_implicit_return() {
        let b = FunctionBuilder::new("f", &[], Type::Int);
        let f = b.finish();
        assert!(matches!(f.blocks[0].term, Terminator::Ret(Some(_))));

        let b = FunctionBuilder::new("g", &[], Type::Void);
        let f = b.finish();
        assert!(matches!(f.blocks[0].term, Terminator::Ret(None)));
    }

    #[test]
    #[should_panic(expected = "double terminate")]
    fn double_terminate_panics() {
        let mut b = FunctionBuilder::new("f", &[], Type::Void);
        b.terminate(Terminator::Ret(None));
        b.terminate(Terminator::Ret(None));
    }
}
