//! Control-flow graph utilities: predecessor maps and orderings.

use crate::repr::{BlockId, Function};

/// Predecessor/successor view of a function's CFG.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// `preds[b]` = blocks jumping to `b`.
    pub preds: Vec<Vec<BlockId>>,
    /// `succs[b]` = successors of `b`.
    pub succs: Vec<Vec<BlockId>>,
    /// Blocks in reverse postorder from the entry.
    pub rpo: Vec<BlockId>,
    /// `rpo_index[b]` = position of `b` in `rpo`, or `usize::MAX` if
    /// unreachable.
    pub rpo_index: Vec<usize>,
}

impl Cfg {
    /// Computes the CFG of `f`.
    pub fn new(f: &Function) -> Self {
        let n = f.blocks.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for (i, b) in f.blocks.iter().enumerate() {
            let from = BlockId(i as u32);
            for s in b.term.successors() {
                succs[i].push(s);
                preds[s.0 as usize].push(from);
            }
        }
        // Iterative DFS for postorder.
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        state[0] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let bs = &succs[b.0 as usize];
            if *next < bs.len() {
                let s = bs[*next];
                *next += 1;
                if state[s.0 as usize] == 0 {
                    state[s.0 as usize] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.0 as usize] = 2;
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.0 as usize] = i;
        }
        Cfg {
            preds,
            succs,
            rpo,
            rpo_index,
        }
    }

    /// True if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.0 as usize] != usize::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::repr::{Const, Inst, Slot, Terminator};
    use commset_lang::ast::Type;

    /// entry -> loop_head -> {body -> loop_head, exit}
    fn diamond_loop() -> Function {
        let mut b = FunctionBuilder::new("f", &[], Type::Void);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let c = b.new_temp(Type::Int);
        b.push(Inst::Const {
            dst: c,
            value: Const::Int(1),
        });
        b.terminate(Terminator::Jump(head));
        b.switch_to(head);
        b.terminate(Terminator::Br {
            cond: c,
            then_bb: body,
            else_bb: exit,
        });
        b.switch_to(body);
        b.terminate(Terminator::Jump(head));
        b.switch_to(exit);
        b.terminate(Terminator::Ret(None));
        b.finish()
    }

    #[test]
    fn preds_and_succs() {
        let f = diamond_loop();
        let cfg = Cfg::new(&f);
        // head (bb1) has preds entry (bb0) and body (bb2).
        assert_eq!(cfg.preds[1], vec![BlockId(0), BlockId(2)]);
        assert_eq!(cfg.succs[1], vec![BlockId(2), BlockId(3)]);
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_order() {
        let f = diamond_loop();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.rpo[0], BlockId(0));
        // head must come before body and exit.
        assert!(cfg.rpo_index[1] < cfg.rpo_index[2]);
        assert!(cfg.rpo_index[1] < cfg.rpo_index[3]);
        assert!(cfg.is_reachable(BlockId(3)));
    }

    #[test]
    fn unreachable_blocks_are_flagged() {
        let mut b = FunctionBuilder::new("f", &[], Type::Void);
        let dead = b.new_block();
        b.terminate(Terminator::Ret(None));
        b.switch_to(dead);
        b.terminate(Terminator::Ret(None));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert!(!cfg.is_reachable(dead));
    }

    // Slot is unused but keeps the import list honest for future tests.
    #[allow(dead_code)]
    fn _unused(s: Slot) -> Slot {
        s
    }
}
