//! Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.
//!
//! Algorithm 1 of the paper needs dominance queries between PDG nodes
//! (`Dom(n2, n1)`) to decide whether a loop-carried commutative dependence
//! can be treated as unconditionally commutative (§4.4, lines 23–27).

use crate::cfg::Cfg;
use crate::repr::{BlockId, Function};

/// The dominator tree of a function.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[b]` = immediate dominator of `b`; entry's idom is itself;
    /// `None` for unreachable blocks.
    pub idom: Vec<Option<BlockId>>,
}

impl DomTree {
    /// Computes the dominator tree of `f` given its `cfg`.
    pub fn new(f: &Function, cfg: &Cfg) -> Self {
        let n = f.blocks.len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[0] = Some(BlockId(0));
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                let preds = &cfg.preds[b.0 as usize];
                // First processed predecessor.
                let mut new_idom: Option<BlockId> = None;
                for &p in preds {
                    if idom[p.0 as usize].is_some() {
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => intersect(&idom, &cfg.rpo_index, p, cur),
                        });
                    }
                }
                if let Some(ni) = new_idom {
                    if idom[b.0 as usize] != Some(ni) {
                        idom[b.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom }
    }

    /// True if `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.0 as usize] {
                Some(i) if i != cur => cur = i,
                _ => return false,
            }
        }
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
            a = idom[a.0 as usize].expect("intersect on unprocessed block");
        }
        while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
            b = idom[b.0 as usize].expect("intersect on unprocessed block");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::repr::{Const, Inst, Terminator};
    use commset_lang::ast::Type;

    /// Builds:
    /// ```text
    ///        entry(0)
    ///          |
    ///        head(1) <---+
    ///        /    \      |
    ///    then(2) else(3) |
    ///        \    /      |
    ///        join(4) ----+
    ///          |
    ///        exit(5)
    /// ```
    fn diamond_in_loop() -> Function {
        let mut b = FunctionBuilder::new("f", &[], Type::Void);
        let head = b.new_block();
        let then_bb = b.new_block();
        let else_bb = b.new_block();
        let join = b.new_block();
        let exit = b.new_block();
        let c = b.new_temp(Type::Int);
        b.push(Inst::Const {
            dst: c,
            value: Const::Int(1),
        });
        b.terminate(Terminator::Jump(head));
        b.switch_to(head);
        b.terminate(Terminator::Br {
            cond: c,
            then_bb,
            else_bb,
        });
        b.switch_to(then_bb);
        b.terminate(Terminator::Jump(join));
        b.switch_to(else_bb);
        b.terminate(Terminator::Jump(join));
        b.switch_to(join);
        b.terminate(Terminator::Br {
            cond: c,
            then_bb: head,
            else_bb: exit,
        });
        b.switch_to(exit);
        b.terminate(Terminator::Ret(None));
        b.finish()
    }

    #[test]
    fn diamond_dominance() {
        let f = diamond_in_loop();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        let b = BlockId;
        // head dominates everything below it.
        assert!(dom.dominates(b(1), b(2)));
        assert!(dom.dominates(b(1), b(3)));
        assert!(dom.dominates(b(1), b(4)));
        assert!(dom.dominates(b(1), b(5)));
        // the branches do not dominate the join.
        assert!(!dom.dominates(b(2), b(4)));
        assert!(!dom.dominates(b(3), b(4)));
        // join's idom is head.
        assert_eq!(dom.idom[4], Some(b(1)));
        // reflexive.
        assert!(dom.dominates(b(4), b(4)));
        // nothing (but entry) dominates entry.
        assert!(!dom.dominates(b(1), b(0)));
        assert!(dom.dominates(b(0), b(0)));
    }
}
