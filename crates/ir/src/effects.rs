//! Intrinsic effect signatures.
//!
//! Cmm programs interact with mutable shared state (files, consoles, RNG
//! seeds, histograms, packet pools, ...) exclusively through `extern`
//! intrinsics. Each intrinsic declares the abstract *channels* it reads and
//! writes; the PDG builder turns channel conflicts into memory dependence
//! edges, exactly as the paper's compiler derives memory flow dependences
//! from calls with externally visible side effects (§2, §4.3).

use commset_lang::ast::Type;
use std::collections::HashMap;

/// An interned abstract memory channel (e.g. `FS`, `CONSOLE`, `RNG_SEED`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub u32);

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Interner for channel names.
#[derive(Debug, Clone, Default)]
pub struct ChannelSet {
    names: Vec<String>,
    ids: HashMap<String, ChannelId>,
}

impl ChannelSet {
    /// Creates an empty channel set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id.
    pub fn intern(&mut self, name: &str) -> ChannelId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = ChannelId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// Looks up an already-interned channel.
    pub fn get(&self, name: &str) -> Option<ChannelId> {
        self.ids.get(name).copied()
    }

    /// The name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this set.
    pub fn name(&self, id: ChannelId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of interned channels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no channel has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// The compile-time signature of an intrinsic: its type, its effect
/// channels, and its base simulated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct EffectSig {
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
    /// Channels the intrinsic may read.
    pub reads: Vec<ChannelId>,
    /// Channels the intrinsic may write.
    pub writes: Vec<ChannelId>,
    /// Base cost in simulated time units charged per call (the intrinsic's
    /// runtime implementation may report additional data-dependent cost).
    pub base_cost: u64,
}

impl EffectSig {
    /// True if the intrinsic touches no channel at all.
    pub fn is_pure(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }

    /// True if two signatures may conflict on some channel (at least one of
    /// the accesses being a write).
    pub fn conflicts_with(&self, other: &EffectSig) -> bool {
        let w_r = self
            .writes
            .iter()
            .any(|c| other.reads.contains(c) || other.writes.contains(c));
        let r_w = self.reads.iter().any(|c| other.writes.contains(c));
        w_r || r_w
    }
}

/// A named intrinsic with its signature, plus interned channels — the
/// compile-time view of the runtime's intrinsic registry.
#[derive(Debug, Clone, Default)]
pub struct IntrinsicTable {
    /// Channel interner shared by all signatures.
    pub channels: ChannelSet,
    sigs: Vec<(String, EffectSig)>,
    by_name: HashMap<String, usize>,
    /// Channels whose state is partitioned per handle *instance* (e.g. the
    /// contents of a dynamically allocated matrix): accesses conflict only
    /// when they may target the same instance.
    per_instance: std::collections::BTreeSet<ChannelId>,
    /// Intrinsics returning a *fresh* instance handle on every call (the
    /// allocation-site freshness the paper's pointer analysis exploits).
    fresh_handles: std::collections::BTreeSet<String>,
}

impl IntrinsicTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an intrinsic. `reads` / `writes` are channel names,
    /// interned on the fly. Returns the intrinsic's index.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered (intrinsic sets are built
    /// programmatically; a duplicate is a bug in the embedder).
    pub fn register(
        &mut self,
        name: &str,
        params: Vec<Type>,
        ret: Type,
        reads: &[&str],
        writes: &[&str],
        base_cost: u64,
    ) -> usize {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate intrinsic `{name}`"
        );
        let sig = EffectSig {
            params,
            ret,
            reads: reads.iter().map(|c| self.channels.intern(c)).collect(),
            writes: writes.iter().map(|c| self.channels.intern(c)).collect(),
            base_cost,
        };
        let idx = self.sigs.len();
        self.by_name.insert(name.to_string(), idx);
        self.sigs.push((name.to_string(), sig));
        idx
    }

    /// Looks up an intrinsic by name.
    pub fn lookup(&self, name: &str) -> Option<(usize, &EffectSig)> {
        self.by_name.get(name).map(|&i| (i, &self.sigs[i].1))
    }

    /// The signature at `idx`.
    pub fn sig(&self, idx: usize) -> &EffectSig {
        &self.sigs[idx].1
    }

    /// The name at `idx`.
    pub fn name(&self, idx: usize) -> &str {
        &self.sigs[idx].0
    }

    /// Number of registered intrinsics.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// True if no intrinsic is registered.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// Iterates over `(name, sig)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &EffectSig)> {
        self.sigs.iter().map(|(n, s)| (n.as_str(), s))
    }

    /// Marks a channel as instance-partitioned: its accesses conflict only
    /// when they may target the same handle instance.
    pub fn mark_per_instance(&mut self, channel: &str) {
        let id = self.channels.intern(channel);
        self.per_instance.insert(id);
    }

    /// True if `channel` is instance-partitioned.
    pub fn is_per_instance(&self, channel: ChannelId) -> bool {
        self.per_instance.contains(&channel)
    }

    /// Same query by channel name.
    pub fn is_per_instance_name(&self, name: &str) -> bool {
        self.channels
            .get(name)
            .map(|c| self.per_instance.contains(&c))
            .unwrap_or(false)
    }

    /// Declares that `name` returns a fresh instance handle on every call
    /// (an allocator).
    pub fn mark_fresh_handle(&mut self, name: &str) {
        self.fresh_handles.insert(name.to_string());
    }

    /// True if `name` was declared an allocator.
    pub fn is_fresh_handle(&self, name: &str) -> bool {
        self.fresh_handles.contains(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut cs = ChannelSet::new();
        let a = cs.intern("FS");
        let b = cs.intern("CONSOLE");
        assert_ne!(a, b);
        assert_eq!(cs.intern("FS"), a);
        assert_eq!(cs.name(a), "FS");
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn conflict_requires_a_write() {
        let mut t = IntrinsicTable::new();
        t.register("read_a", vec![], Type::Int, &["A"], &[], 1);
        t.register("write_a", vec![Type::Int], Type::Void, &[], &["A"], 1);
        t.register("read_b", vec![], Type::Int, &["B"], &[], 1);
        let (_, ra) = t.lookup("read_a").unwrap();
        let (_, wa) = t.lookup("write_a").unwrap();
        let (_, rb) = t.lookup("read_b").unwrap();
        assert!(ra.conflicts_with(wa));
        assert!(wa.conflicts_with(ra));
        assert!(wa.conflicts_with(wa));
        assert!(!ra.conflicts_with(ra), "read/read never conflicts");
        assert!(!ra.conflicts_with(rb));
    }

    #[test]
    #[should_panic(expected = "duplicate intrinsic")]
    fn duplicate_registration_panics() {
        let mut t = IntrinsicTable::new();
        t.register("x", vec![], Type::Void, &[], &[], 1);
        t.register("x", vec![], Type::Void, &[], &[], 1);
    }
}
