//! # commset-ir
//!
//! The compiler's intermediate representation and its analyses.
//!
//! Cmm functions are lowered ([`lower`]) to a flat register-machine IR
//! ([`repr`]) over basic blocks: every scalar local is a slot, every
//! instruction records the source statement it came from, and calls target
//! either program functions or *intrinsics* — runtime operations with
//! declared side-effect channels ([`effects`]).
//!
//! On top of the IR the crate provides the classic analyses the COMMSET
//! compiler needs (paper §4.3–4.4): control-flow utilities ([`mod@cfg`]),
//! dominator trees ([`dom`]), natural-loop detection and induction-variable
//! recognition ([`loops`]), and a printer ([`mod@print`]) for debugging and
//! golden tests.

pub mod builder;
pub mod cfg;
pub mod dom;
pub mod effects;
pub mod liveness;
pub mod loops;
pub mod lower;
pub mod print;
pub mod repr;

pub use effects::{ChannelId, EffectSig, IntrinsicTable};
pub use liveness::{Liveness, SlotSet};
pub use lower::lower_program;
pub use repr::{
    Arg, ArrRef, ArrayId, BlockId, Callee, Const, FuncId, Function, GlobalId, Inst, IntrinsicId,
    Module, Slot, Terminator,
};
