//! Slot liveness — the backward dataflow the bytecode compiler's
//! superinstruction fusion is guarded by.
//!
//! A fused op may skip materializing an intermediate slot (the compare
//! feeding a branch, the constant feeding an immediate-form arithmetic
//! op) only when nothing downstream reads it. This module computes the
//! classic per-block live-in/live-out sets from [`Inst::def`]/
//! [`Inst::uses`], plus the per-instruction "live after" sets a peephole
//! needs to make that call, as compact slot bitsets.

use crate::repr::{Function, Inst, Slot, Terminator};

/// A fixed-width bitset over a function's slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotSet {
    words: Vec<u64>,
}

impl SlotSet {
    /// The empty set for a function with `nslots` slots.
    pub fn new(nslots: usize) -> Self {
        SlotSet {
            words: vec![0; nslots.div_ceil(64)],
        }
    }

    /// Membership test.
    pub fn contains(&self, s: Slot) -> bool {
        let i = s.0 as usize;
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Inserts `s`; returns true if it was new.
    pub fn insert(&mut self, s: Slot) -> bool {
        let i = s.0 as usize;
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        let new = *w & bit == 0;
        *w |= bit;
        new
    }

    /// Removes `s`.
    pub fn remove(&mut self, s: Slot) {
        let i = s.0 as usize;
        if let Some(w) = self.words.get_mut(i / 64) {
            *w &= !(1u64 << (i % 64));
        }
    }

    /// Unions `other` in; returns true if anything changed.
    pub fn union_with(&mut self, other: &SlotSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }
}

/// Applies one instruction's transfer function backwards:
/// `live = (live - def) ∪ uses`.
fn transfer(live: &mut SlotSet, inst: &Inst) {
    if let Some(d) = inst.def() {
        live.remove(d);
    }
    for u in inst.uses() {
        live.insert(u);
    }
}

/// Per-function liveness: block-level live-in/live-out sets.
#[derive(Debug)]
pub struct Liveness {
    live_in: Vec<SlotSet>,
    live_out: Vec<SlotSet>,
}

impl Liveness {
    /// Computes liveness for `f` by iterating the backward dataflow to a
    /// fixed point (blocks are few; no worklist finesse needed).
    pub fn compute(f: &Function) -> Self {
        let n = f.blocks.len();
        let nslots = f.slots.len();
        let mut live_in = vec![SlotSet::new(nslots); n];
        let mut live_out = vec![SlotSet::new(nslots); n];
        let mut changed = true;
        while changed {
            changed = false;
            for b in (0..n).rev() {
                let block = &f.blocks[b];
                let mut out = SlotSet::new(nslots);
                for succ in block.term.successors() {
                    out.union_with(&live_in[succ.0 as usize]);
                }
                let mut live = out.clone();
                match &block.term {
                    Terminator::Br { cond, .. } => {
                        live.insert(*cond);
                    }
                    Terminator::Ret(Some(s)) => {
                        live.insert(*s);
                    }
                    _ => {}
                }
                for node in block.insts.iter().rev() {
                    transfer(&mut live, &node.inst);
                }
                changed |= live_out[b] != out;
                live_out[b] = out;
                changed |= live_in[b] != live;
                live_in[b] = live;
            }
        }
        Liveness { live_in, live_out }
    }

    /// Slots live on entry to block `b`.
    pub fn live_in(&self, b: usize) -> &SlotSet {
        &self.live_in[b]
    }

    /// Slots live on exit from block `b` (before the terminator's own
    /// uses — i.e. the union of successor live-ins).
    pub fn live_out(&self, b: usize) -> &SlotSet {
        &self.live_out[b]
    }

    /// The "live after instruction `i`" sets for block `b`, computed by
    /// one backward walk: entry `i` is the set of slots read at or after
    /// instruction `i + 1` (including the terminator) on some path. The
    /// returned vector has one entry per instruction.
    pub fn live_after(&self, f: &Function, b: usize) -> Vec<SlotSet> {
        let block = &f.blocks[b];
        let mut live = self.live_out[b].clone();
        match &block.term {
            Terminator::Br { cond, .. } => {
                live.insert(*cond);
            }
            Terminator::Ret(Some(s)) => {
                live.insert(*s);
            }
            _ => {}
        }
        let mut after = vec![SlotSet::new(f.slots.len()); block.insts.len()];
        for (i, node) in block.insts.iter().enumerate().rev() {
            after[i] = live.clone();
            transfer(&mut live, &node.inst);
        }
        after
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::IntrinsicTable;
    use crate::lower::lower_program;
    use crate::repr::Module;

    fn module(src: &str) -> Module {
        let unit = commset_lang::compile_unit(src).unwrap();
        lower_program(&unit.program, IntrinsicTable::new()).unwrap()
    }

    #[test]
    fn loop_variable_is_live_around_the_backedge() {
        let m = module(
            "int main() { int s = 0; for (int i = 0; i < 10; i = i + 1) { s = s + i; } return s; }",
        );
        let f = m.funcs.iter().find(|f| f.name == "main").unwrap();
        let lv = Liveness::compute(f);
        // Find the block whose terminator is the conditional branch: both
        // the accumulator and the induction variable must be live into it.
        let (header, _) = f
            .blocks
            .iter()
            .enumerate()
            .find(|(_, b)| matches!(b.term, Terminator::Br { .. }))
            .expect("loop header");
        let live = lv.live_in(header);
        let live_count = (0..f.slots.len())
            .filter(|i| live.contains(Slot(*i as u32)))
            .count();
        assert!(live_count >= 2, "s and i live at the header");
    }

    #[test]
    fn dead_compare_temp_is_not_live_after_its_branch_block() {
        let m = module("int main() { int i = 3; if (i < 5) { return 1; } return 0; }");
        let f = m.funcs.iter().find(|f| f.name == "main").unwrap();
        let lv = Liveness::compute(f);
        for (b, block) in f.blocks.iter().enumerate() {
            if let Terminator::Br { cond, .. } = block.term {
                assert!(
                    !lv.live_out(b).contains(cond),
                    "the compare temp feeds only the branch"
                );
            }
        }
    }

    #[test]
    fn live_after_tracks_intra_block_reads() {
        let m = module("int main() { int a = 1; int b = a + 2; int c = b * 3; return c; }");
        let f = m.funcs.iter().find(|f| f.name == "main").unwrap();
        let lv = Liveness::compute(f);
        let after = lv.live_after(f, 0);
        let block = &f.blocks[0];
        // Every def that is read later in the block is live right after
        // its defining instruction.
        for (i, node) in block.insts.iter().enumerate() {
            if let Some(d) = node.inst.def() {
                let read_later = block.insts[i + 1..]
                    .iter()
                    .any(|n| n.inst.uses().contains(&d))
                    || matches!(block.term, Terminator::Ret(Some(s)) if s == d);
                assert_eq!(after[i].contains(d), read_later, "inst {i}");
            }
        }
    }
}
