//! Natural-loop detection and induction-variable recognition.
//!
//! The COMMSET compiler targets a *hot loop* (§4): dependence analysis needs
//! to know which blocks belong to it, which slot is its induction variable
//! (Algorithm 1 asserts `i1 != i2` for induction variables on separate
//! iterations), and whether the loop is *countable* (a DOALL requirement).

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::repr::{BlockId, Function, Inst, Slot, Terminator};
use commset_lang::ast::BinOp;
use std::collections::BTreeSet;

/// A natural loop.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header.
    pub header: BlockId,
    /// Blocks with a back edge to the header.
    pub latches: Vec<BlockId>,
    /// All blocks in the loop (header included), sorted.
    pub blocks: BTreeSet<BlockId>,
    /// Nesting depth (1 = outermost).
    pub depth: u32,
}

impl NaturalLoop {
    /// True if `b` belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// All natural loops of a function, outermost first.
#[derive(Debug, Clone)]
pub struct LoopForest {
    /// Detected loops, sorted by (depth, header).
    pub loops: Vec<NaturalLoop>,
}

impl LoopForest {
    /// Finds the natural loops of `f`.
    pub fn new(f: &Function, cfg: &Cfg, dom: &DomTree) -> Self {
        let mut loops: Vec<NaturalLoop> = Vec::new();
        for (i, b) in f.blocks.iter().enumerate() {
            let tail = BlockId(i as u32);
            if !cfg.is_reachable(tail) {
                continue;
            }
            for head in b.term.successors() {
                if dom.dominates(head, tail) {
                    // Back edge tail -> head: collect the natural loop
                    // (only over reachable blocks — an unreachable
                    // predecessor chain is not part of any execution).
                    let mut blocks = BTreeSet::new();
                    blocks.insert(head);
                    let mut stack = vec![tail];
                    while let Some(x) = stack.pop() {
                        if blocks.insert(x) {
                            for &p in &cfg.preds[x.0 as usize] {
                                if cfg.is_reachable(p) {
                                    stack.push(p);
                                }
                            }
                        }
                    }
                    // Merge with an existing loop sharing the header.
                    if let Some(l) = loops.iter_mut().find(|l| l.header == head) {
                        l.latches.push(tail);
                        l.blocks.extend(blocks);
                    } else {
                        loops.push(NaturalLoop {
                            header: head,
                            latches: vec![tail],
                            blocks,
                            depth: 0,
                        });
                    }
                }
            }
        }
        // Depth = number of loops whose block set strictly contains this
        // loop's header.
        let headers: Vec<BlockId> = loops.iter().map(|l| l.header).collect();
        for (i, h) in headers.iter().enumerate() {
            let depth = loops.iter().filter(|l| l.blocks.contains(h)).count() as u32;
            loops[i].depth = depth;
        }
        loops.sort_by_key(|l| (l.depth, l.header));
        LoopForest { loops }
    }

    /// The outermost loop containing `b`, if any.
    pub fn outermost_containing(&self, b: BlockId) -> Option<&NaturalLoop> {
        self.loops.iter().find(|l| l.contains(b))
    }
}

/// A recognized basic induction variable of a loop.
#[derive(Debug, Clone, PartialEq)]
pub struct InductionVar {
    /// The induction slot.
    pub slot: Slot,
    /// Signed step per iteration.
    pub step: i64,
    /// Block of the unique update.
    pub update_block: BlockId,
}

/// A countable-loop bound: `slot <cmp> bound` tested at the header.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopBound {
    /// The compared induction slot.
    pub iv: Slot,
    /// The comparison operator at the header.
    pub cmp: BinOp,
    /// The loop-invariant bound slot.
    pub bound: Slot,
}

/// Finds basic induction variables of `l`: slots with exactly one in-loop
/// definition of the form `s = s + c` / `s = s - c` where `c` is a constant
/// defined in the loop body (lowered from `i = i + 1`).
pub fn induction_vars(f: &Function, l: &NaturalLoop) -> Vec<InductionVar> {
    // Count in-loop defs per slot, remember int constants and add/sub
    // definitions. Lowering produces either the direct form `s = s + c` or
    // the copy form `t = s + c; s = t`, so both are recognized.
    let mut defs: std::collections::HashMap<Slot, u32> = std::collections::HashMap::new();
    let mut consts: std::collections::HashMap<Slot, i64> = std::collections::HashMap::new();
    // slot -> (base, step-slot, is_sub) for Bin Add/Sub defs
    let mut addsub: std::collections::HashMap<Slot, (Slot, Slot, bool)> =
        std::collections::HashMap::new();
    let mut candidates: Vec<(Slot, BlockId, Slot)> = Vec::new(); // (iv, block, defining value)
    for &b in &l.blocks {
        for node in &f.block(b).insts {
            if let Inst::Const {
                dst,
                value: crate::repr::Const::Int(v),
            } = &node.inst
            {
                consts.insert(*dst, *v);
            }
            if let Some(d) = node.inst.def() {
                *defs.entry(d).or_insert(0) += 1;
            }
            match &node.inst {
                Inst::Bin { dst, op, lhs, rhs } if matches!(op, BinOp::Add | BinOp::Sub) => {
                    addsub.insert(*dst, (*lhs, *rhs, *op == BinOp::Sub));
                    if lhs == dst {
                        candidates.push((*dst, b, *dst));
                    }
                }
                Inst::Copy { dst, src } => candidates.push((*dst, b, *src)),
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    for (s, b, val) in candidates {
        // The induction slot must have exactly one def in the loop and its
        // defining value must be `s ± const`.
        if defs.get(&s) != Some(&1) {
            continue;
        }
        let key = if val == s { s } else { val };
        let Some(&(base, step_slot, is_sub)) = addsub.get(&key) else {
            continue;
        };
        if base != s {
            continue;
        }
        let Some(&c) = consts.get(&step_slot) else {
            continue;
        };
        out.push(InductionVar {
            slot: s,
            step: if is_sub { -c } else { c },
            update_block: b,
        });
    }
    out.sort_by_key(|iv| iv.slot);
    out.dedup_by_key(|iv| iv.slot);
    out
}

/// Recognizes a countable header test `iv <cmp> bound` where `iv` is one of
/// `ivs` and `bound` is loop-invariant (no definition inside the loop).
pub fn loop_bound(f: &Function, l: &NaturalLoop, ivs: &[InductionVar]) -> Option<LoopBound> {
    let header = f.block(l.header);
    let Terminator::Br { cond, .. } = &header.term else {
        return None;
    };
    // Find the defining compare of `cond` within the header.
    let def = header.insts.iter().rev().find_map(|n| match &n.inst {
        Inst::Bin { dst, op, lhs, rhs } if dst == cond => Some((*op, *lhs, *rhs)),
        _ => None,
    })?;
    let (op, lhs, rhs) = def;
    if !matches!(
        op,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Ne
    ) {
        return None;
    }
    let defined_in_loop = |s: Slot| {
        l.blocks
            .iter()
            .any(|&b| f.block(b).insts.iter().any(|n| n.inst.def() == Some(s)))
    };
    // Either side may hold the IV; the other must be invariant. The header
    // recomputes the bound if it was lowered as a load — accept a bound
    // slot whose only in-loop defs are in the header itself (recomputed
    // invariantly each iteration).
    let invariant_enough = |s: Slot| {
        !l.blocks
            .iter()
            .any(|&b| b != l.header && f.block(b).insts.iter().any(|n| n.inst.def() == Some(s)))
    };
    for iv in ivs {
        if lhs == iv.slot && invariant_enough(rhs) {
            return Some(LoopBound {
                iv: iv.slot,
                cmp: op,
                bound: rhs,
            });
        }
        if rhs == iv.slot && invariant_enough(lhs) {
            return Some(LoopBound {
                iv: iv.slot,
                cmp: flip(op),
                bound: lhs,
            });
        }
    }
    let _ = defined_in_loop;
    None
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::repr::Const;
    use commset_lang::ast::Type;

    /// Lowered shape of `for (i = 0; i < n; i = i + 1) {}` with n = param 0.
    fn counted_loop() -> Function {
        let mut b = FunctionBuilder::new("f", &[("n".into(), Type::Int)], Type::Void);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let i = b.new_slot("i", Type::Int);
        let zero = b.new_temp(Type::Int);
        b.push(Inst::Const {
            dst: zero,
            value: Const::Int(0),
        });
        b.push(Inst::Copy { dst: i, src: zero });
        b.terminate(Terminator::Jump(head));
        b.switch_to(head);
        let c = b.new_temp(Type::Int);
        b.push(Inst::Bin {
            dst: c,
            op: BinOp::Lt,
            lhs: i,
            rhs: b.param_slot(0),
        });
        b.terminate(Terminator::Br {
            cond: c,
            then_bb: body,
            else_bb: exit,
        });
        b.switch_to(body);
        let one = b.new_temp(Type::Int);
        b.push(Inst::Const {
            dst: one,
            value: Const::Int(1),
        });
        b.push(Inst::Bin {
            dst: i,
            op: BinOp::Add,
            lhs: i,
            rhs: one,
        });
        b.terminate(Terminator::Jump(head));
        b.switch_to(exit);
        b.terminate(Terminator::Ret(None));
        b.finish()
    }

    #[test]
    fn finds_the_loop() {
        let f = counted_loop();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        let forest = LoopForest::new(&f, &cfg, &dom);
        assert_eq!(forest.loops.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(2)]);
        assert!(l.contains(BlockId(1)) && l.contains(BlockId(2)));
        assert!(!l.contains(BlockId(3)));
        assert_eq!(l.depth, 1);
    }

    #[test]
    fn finds_induction_variable_and_bound() {
        let f = counted_loop();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        let forest = LoopForest::new(&f, &cfg, &dom);
        let l = &forest.loops[0];
        let ivs = induction_vars(&f, l);
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].step, 1);
        let bound = loop_bound(&f, l, &ivs).expect("countable");
        assert_eq!(bound.iv, ivs[0].slot);
        assert_eq!(bound.cmp, BinOp::Lt);
        assert_eq!(bound.bound, Slot(0), "bound is the parameter n");
    }

    #[test]
    fn uncountable_while_loop_has_no_bound() {
        // while (p != 0) { p = next(p) } — p has a non-affine update.
        let mut b = FunctionBuilder::new("g", &[("p".into(), Type::Int)], Type::Void);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.terminate(Terminator::Jump(head));
        b.switch_to(head);
        let z = b.new_temp(Type::Int);
        b.push(Inst::Const {
            dst: z,
            value: Const::Int(0),
        });
        let c = b.new_temp(Type::Int);
        b.push(Inst::Bin {
            dst: c,
            op: BinOp::Ne,
            lhs: Slot(0),
            rhs: z,
        });
        b.terminate(Terminator::Br {
            cond: c,
            then_bb: body,
            else_bb: exit,
        });
        b.switch_to(body);
        // p = p >> 1 — not an Add/Sub update, so not a basic IV.
        let one = b.new_temp(Type::Int);
        b.push(Inst::Const {
            dst: one,
            value: Const::Int(1),
        });
        b.push(Inst::Bin {
            dst: Slot(0),
            op: BinOp::Shr,
            lhs: Slot(0),
            rhs: one,
        });
        b.terminate(Terminator::Jump(head));
        b.switch_to(exit);
        b.terminate(Terminator::Ret(None));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        let forest = LoopForest::new(&f, &cfg, &dom);
        let l = &forest.loops[0];
        let ivs = induction_vars(&f, l);
        assert!(ivs.is_empty());
        assert!(loop_bound(&f, l, &ivs).is_none());
    }

    #[test]
    fn nested_loops_have_depths() {
        // for (...) { for (...) {} }
        let mut b = FunctionBuilder::new("h", &[], Type::Void);
        let oh = b.new_block();
        let ob = b.new_block();
        let ih = b.new_block();
        let ib = b.new_block();
        let olatch = b.new_block();
        let exit = b.new_block();
        let c = b.new_temp(Type::Int);
        b.push(Inst::Const {
            dst: c,
            value: Const::Int(1),
        });
        b.terminate(Terminator::Jump(oh));
        b.switch_to(oh);
        b.terminate(Terminator::Br {
            cond: c,
            then_bb: ob,
            else_bb: exit,
        });
        b.switch_to(ob);
        b.terminate(Terminator::Jump(ih));
        b.switch_to(ih);
        b.terminate(Terminator::Br {
            cond: c,
            then_bb: ib,
            else_bb: olatch,
        });
        b.switch_to(ib);
        b.terminate(Terminator::Jump(ih));
        b.switch_to(olatch);
        b.terminate(Terminator::Jump(oh));
        b.switch_to(exit);
        b.terminate(Terminator::Ret(None));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        let forest = LoopForest::new(&f, &cfg, &dom);
        assert_eq!(forest.loops.len(), 2);
        assert_eq!(forest.loops[0].depth, 1, "outer first");
        assert_eq!(forest.loops[1].depth, 2);
        assert!(forest.loops[0].blocks.len() > forest.loops[1].blocks.len());
    }
}
