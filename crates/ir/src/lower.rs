//! AST-to-IR lowering.
//!
//! Lowering happens *after* the CommSet metadata manager has outlined
//! commutative regions and cloned call paths at the AST level, so every
//! lowered function corresponds to a (possibly synthesized) Cmm function.
//! Instruction provenance keeps the statement-level PDG in sync with the
//! IR.

use crate::builder::FunctionBuilder;
use crate::effects::IntrinsicTable;
use crate::repr::*;
use commset_lang::ast::{
    AssignOp, BinOp, Block as AstBlock, Expr, ExprKind, Item, LValue, Program, Stmt, StmtKind,
    Type, UnOp,
};
use commset_lang::diag::{Diagnostic, Phase};
use commset_lang::token::Span;
use std::collections::HashMap;

/// Lowers a whole program to an IR [`Module`].
///
/// Extern declarations resolve against `intrinsics`; externs the table does
/// not know are auto-registered with a conservative effect signature
/// (read/write of the catch-all `WORLD` channel).
///
/// # Errors
///
/// Returns a diagnostic on internal type inconsistencies (a well-checked
/// program never triggers one) or on extern/intrinsic signature mismatches.
pub fn lower_program(
    program: &Program,
    mut intrinsics: IntrinsicTable,
) -> Result<Module, Diagnostic> {
    // Pass 1: ids for globals, functions and intrinsics.
    let mut func_ids: HashMap<String, FuncId> = HashMap::new();
    let mut func_sigs: HashMap<String, (Vec<Type>, Type)> = HashMap::new();
    let mut intrinsic_ids: HashMap<String, (IntrinsicId, Vec<Type>, Type)> = HashMap::new();
    let mut next_func = 0u32;
    for item in &program.items {
        match item {
            Item::Func(f) => {
                func_ids.insert(f.name.clone(), FuncId(next_func));
                func_sigs.insert(
                    f.name.clone(),
                    (f.params.iter().map(|p| p.ty).collect(), f.ret),
                );
                next_func += 1;
            }
            Item::Extern(e) => {
                let params: Vec<Type> = e.params.iter().map(|p| p.ty).collect();
                let idx = match intrinsics.lookup(&e.name) {
                    Some((idx, sig)) => {
                        if sig.params != params || sig.ret != e.ret {
                            return Err(Diagnostic::new(
                                Phase::Lower,
                                format!(
                                    "extern `{}` does not match the registered intrinsic signature",
                                    e.name
                                ),
                                e.span,
                            ));
                        }
                        idx
                    }
                    None => intrinsics.register(
                        &e.name,
                        params.clone(),
                        e.ret,
                        &["WORLD"],
                        &["WORLD"],
                        5,
                    ),
                };
                intrinsic_ids.insert(e.name.clone(), (IntrinsicId(idx as u32), params, e.ret));
            }
            _ => {}
        }
    }
    let mut module = Module::new(intrinsics);
    for item in &program.items {
        if let Item::Global(g) = item {
            let init = g.init.as_ref().map(|e| match &e.kind {
                ExprKind::IntLit(v) => Const::Int(*v),
                ExprKind::FloatLit(v) => Const::Float(*v),
                _ => unreachable!("sema enforces literal global initializers"),
            });
            module.add_global(GlobalDecl {
                name: g.name.clone(),
                ty: g.ty,
                len: g.array_len,
                init,
            });
        }
    }
    // Pass 2: lower each function.
    for item in &program.items {
        if let Item::Func(f) = item {
            let lowered = FuncLower {
                module: &module,
                func_ids: &func_ids,
                func_sigs: &func_sigs,
                intrinsic_ids: &intrinsic_ids,
                builder: FunctionBuilder::new(
                    &f.name,
                    &f.params
                        .iter()
                        .map(|p| (p.name.clone(), p.ty))
                        .collect::<Vec<_>>(),
                    f.ret,
                ),
                scopes: vec![f
                    .params
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (p.name.clone(), Binding::Scalar(Slot(i as u32))))
                    .collect()],
                loop_targets: Vec::new(),
                array_types: HashMap::new(),
            }
            .lower(&f.body)?;
            module.add_func(lowered);
        }
    }
    Ok(module)
}

#[derive(Debug, Clone, Copy)]
enum Binding {
    Scalar(Slot),
    Array(ArrayId),
}

struct FuncLower<'a> {
    module: &'a Module,
    func_ids: &'a HashMap<String, FuncId>,
    func_sigs: &'a HashMap<String, (Vec<Type>, Type)>,
    intrinsic_ids: &'a HashMap<String, (IntrinsicId, Vec<Type>, Type)>,
    builder: FunctionBuilder,
    scopes: Vec<HashMap<String, Binding>>,
    /// (break target, continue target) per enclosing loop.
    loop_targets: Vec<(BlockId, BlockId)>,
    /// Element types of declared local arrays.
    array_types: HashMap<ArrayId, Type>,
}

impl FuncLower<'_> {
    fn lower(mut self, body: &AstBlock) -> Result<Function, Diagnostic> {
        self.lower_block(body)?;
        Ok(self.builder.finish())
    }

    fn err(&self, msg: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic::new(Phase::Lower, msg, span)
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        for s in self.scopes.iter().rev() {
            if let Some(&b) = s.get(name) {
                return Some(b);
            }
        }
        None
    }

    /// Resolves a name to a local binding or a global.
    fn resolve(&self, name: &str, span: Span) -> Result<Resolved, Diagnostic> {
        if let Some(b) = self.lookup(name) {
            return Ok(match b {
                Binding::Scalar(s) => Resolved::Local(s),
                Binding::Array(a) => Resolved::LocalArray(a),
            });
        }
        if let Some(g) = self.module.global_id(name) {
            return Ok(if self.module.global(g).len.is_some() {
                Resolved::GlobalArray(g)
            } else {
                Resolved::Global(g)
            });
        }
        Err(self.err(format!("unresolved variable `{name}`"), span))
    }

    fn lower_block(&mut self, b: &AstBlock) -> Result<(), Diagnostic> {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            if !self.builder.current_open() {
                break; // unreachable code after break/continue/return
            }
            self.lower_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Result<(), Diagnostic> {
        self.builder.set_stmt(s.id);
        match &s.kind {
            StmtKind::VarDecl {
                name,
                ty,
                array_len,
                init,
            } => {
                let binding = match array_len {
                    Some(n) => {
                        let a = self.builder.new_array(name.clone(), *ty, *n);
                        self.array_types.insert(a, *ty);
                        Binding::Array(a)
                    }
                    None => Binding::Scalar(self.builder.new_slot(name.clone(), *ty)),
                };
                self.scopes
                    .last_mut()
                    .unwrap()
                    .insert(name.clone(), binding);
                if let (Some(init), Binding::Scalar(slot)) = (init, binding) {
                    let v = self.lower_expr(init)?;
                    self.builder.push(Inst::Copy { dst: slot, src: v });
                }
                Ok(())
            }
            StmtKind::Assign { target, op, value } => {
                self.builder.set_stmt(s.id);
                let rhs = self.lower_expr(value)?;
                self.builder.set_stmt(s.id);
                match target {
                    LValue::Var(name, span) => match self.resolve(name, *span)? {
                        Resolved::Local(slot) => {
                            let v = self.apply_compound(*op, || Ok(slot), rhs, *span)?;
                            if v != slot {
                                self.builder.push(Inst::Copy { dst: slot, src: v });
                            }
                            Ok(())
                        }
                        Resolved::Global(g) => {
                            let v = if *op == AssignOp::Set {
                                rhs
                            } else {
                                let cur = self.builder.new_temp(self.module.global(g).ty);
                                self.builder.push(Inst::LoadG {
                                    dst: cur,
                                    global: g,
                                });
                                self.compound_bin(*op, cur, rhs)
                            };
                            self.builder.push(Inst::StoreG { global: g, src: v });
                            Ok(())
                        }
                        _ => Err(self.err(format!("cannot assign array `{name}`"), *span)),
                    },
                    LValue::Index(name, idx, span) => {
                        let idx = self.lower_expr(idx)?;
                        self.builder.set_stmt(s.id);
                        let (arr, elem_ty) = match self.resolve(name, *span)? {
                            Resolved::LocalArray(a) => (ArrRef::Local(a), self.array_ty(a)),
                            Resolved::GlobalArray(g) => {
                                (ArrRef::Global(g), self.module.global(g).ty)
                            }
                            _ => return Err(self.err(format!("`{name}` is not an array"), *span)),
                        };
                        let v = if *op == AssignOp::Set {
                            rhs
                        } else {
                            let cur = self.builder.new_temp(elem_ty);
                            self.builder.push(Inst::LoadElem { dst: cur, arr, idx });
                            self.compound_bin(*op, cur, rhs)
                        };
                        self.builder.push(Inst::StoreElem { arr, idx, src: v });
                        Ok(())
                    }
                }
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.lower_expr(cond)?;
                self.builder.set_stmt(s.id);
                let then_bb = self.builder.new_block();
                let join = self.builder.new_block();
                let else_bb = if else_branch.is_some() {
                    self.builder.new_block()
                } else {
                    join
                };
                self.builder.terminate(Terminator::Br {
                    cond: c,
                    then_bb,
                    else_bb,
                });
                self.builder.switch_to(then_bb);
                self.lower_stmt(then_branch)?;
                if self.builder.current_open() {
                    self.builder.terminate(Terminator::Jump(join));
                }
                if let Some(e) = else_branch {
                    self.builder.switch_to(else_bb);
                    self.lower_stmt(e)?;
                    if self.builder.current_open() {
                        self.builder.terminate(Terminator::Jump(join));
                    }
                }
                self.builder.switch_to(join);
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let head = self.builder.new_block();
                let body_bb = self.builder.new_block();
                let exit = self.builder.new_block();
                self.builder.terminate(Terminator::Jump(head));
                self.builder.switch_to(head);
                self.builder.set_stmt(s.id);
                let c = self.lower_expr(cond)?;
                self.builder.set_stmt(s.id);
                self.builder.terminate(Terminator::Br {
                    cond: c,
                    then_bb: body_bb,
                    else_bb: exit,
                });
                self.builder.switch_to(body_bb);
                self.loop_targets.push((exit, head));
                self.lower_stmt(body)?;
                self.loop_targets.pop();
                if self.builder.current_open() {
                    self.builder.terminate(Terminator::Jump(head));
                }
                self.builder.switch_to(exit);
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.lower_stmt(i)?;
                }
                let head = self.builder.new_block();
                let body_bb = self.builder.new_block();
                let step_bb = self.builder.new_block();
                let exit = self.builder.new_block();
                self.builder.set_stmt(s.id);
                self.builder.terminate(Terminator::Jump(head));
                self.builder.switch_to(head);
                self.builder.set_stmt(s.id);
                match cond {
                    Some(c) => {
                        let cv = self.lower_expr(c)?;
                        self.builder.set_stmt(s.id);
                        self.builder.terminate(Terminator::Br {
                            cond: cv,
                            then_bb: body_bb,
                            else_bb: exit,
                        });
                    }
                    None => self.builder.terminate(Terminator::Jump(body_bb)),
                }
                self.builder.switch_to(body_bb);
                self.loop_targets.push((exit, step_bb));
                self.lower_stmt(body)?;
                self.loop_targets.pop();
                if self.builder.current_open() {
                    self.builder.terminate(Terminator::Jump(step_bb));
                }
                self.builder.switch_to(step_bb);
                if let Some(st) = step {
                    self.lower_stmt(st)?;
                }
                self.builder.set_stmt(s.id);
                self.builder.terminate(Terminator::Jump(head));
                self.builder.switch_to(exit);
                self.scopes.pop();
                Ok(())
            }
            StmtKind::Return(v) => {
                let slot = match v {
                    Some(e) => Some(self.lower_expr(e)?),
                    None => None,
                };
                self.builder.set_stmt(s.id);
                self.builder.terminate(Terminator::Ret(slot));
                Ok(())
            }
            StmtKind::Break => {
                let (brk, _) = *self
                    .loop_targets
                    .last()
                    .ok_or_else(|| self.err("break outside loop", s.span))?;
                self.builder.terminate(Terminator::Jump(brk));
                Ok(())
            }
            StmtKind::Continue => {
                let (_, cont) = *self
                    .loop_targets
                    .last()
                    .ok_or_else(|| self.err("continue outside loop", s.span))?;
                self.builder.terminate(Terminator::Jump(cont));
                Ok(())
            }
            StmtKind::ExprStmt(e) => {
                let ExprKind::Call(name, args) = &e.kind else {
                    return Err(self.err("expression statement must be a call", e.span));
                };
                self.lower_call(name, args, e.span, false)?;
                Ok(())
            }
            StmtKind::Block(b) => self.lower_block(b),
        }
    }

    fn array_ty(&self, a: ArrayId) -> Type {
        self.local_array_ty(a)
    }

    fn compound_bin(&mut self, op: AssignOp, cur: Slot, rhs: Slot) -> Slot {
        let bin = match op {
            AssignOp::Add => BinOp::Add,
            AssignOp::Sub => BinOp::Sub,
            AssignOp::Mul => BinOp::Mul,
            AssignOp::Set => unreachable!(),
        };
        let dst = self.builder.new_temp(self.builder.slot_ty(cur));
        self.builder.push(Inst::Bin {
            dst,
            op: bin,
            lhs: cur,
            rhs,
        });
        dst
    }

    fn apply_compound(
        &mut self,
        op: AssignOp,
        slot: impl FnOnce() -> Result<Slot, Diagnostic>,
        rhs: Slot,
        _span: Span,
    ) -> Result<Slot, Diagnostic> {
        if op == AssignOp::Set {
            return Ok(rhs);
        }
        let cur = slot()?;
        Ok(self.compound_bin(op, cur, rhs))
    }

    fn lower_expr(&mut self, e: &Expr) -> Result<Slot, Diagnostic> {
        match &e.kind {
            ExprKind::IntLit(v) => {
                let dst = self.builder.new_temp(Type::Int);
                self.builder.push(Inst::Const {
                    dst,
                    value: Const::Int(*v),
                });
                Ok(dst)
            }
            ExprKind::FloatLit(v) => {
                let dst = self.builder.new_temp(Type::Float);
                self.builder.push(Inst::Const {
                    dst,
                    value: Const::Float(*v),
                });
                Ok(dst)
            }
            ExprKind::StrLit(_) => Err(self.err(
                "string literal outside an intrinsic argument position",
                e.span,
            )),
            ExprKind::Var(name) => match self.resolve(name, e.span)? {
                Resolved::Local(s) => Ok(s),
                Resolved::Global(g) => {
                    let dst = self.builder.new_temp(self.module.global(g).ty);
                    self.builder.push(Inst::LoadG { dst, global: g });
                    Ok(dst)
                }
                _ => Err(self.err(format!("array `{name}` used as a scalar"), e.span)),
            },
            ExprKind::Unary(op, a) => {
                let v = self.lower_expr(a)?;
                let ty = match op {
                    UnOp::Neg => self.builder.slot_ty(v),
                    UnOp::Not | UnOp::BitNot => Type::Int,
                };
                let dst = self.builder.new_temp(ty);
                self.builder.push(Inst::Un {
                    dst,
                    op: *op,
                    src: v,
                });
                Ok(dst)
            }
            ExprKind::Binary(op @ (BinOp::And | BinOp::Or), a, b) => {
                self.lower_short_circuit(*op, a, b)
            }
            ExprKind::Binary(op, a, b) => {
                let lhs = self.lower_expr(a)?;
                let rhs = self.lower_expr(b)?;
                let ty = match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => self.builder.slot_ty(lhs),
                    _ => Type::Int,
                };
                let dst = self.builder.new_temp(ty);
                self.builder.push(Inst::Bin {
                    dst,
                    op: *op,
                    lhs,
                    rhs,
                });
                Ok(dst)
            }
            ExprKind::Call(name, args) => self
                .lower_call(name, args, e.span, true)?
                .ok_or_else(|| self.err(format!("void call `{name}` used as a value"), e.span)),
            ExprKind::Index(name, idx) => {
                let idx = self.lower_expr(idx)?;
                let (arr, ty) = match self.resolve(name, e.span)? {
                    Resolved::LocalArray(a) => (ArrRef::Local(a), self.local_array_ty(a)),
                    Resolved::GlobalArray(g) => (ArrRef::Global(g), self.module.global(g).ty),
                    _ => return Err(self.err(format!("`{name}` is not an array"), e.span)),
                };
                let dst = self.builder.new_temp(ty);
                self.builder.push(Inst::LoadElem { dst, arr, idx });
                Ok(dst)
            }
            ExprKind::Cast(ty, a) => {
                let v = self.lower_expr(a)?;
                let dst = self.builder.new_temp(*ty);
                self.builder.push(Inst::Cast {
                    dst,
                    ty: *ty,
                    src: v,
                });
                Ok(dst)
            }
        }
    }

    fn local_array_ty(&self, a: ArrayId) -> Type {
        self.array_types
            .get(&a)
            .copied()
            .expect("array declared before use")
    }

    fn lower_short_circuit(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Result<Slot, Diagnostic> {
        let result = self.builder.new_temp(Type::Int);
        let va = self.lower_expr(a)?;
        let rhs_bb = self.builder.new_block();
        let short_bb = self.builder.new_block();
        let join = self.builder.new_block();
        match op {
            BinOp::And => self.builder.terminate(Terminator::Br {
                cond: va,
                then_bb: rhs_bb,
                else_bb: short_bb,
            }),
            BinOp::Or => self.builder.terminate(Terminator::Br {
                cond: va,
                then_bb: short_bb,
                else_bb: rhs_bb,
            }),
            _ => unreachable!(),
        }
        // Short-circuit value: 0 for `&&`, 1 for `||`.
        self.builder.switch_to(short_bb);
        self.builder.push(Inst::Const {
            dst: result,
            value: Const::Int(if op == BinOp::Or { 1 } else { 0 }),
        });
        self.builder.terminate(Terminator::Jump(join));
        // Full evaluation: result = (b != 0).
        self.builder.switch_to(rhs_bb);
        let vb = self.lower_expr(b)?;
        let zero = self.builder.new_temp(Type::Int);
        self.builder.push(Inst::Const {
            dst: zero,
            value: Const::Int(0),
        });
        self.builder.push(Inst::Bin {
            dst: result,
            op: BinOp::Ne,
            lhs: vb,
            rhs: zero,
        });
        self.builder.terminate(Terminator::Jump(join));
        self.builder.switch_to(join);
        Ok(result)
    }

    fn lower_call(
        &mut self,
        name: &str,
        args: &[Expr],
        span: Span,
        want_value: bool,
    ) -> Result<Option<Slot>, Diagnostic> {
        let mut lowered: Vec<Arg> = Vec::with_capacity(args.len());
        for a in args {
            if let ExprKind::StrLit(s) = &a.kind {
                lowered.push(Arg::Str(s.clone()));
            } else {
                lowered.push(Arg::Slot(self.lower_expr(a)?));
            }
        }
        let (callee, ret) = if let Some(&fid) = self.func_ids.get(name) {
            let (_, ret) = &self.func_sigs[name];
            (Callee::Func(fid), *ret)
        } else if let Some((iid, _, ret)) = self.intrinsic_ids.get(name) {
            (Callee::Intrinsic(*iid), *ret)
        } else {
            return Err(self.err(format!("call to unresolved function `{name}`"), span));
        };
        let dst = if want_value && ret != Type::Void {
            Some(self.builder.new_temp(ret))
        } else {
            None
        };
        self.builder.push(Inst::Call {
            dst,
            callee,
            args: lowered,
        });
        Ok(dst)
    }
}

enum Resolved {
    Local(Slot),
    LocalArray(ArrayId),
    Global(GlobalId),
    GlobalArray(GlobalId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::print_module;

    fn lower_src(src: &str) -> Module {
        let unit = commset_lang::compile_unit(src).unwrap();
        lower_program(&unit.program, IntrinsicTable::new()).unwrap()
    }

    #[test]
    fn lowers_arithmetic_function() {
        let m = lower_src("int add(int a, int b) { return a + b * 2; }");
        let f = m.func(m.func_id("add").unwrap());
        assert_eq!(f.param_count, 2);
        assert!(f.inst_count() >= 3);
        let dump = print_module(&m);
        assert!(dump.contains("func add"), "{dump}");
    }

    #[test]
    fn lowers_for_loop_with_recognizable_shape() {
        let m = lower_src(
            "int main() { int s = 0; for (int i = 0; i < 10; i = i + 1) { s += i; } return s; }",
        );
        let f = m.func(m.func_id("main").unwrap());
        // entry, head, body, step, exit at least.
        assert!(f.blocks.len() >= 5, "blocks = {}", f.blocks.len());
        use crate::{cfg::Cfg, dom::DomTree, loops::LoopForest};
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dom);
        assert_eq!(forest.loops.len(), 1);
        let ivs = crate::loops::induction_vars(f, &forest.loops[0]);
        assert!(
            ivs.iter().any(|iv| iv.step == 1),
            "induction var i with step 1, got {ivs:?}"
        );
        let bound = crate::loops::loop_bound(f, &forest.loops[0], &ivs);
        assert!(bound.is_some(), "countable loop");
    }

    #[test]
    fn lowers_globals_and_arrays() {
        let m = lower_src(
            "int g = 7; float arr[4]; void f() { g = g + 1; arr[2] = 1.5; float x = arr[2]; }",
        );
        assert_eq!(m.globals.len(), 2);
        let f = m.func(m.func_id("f").unwrap());
        let has = |pred: &dyn Fn(&Inst) -> bool| {
            f.blocks
                .iter()
                .any(|b| b.insts.iter().any(|n| pred(&n.inst)))
        };
        assert!(has(&|i| matches!(i, Inst::LoadG { .. })));
        assert!(has(&|i| matches!(i, Inst::StoreG { .. })));
        assert!(has(&|i| matches!(
            i,
            Inst::StoreElem {
                arr: ArrRef::Global(_),
                ..
            }
        )));
        assert!(has(&|i| matches!(
            i,
            Inst::LoadElem {
                arr: ArrRef::Global(_),
                ..
            }
        )));
    }

    #[test]
    fn extern_calls_resolve_to_intrinsics() {
        let mut table = IntrinsicTable::new();
        table.register("rng_next", vec![], Type::Int, &["SEED"], &["SEED"], 10);
        let unit =
            commset_lang::compile_unit("extern int rng_next(); int main() { return rng_next(); }")
                .unwrap();
        let m = lower_program(&unit.program, table).unwrap();
        let f = m.func(m.func_id("main").unwrap());
        let call = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .find_map(|n| match &n.inst {
                Inst::Call { callee, .. } => Some(*callee),
                _ => None,
            })
            .unwrap();
        assert!(matches!(call, Callee::Intrinsic(_)));
    }

    #[test]
    fn unknown_extern_gets_conservative_effects() {
        let m = lower_src("extern void mystery(int x); int main() { mystery(1); return 0; }");
        let (_, sig) = m.intrinsics.lookup("mystery").unwrap();
        assert!(!sig.is_pure());
        assert!(sig.conflicts_with(sig), "WORLD channel self-conflicts");
    }

    #[test]
    fn extern_signature_mismatch_is_error() {
        let mut table = IntrinsicTable::new();
        table.register("op", vec![Type::Int], Type::Void, &[], &["A"], 1);
        let unit = commset_lang::compile_unit("extern int op(int x); int main() { return op(1); }")
            .unwrap();
        assert!(lower_program(&unit.program, table).is_err());
    }

    #[test]
    fn short_circuit_produces_branches() {
        let m = lower_src(
            "extern int f(); extern int g(); int main() { if (f() && g()) { return 1; } return 0; }",
        );
        let main = m.func(m.func_id("main").unwrap());
        // Both calls must be in *different* blocks (g only evaluated when f
        // is true).
        let call_blocks: Vec<usize> = main
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.insts.iter().any(|n| matches!(n.inst, Inst::Call { .. })))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(call_blocks.len(), 2);
        assert_ne!(call_blocks[0], call_blocks[1]);
    }

    #[test]
    fn break_and_continue_lower_to_jumps() {
        let m = lower_src(
            "int main() { int s = 0; for (int i = 0; i < 10; i = i + 1) { if (i == 3) continue; if (i == 7) break; s += i; } return s; }",
        );
        let f = m.func(m.func_id("main").unwrap());
        assert!(f.blocks.len() >= 7);
    }

    #[test]
    fn string_args_lower_to_str() {
        let m = lower_src(
            "extern void log_msg(handle tag, int v); int main() { log_msg(\"URL\", 3); return 0; }",
        );
        let f = m.func(m.func_id("main").unwrap());
        let args = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .find_map(|n| match &n.inst {
                Inst::Call { args, .. } => Some(args.clone()),
                _ => None,
            })
            .unwrap();
        assert!(matches!(&args[0], Arg::Str(s) if s == "URL"));
        assert!(matches!(args[1], Arg::Slot(_)));
    }
}
