//! Textual IR dump, for debugging and golden tests.

use crate::repr::*;
use std::fmt::Write;

/// Renders a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    for g in &m.globals {
        match g.len {
            Some(n) => {
                let _ = writeln!(out, "global {} {}[{}]", g.ty, g.name, n);
            }
            None => {
                let _ = writeln!(
                    out,
                    "global {} {} = {}",
                    g.ty,
                    g.name,
                    g.init.unwrap_or(Const::Int(0))
                );
            }
        }
    }
    for f in &m.funcs {
        out.push_str(&print_function(m, f));
    }
    out
}

/// Renders a single function.
pub fn print_function(m: &Module, f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f.slots[..f.param_count]
        .iter()
        .enumerate()
        .map(|(i, s)| format!("%{i}:{}", s.ty))
        .collect();
    let _ = writeln!(
        out,
        "func {}({}) -> {} {{",
        f.name,
        params.join(", "),
        f.ret
    );
    for (i, a) in f.arrays.iter().enumerate() {
        let _ = writeln!(out, "  array a{i} {}[{}]  ; {}", a.ty, a.len, a.name);
    }
    for (bi, b) in f.blocks.iter().enumerate() {
        let _ = writeln!(out, "bb{bi}:");
        for node in &b.insts {
            let _ = writeln!(out, "  {}    ; {}", print_inst(m, &node.inst), node.stmt);
        }
        let term = match &b.term {
            Terminator::Jump(t) => format!("jump {t}"),
            Terminator::Br {
                cond,
                then_bb,
                else_bb,
            } => format!("br {cond} ? {then_bb} : {else_bb}"),
            Terminator::Ret(Some(s)) => format!("ret {s}"),
            Terminator::Ret(None) => "ret".to_string(),
        };
        let _ = writeln!(out, "  {term}    ; {}", b.term_stmt);
    }
    out.push_str("}\n");
    out
}

/// Renders one instruction.
pub fn print_inst(m: &Module, inst: &Inst) -> String {
    match inst {
        Inst::Const { dst, value } => format!("{dst} = const {value}"),
        Inst::Copy { dst, src } => format!("{dst} = {src}"),
        Inst::Un { dst, op, src } => format!("{dst} = {}{src}", op.as_str()),
        Inst::Bin { dst, op, lhs, rhs } => {
            format!("{dst} = {lhs} {} {rhs}", op.as_str())
        }
        Inst::Cast { dst, ty, src } => format!("{dst} = {ty}({src})"),
        Inst::LoadG { dst, global } => {
            format!("{dst} = load @{}", m.global(*global).name)
        }
        Inst::StoreG { global, src } => {
            format!("store @{} = {src}", m.global(*global).name)
        }
        Inst::LoadElem { dst, arr, idx } => format!("{dst} = {}[{idx}]", arr_name(m, arr)),
        Inst::StoreElem { arr, idx, src } => {
            format!("{}[{idx}] = {src}", arr_name(m, arr))
        }
        Inst::Call { dst, callee, args } => {
            let name = match callee {
                Callee::Func(f) => m.func(*f).name.clone(),
                Callee::Intrinsic(i) => format!("!{}", m.intrinsics.name(i.0 as usize)),
            };
            let args: Vec<String> = args
                .iter()
                .map(|a| match a {
                    Arg::Slot(s) => s.to_string(),
                    Arg::Str(s) => format!("{s:?}"),
                })
                .collect();
            match dst {
                Some(d) => format!("{d} = call {name}({})", args.join(", ")),
                None => format!("call {name}({})", args.join(", ")),
            }
        }
    }
}

fn arr_name(m: &Module, arr: &ArrRef) -> String {
    match arr {
        ArrRef::Local(a) => format!("a{}", a.0),
        ArrRef::Global(g) => format!("@{}", m.global(*g).name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::IntrinsicTable;
    use crate::lower::lower_program;
    use commset_lang::ast::Type;

    fn module(src: &str) -> Module {
        let mut table = IntrinsicTable::new();
        table.register("emit", vec![Type::Int], Type::Void, &[], &["OUT"], 10);
        let unit = commset_lang::compile_unit(src).unwrap();
        lower_program(&unit.program, table).unwrap()
    }

    #[test]
    fn dump_covers_every_construct() {
        let m = module(
            r#"
            extern void emit(int v);
            int g;
            float table[4];
            int helper(int x) { return x * 2; }
            int main() {
                g = 5;
                table[1] = 2.5;
                float f = table[1];
                int acc = 0;
                for (int i = 0; i < 10; i = i + 1) {
                    if (i > 3) { acc = acc + helper(i); }
                }
                emit(acc + g);
                return acc;
            }
            "#,
        );
        let text = print_module(&m);
        // Globals.
        assert!(text.contains("global int g"), "{text}");
        assert!(text.contains("global float table[4]"), "{text}");
        // Functions and calls (user and intrinsic).
        assert!(text.contains("func helper"), "{text}");
        assert!(text.contains("func main"), "{text}");
        assert!(text.contains("call helper("), "{text}");
        assert!(text.contains("call !emit("), "{text}");
        // Memory forms.
        assert!(text.contains("store @g"), "{text}");
        assert!(text.contains("load @g"), "{text}");
        assert!(text.contains("@table["), "{text}");
        // Control flow renders both terminator kinds.
        assert!(text.contains("jump "), "{text}");
        assert!(text.contains(" ? "), "{text}");
        assert!(text.contains("ret "), "{text}");
        // Statement provenance comments are attached to instructions.
        assert!(
            text.lines()
                .filter(|l| l.contains(" = ") && !l.starts_with("global"))
                .all(|l| l.contains("    ; ")),
            "{text}"
        );
    }

    #[test]
    fn every_instruction_has_one_line() {
        let m = module("int main() { int a = 1; int b = a + 2; return b; }");
        let f = m.funcs.iter().find(|f| f.name == "main").unwrap();
        let inst_count: usize = f.blocks.iter().map(|b| b.insts.len() + 1).sum();
        let text = print_function(&m, f);
        // func header + arrays(0) + per-block label + insts + closing brace.
        let lines = text.lines().count();
        assert_eq!(lines, 1 + f.blocks.len() + inst_count + 1, "{text}");
    }
}
