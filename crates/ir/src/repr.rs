//! The IR data structures: modules, functions, basic blocks, instructions.
//!
//! The IR is a non-SSA register machine: every scalar local (including
//! compiler temporaries) is a [`Slot`] in the frame; local arrays get their
//! own [`ArrayId`]-indexed storage. Every instruction carries the
//! [`StmtId`] of the source statement it was lowered from, which is how the
//! statement-level PDG maps back and forth to the IR.

use crate::effects::IntrinsicTable;
use commset_lang::ast::{BinOp, StmtId, Type, UnOp};
use std::collections::HashMap;

/// Index of a function in a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Index of a global variable in a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// Index of an intrinsic in the [`IntrinsicTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IntrinsicId(pub u32);

/// Index of a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Index of a scalar slot within a function frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Slot(pub u32);

/// Index of a local array within a function frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

impl std::fmt::Display for FuncId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "@{}", self.0)
    }
}
impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bb{}", self.0)
    }
}
impl std::fmt::Display for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A compile-time constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Const {
    /// Integer (also booleans and handles).
    Int(i64),
    /// Float.
    Float(f64),
}

impl Const {
    /// The type of the constant.
    pub fn ty(self) -> Type {
        match self {
            Const::Int(_) => Type::Int,
            Const::Float(_) => Type::Float,
        }
    }
}

impl std::fmt::Display for Const {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Const::Int(v) => write!(f, "{v}"),
            Const::Float(v) => write!(f, "{v}f"),
        }
    }
}

/// Reference to an array: a frame-local array or a global one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrRef {
    /// A local array of the current frame.
    Local(ArrayId),
    /// A global array.
    Global(GlobalId),
}

/// The target of a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Callee {
    /// A function defined in the module.
    Func(FuncId),
    /// A runtime intrinsic.
    Intrinsic(IntrinsicId),
}

/// A call argument: a slot value or a string literal (intrinsics only).
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// Pass the value of a slot.
    Slot(Slot),
    /// Pass a string literal (e.g. a channel or file name).
    Str(String),
}

/// A single IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `dst = const`
    Const {
        /// Destination slot.
        dst: Slot,
        /// The constant.
        value: Const,
    },
    /// `dst = src`
    Copy {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        src: Slot,
    },
    /// `dst = op src`
    Un {
        /// Destination slot.
        dst: Slot,
        /// The operator.
        op: UnOp,
        /// Operand.
        src: Slot,
    },
    /// `dst = lhs op rhs`
    Bin {
        /// Destination slot.
        dst: Slot,
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Slot,
        /// Right operand.
        rhs: Slot,
    },
    /// `dst = ty(src)`
    Cast {
        /// Destination slot.
        dst: Slot,
        /// Target type.
        ty: Type,
        /// Operand.
        src: Slot,
    },
    /// `dst = global`
    LoadG {
        /// Destination slot.
        dst: Slot,
        /// The global read.
        global: GlobalId,
    },
    /// `global = src`
    StoreG {
        /// The global written.
        global: GlobalId,
        /// Source slot.
        src: Slot,
    },
    /// `dst = arr[idx]`
    LoadElem {
        /// Destination slot.
        dst: Slot,
        /// The array.
        arr: ArrRef,
        /// Index slot (int).
        idx: Slot,
    },
    /// `arr[idx] = src`
    StoreElem {
        /// The array.
        arr: ArrRef,
        /// Index slot (int).
        idx: Slot,
        /// Source slot.
        src: Slot,
    },
    /// `dst? = callee(args...)`
    Call {
        /// Destination slot, if the result is used.
        dst: Option<Slot>,
        /// Function or intrinsic.
        callee: Callee,
        /// Arguments.
        args: Vec<Arg>,
    },
}

impl Inst {
    /// The slot this instruction defines, if any.
    pub fn def(&self) -> Option<Slot> {
        match self {
            Inst::Const { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Cast { dst, .. }
            | Inst::LoadG { dst, .. }
            | Inst::LoadElem { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::StoreG { .. } | Inst::StoreElem { .. } => None,
        }
    }

    /// The slots this instruction reads.
    pub fn uses(&self) -> Vec<Slot> {
        match self {
            Inst::Const { .. } | Inst::LoadG { .. } => vec![],
            Inst::Copy { src, .. } | Inst::Un { src, .. } | Inst::Cast { src, .. } => vec![*src],
            Inst::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::LoadElem { idx, .. } => vec![*idx],
            Inst::StoreG { src, .. } => vec![*src],
            Inst::StoreElem { idx, src, .. } => vec![*idx, *src],
            Inst::Call { args, .. } => args
                .iter()
                .filter_map(|a| match a {
                    Arg::Slot(s) => Some(*s),
                    Arg::Str(_) => None,
                })
                .collect(),
        }
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch on an int slot (nonzero = taken).
    Br {
        /// Condition slot.
        cond: Slot,
        /// Target when nonzero.
        then_bb: BlockId,
        /// Target when zero.
        else_bb: BlockId,
    },
    /// Function return.
    Ret(Option<Slot>),
}

impl Terminator {
    /// Successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Br {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Ret(_) => vec![],
        }
    }
}

/// An instruction with its source-statement provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstNode {
    /// The instruction.
    pub inst: Inst,
    /// The statement it was lowered from.
    pub stmt: StmtId,
}

/// A basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Straight-line instructions.
    pub insts: Vec<InstNode>,
    /// The terminator.
    pub term: Terminator,
    /// Provenance of the terminator.
    pub term_stmt: StmtId,
}

/// Declaration of a scalar slot.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotDecl {
    /// Source name, or a `%tN` name for temporaries.
    pub name: String,
    /// Type.
    pub ty: Type,
}

/// Declaration of a frame-local array.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    /// Source name.
    pub name: String,
    /// Element type.
    pub ty: Type,
    /// Length.
    pub len: usize,
}

/// A lowered function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Number of parameters (the first `param_count` slots).
    pub param_count: usize,
    /// Return type.
    pub ret: Type,
    /// All scalar slots (params first).
    pub slots: Vec<SlotDecl>,
    /// All local arrays.
    pub arrays: Vec<ArrayDecl>,
    /// Basic blocks; entry is block 0.
    pub blocks: Vec<Block>,
}

impl Function {
    /// The entry block.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// The block with id `b`.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.0 as usize]
    }

    /// Total instruction count (for profile weights and tests).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len() + 1).sum()
    }
}

/// A global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Name.
    pub name: String,
    /// Element type.
    pub ty: Type,
    /// `Some(n)` for arrays.
    pub len: Option<usize>,
    /// Initial scalar value (zero of `ty` when absent).
    pub init: Option<Const>,
}

/// A lowered module: functions, globals, and the intrinsic table they were
/// lowered against.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// All functions.
    pub funcs: Vec<Function>,
    /// All globals.
    pub globals: Vec<GlobalDecl>,
    /// The intrinsic table (effect signatures).
    pub intrinsics: IntrinsicTable,
    func_ids: HashMap<String, FuncId>,
    global_ids: HashMap<String, GlobalId>,
}

impl Module {
    /// Creates an empty module over `intrinsics`.
    pub fn new(intrinsics: IntrinsicTable) -> Self {
        Module {
            intrinsics,
            ..Default::default()
        }
    }

    /// Adds a function, returning its id.
    ///
    /// # Panics
    ///
    /// Panics on duplicate function names.
    pub fn add_func(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        assert!(
            self.func_ids.insert(f.name.clone(), id).is_none(),
            "duplicate function `{}`",
            f.name
        );
        self.funcs.push(f);
        id
    }

    /// Adds a global, returning its id.
    ///
    /// # Panics
    ///
    /// Panics on duplicate global names.
    pub fn add_global(&mut self, g: GlobalDecl) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        assert!(
            self.global_ids.insert(g.name.clone(), id).is_none(),
            "duplicate global `{}`",
            g.name
        );
        self.globals.push(g);
        id
    }

    /// Looks up a function by name.
    pub fn func_id(&self, name: &str) -> Option<FuncId> {
        self.func_ids.get(name).copied()
    }

    /// The function with id `f`.
    pub fn func(&self, f: FuncId) -> &Function {
        &self.funcs[f.0 as usize]
    }

    /// Looks up a global by name.
    pub fn global_id(&self, name: &str) -> Option<GlobalId> {
        self.global_ids.get(name).copied()
    }

    /// The global with id `g`.
    pub fn global(&self, g: GlobalId) -> &GlobalDecl {
        &self.globals[g.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_and_uses() {
        let i = Inst::Bin {
            dst: Slot(2),
            op: BinOp::Add,
            lhs: Slot(0),
            rhs: Slot(1),
        };
        assert_eq!(i.def(), Some(Slot(2)));
        assert_eq!(i.uses(), vec![Slot(0), Slot(1)]);

        let s = Inst::StoreElem {
            arr: ArrRef::Local(ArrayId(0)),
            idx: Slot(3),
            src: Slot(4),
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![Slot(3), Slot(4)]);

        let c = Inst::Call {
            dst: None,
            callee: Callee::Intrinsic(IntrinsicId(0)),
            args: vec![Arg::Slot(Slot(1)), Arg::Str("FS".into())],
        };
        assert_eq!(c.uses(), vec![Slot(1)]);
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump(BlockId(3)).successors(), vec![BlockId(3)]);
        assert_eq!(
            Terminator::Br {
                cond: Slot(0),
                then_bb: BlockId(1),
                else_bb: BlockId(2)
            }
            .successors(),
            vec![BlockId(1), BlockId(2)]
        );
        assert!(Terminator::Ret(None).successors().is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn duplicate_function_panics() {
        let mut m = Module::new(IntrinsicTable::new());
        let f = Function {
            name: "f".into(),
            param_count: 0,
            ret: Type::Void,
            slots: vec![],
            arrays: vec![],
            blocks: vec![Block {
                insts: vec![],
                term: Terminator::Ret(None),
                term_stmt: StmtId(0),
            }],
        };
        m.add_func(f.clone());
        m.add_func(f);
    }
}
