//! Property tests of the IR analyses: the CHK dominator tree against a
//! naive reachability-based definition, and loop detection invariants,
//! over randomly generated CFGs.

use commset_ir::builder::FunctionBuilder;
use commset_ir::cfg::Cfg;
use commset_ir::dom::DomTree;
use commset_ir::loops::LoopForest;
use commset_ir::repr::{BlockId, Const, Function, Inst, Terminator};
use commset_lang::ast::Type;
use proptest::prelude::*;

/// Builds a function whose CFG has `n` blocks with the given terminator
/// choices: for each block, `(a, b)` — `a == b` means an unconditional
/// jump, distinct values a conditional branch; the last block returns.
fn build_cfg(n: usize, succs: &[(usize, usize)]) -> Function {
    let mut b = FunctionBuilder::new("f", &[], Type::Void);
    let blocks: Vec<BlockId> = std::iter::once(b.current_block())
        .chain((1..n).map(|_| b.new_block()))
        .collect();
    let cond = b.new_temp(Type::Int);
    b.push(Inst::Const {
        dst: cond,
        value: Const::Int(1),
    });
    for (i, &(x, y)) in succs.iter().enumerate() {
        b.switch_to(blocks[i]);
        if i == n - 1 {
            b.terminate(Terminator::Ret(None));
        } else if x == y {
            b.terminate(Terminator::Jump(blocks[x % n]));
        } else {
            b.terminate(Terminator::Br {
                cond,
                then_bb: blocks[x % n],
                else_bb: blocks[y % n],
            });
        }
    }
    b.finish()
}

/// Naive dominance: `a` dominates `b` iff removing `a` makes `b`
/// unreachable from the entry (or `a == b`).
fn naive_dominates(f: &Function, cfg: &Cfg, a: BlockId, b: BlockId) -> bool {
    if a == b {
        return true;
    }
    // BFS from entry avoiding `a`.
    let n = f.blocks.len();
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    if a != BlockId(0) {
        seen[0] = true;
        queue.push_back(0usize);
    }
    while let Some(x) = queue.pop_front() {
        for s in &cfg.succs[x] {
            if *s == a || seen[s.0 as usize] {
                continue;
            }
            seen[s.0 as usize] = true;
            queue.push_back(s.0 as usize);
        }
    }
    !seen[b.0 as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The iterative dominator tree agrees with the naive definition on
    /// every reachable block pair.
    #[test]
    fn dominators_match_naive_definition(
        n in 2usize..10,
        raw in proptest::collection::vec((0usize..10, 0usize..10), 10)
    ) {
        let succs: Vec<(usize, usize)> = raw.into_iter().take(n).collect();
        prop_assume!(succs.len() == n);
        let f = build_cfg(n, &succs);
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        for a in 0..n {
            for b in 0..n {
                let (ab, bb) = (BlockId(a as u32), BlockId(b as u32));
                if !cfg.is_reachable(ab) || !cfg.is_reachable(bb) {
                    continue;
                }
                prop_assert_eq!(
                    dom.dominates(ab, bb),
                    naive_dominates(&f, &cfg, ab, bb),
                    "dominates({}, {}) over {} blocks",
                    a, b, n
                );
            }
        }
    }

    /// Natural-loop invariants: headers dominate every block of their
    /// loop, and every latch is inside the loop.
    #[test]
    fn natural_loops_are_dominated_by_their_headers(
        n in 2usize..10,
        raw in proptest::collection::vec((0usize..10, 0usize..10), 10)
    ) {
        let succs: Vec<(usize, usize)> = raw.into_iter().take(n).collect();
        prop_assume!(succs.len() == n);
        let f = build_cfg(n, &succs);
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        let forest = LoopForest::new(&f, &cfg, &dom);
        for l in &forest.loops {
            for &b in &l.blocks {
                prop_assert!(
                    dom.dominates(l.header, b),
                    "header {} must dominate member {}", l.header, b
                );
            }
            for latch in &l.latches {
                prop_assert!(l.contains(*latch));
            }
            prop_assert!(l.contains(l.header));
        }
    }
}
