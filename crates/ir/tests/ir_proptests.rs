//! Property tests of the IR analyses: the CHK dominator tree against a
//! naive reachability-based definition, and loop detection invariants,
//! over randomly generated CFGs. Driven by a seeded SplitMix64 (the
//! workspace carries no external dependencies).

use commset_ir::builder::FunctionBuilder;
use commset_ir::cfg::Cfg;
use commset_ir::dom::DomTree;
use commset_ir::loops::LoopForest;
use commset_ir::repr::{BlockId, Const, Function, Inst, Terminator};
use commset_lang::ast::Type;

/// Minimal SplitMix64 — enough structure for CFG-shape generation.
struct Rng(u64);
impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Draws a random CFG shape: `n` blocks, each with successor indices
/// `(a, b)` — `a == b` means an unconditional jump, distinct values a
/// conditional branch; the last block returns.
fn arb_shape(g: &mut Rng) -> (usize, Vec<(usize, usize)>) {
    let n = 2 + g.below(8);
    let succs = (0..n).map(|_| (g.below(10), g.below(10))).collect();
    (n, succs)
}

/// Builds a function with the given CFG shape.
fn build_cfg(n: usize, succs: &[(usize, usize)]) -> Function {
    let mut b = FunctionBuilder::new("f", &[], Type::Void);
    let blocks: Vec<BlockId> = std::iter::once(b.current_block())
        .chain((1..n).map(|_| b.new_block()))
        .collect();
    let cond = b.new_temp(Type::Int);
    b.push(Inst::Const {
        dst: cond,
        value: Const::Int(1),
    });
    for (i, &(x, y)) in succs.iter().enumerate() {
        b.switch_to(blocks[i]);
        if i == n - 1 {
            b.terminate(Terminator::Ret(None));
        } else if x == y {
            b.terminate(Terminator::Jump(blocks[x % n]));
        } else {
            b.terminate(Terminator::Br {
                cond,
                then_bb: blocks[x % n],
                else_bb: blocks[y % n],
            });
        }
    }
    b.finish()
}

/// Naive dominance: `a` dominates `b` iff removing `a` makes `b`
/// unreachable from the entry (or `a == b`).
fn naive_dominates(f: &Function, cfg: &Cfg, a: BlockId, b: BlockId) -> bool {
    if a == b {
        return true;
    }
    // BFS from entry avoiding `a`.
    let n = f.blocks.len();
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    if a != BlockId(0) {
        seen[0] = true;
        queue.push_back(0usize);
    }
    while let Some(x) = queue.pop_front() {
        for s in &cfg.succs[x] {
            if *s == a || seen[s.0 as usize] {
                continue;
            }
            seen[s.0 as usize] = true;
            queue.push_back(s.0 as usize);
        }
    }
    !seen[b.0 as usize]
}

/// The iterative dominator tree agrees with the naive definition on
/// every reachable block pair.
#[test]
fn dominators_match_naive_definition() {
    let mut g = Rng(0x00ce_55e7_000a);
    for _ in 0..128 {
        let (n, succs) = arb_shape(&mut g);
        let f = build_cfg(n, &succs);
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        for a in 0..n {
            for b in 0..n {
                let (ab, bb) = (BlockId(a as u32), BlockId(b as u32));
                if !cfg.is_reachable(ab) || !cfg.is_reachable(bb) {
                    continue;
                }
                assert_eq!(
                    dom.dominates(ab, bb),
                    naive_dominates(&f, &cfg, ab, bb),
                    "dominates({a}, {b}) over {n} blocks"
                );
            }
        }
    }
}

/// Natural-loop invariants: headers dominate every block of their
/// loop, and every latch is inside the loop.
#[test]
fn natural_loops_are_dominated_by_their_headers() {
    let mut g = Rng(0x00ce_55e7_000b);
    for _ in 0..128 {
        let (n, succs) = arb_shape(&mut g);
        let f = build_cfg(n, &succs);
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        let forest = LoopForest::new(&f, &cfg, &dom);
        for l in &forest.loops {
            for &b in &l.blocks {
                assert!(
                    dom.dominates(l.header, b),
                    "header {} must dominate member {}",
                    l.header,
                    b
                );
            }
            for latch in &l.latches {
                assert!(l.contains(*latch));
            }
            assert!(l.contains(l.header));
        }
    }
}
